//! Algorithmic trading scenario (paper §1, query Q1): count stock
//! down-trends per sector over a sliding window — the signal the paper's
//! motivating example feeds to a trading system.
//!
//! Also runs the SASE-style two-step engine on the same stream to show the
//! win of incremental aggregation, and an exact BigUint count to show how
//! fast trend counts explode.
//!
//! ```sh
//! cargo run --release --example stock_trading
//! ```

use greta::baselines::SaseEngine;
use greta::core::{ExecutorConfig, StreamExecutor};
use greta::query::CompiledQuery;
use greta::workloads::{StockConfig, StockGen};
use greta_types::SchemaRegistry;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SchemaRegistry::new();
    let generator = StockGen::new(
        StockConfig {
            events: 3000,
            companies: 10,
            sectors: 3,
            ..Default::default()
        },
        &mut registry,
    )?;
    let events = generator.generate();
    println!(
        "generated {} stock transactions (10 companies, 3 sectors)",
        events.len()
    );

    // Query Q1: down-trends per sector, 10-minute window sliding every 10s.
    // (1 tick = 1 event here; 600/100 keeps several windows in flight.)
    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) \
         PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector \
         WITHIN 600 SLIDE 200",
        &registry,
    )?;

    // GRETA: push-based executor, sharded by sector; results stream out as
    // each window closes.
    let t0 = Instant::now();
    let mut executor = StreamExecutor::<f64>::new(
        query.clone(),
        registry.clone(),
        ExecutorConfig {
            shards: 2,
            ..Default::default()
        },
    )?;
    let mut emitted = 0usize;
    for e in &events {
        executor.push(e.clone())?;
        for row in executor.poll_results() {
            emitted += 1;
            if emitted <= 5 {
                println!(
                    "  window {:>3} | {} | down-trends = {}",
                    row.window,
                    row.group.display_with(&query.group_by),
                    row.values[0]
                );
            }
        }
    }
    emitted += executor.finish()?.len();
    let greta_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "GRETA: {emitted} sector-window results in {greta_ms:.1} ms across {} shards, \
         peak memory {} KiB",
        executor.shards(),
        executor.stats().peak_memory_bytes / 1024
    );

    // The same query two-step (SASE): construct every trend, then count.
    let t0 = Instant::now();
    let run = SaseEngine::run(&query, &registry, &events, 3_000_000);
    let sase_ms = t0.elapsed().as_secs_f64() * 1e3;
    if run.completed {
        println!(
            "SASE : {} results in {sase_ms:.1} ms after constructing {} trends ({:.0}x slower)",
            run.rows.len(),
            run.trends,
            sase_ms / greta_ms.max(1e-6)
        );
    } else {
        println!("SASE : did not finish within the 3M-trend budget (exponential blow-up)");
    }
    Ok(())
}
