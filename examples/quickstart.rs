//! Quickstart: the paper's running example end to end.
//!
//! Pattern `(SEQ(A+, B))+` over the stream of Fig. 12
//! (`{a1, b2, a3, a4, b7}` with `a1.attr = 5, a3.attr = 6, a4.attr = 4`)
//! must yield COUNT(*) = 11, COUNT(A) = 20, MIN = 4, MAX = 6, SUM = 100,
//! AVG = 5 — computed *without ever enumerating the 11 trends*.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use greta::core::{ExecutorConfig, StreamExecutor};
use greta::query::CompiledQuery;
use greta::types::{EventBuilder, SchemaRegistry, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the event schema.
    let mut registry = SchemaRegistry::new();
    registry.register_type("A", &["attr"])?;
    registry.register_type("B", &["attr"])?;

    // 2. Compile the query (grammar of paper Fig. 2).
    let query = CompiledQuery::parse(
        "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) \
         PATTERN (SEQ(A+, B))+ \
         WITHIN 100 SLIDE 100",
        &registry,
    )?;
    println!("--- plan ---\n{}", query.describe());

    // 3. Push the stream of Fig. 12 into the streaming executor (the
    //    ungrouped query runs on a single shard). Exact counting via the
    //    u64 carrier.
    let mut executor =
        StreamExecutor::<u64>::new(query, registry.clone(), ExecutorConfig::default())?;
    let mut results = Vec::new();
    for (ty, t, attr) in [
        ("A", 1u64, 5.0),
        ("B", 2, 0.0),
        ("A", 3, 6.0),
        ("A", 4, 4.0),
        ("B", 7, 0.0),
    ] {
        let event = EventBuilder::new(&registry, ty)?
            .at(Time(t))
            .set("attr", attr)?
            .build();
        executor.push(event)?;
        results.extend(executor.poll_results()); // rows stream as windows close
    }

    // 4. End of stream: flush the remaining window.
    results.extend(executor.finish()?);
    for row in &results {
        println!("window {}:", row.window);
        for (label, value) in ["COUNT(*)", "COUNT(A)", "MIN", "MAX", "SUM", "AVG"]
            .iter()
            .zip(&row.values)
        {
            println!("  {label:>9} = {value}");
        }
    }
    let values: Vec<f64> = results[0].values.iter().map(|v| v.to_f64()).collect();
    assert_eq!(values, vec![11.0, 20.0, 4.0, 6.0, 100.0, 5.0]);
    println!("\nExample 1 of the paper reproduced ✔");

    let stats = executor.stats();
    println!(
        "events={} vertices={} edges={} (quadratic, not exponential)",
        stats.engine.events, stats.engine.vertices, stats.engine.edges
    );
    Ok(())
}
