//! Record & replay: persist a generated workload to CSV, reload it, repair
//! a deliberately shuffled copy through the executor's reorder stage, and
//! verify that all three paths produce identical aggregates.
//!
//! Demonstrates `greta_workloads::io` (stream persistence) and the
//! `StreamExecutor`'s integrated out-of-order ingestion (`slack` +
//! `LatePolicy`, the §2 out-of-order delegation).
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use greta::core::{ExecutorConfig, GretaEngine, LatePolicy, StreamExecutor};
use greta::query::CompiledQuery;
use greta::types::Event;
use greta::workloads::io::{read_csv, write_csv};
use greta::workloads::{StockConfig, StockGen};
use greta_types::SchemaRegistry;

fn run(query: &CompiledQuery, reg: &SchemaRegistry, events: &[Event]) -> Vec<f64> {
    let mut engine = GretaEngine::<f64>::new(query.clone(), reg.clone()).unwrap();
    let rows = engine.run(events).unwrap();
    rows.iter().map(|r| r.values[0].to_f64()).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and record a stock stream.
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 2000,
            ..Default::default()
        },
        &mut reg,
    )?;
    let events = gen.generate();
    let mut recording = Vec::new();
    write_csv(&mut recording, &reg, &events)?;
    println!(
        "recorded {} events → {} bytes of CSV",
        events.len(),
        recording.len()
    );

    // 2. Reload — the registry is reconstructed from the file header.
    let (reg2, replayed) = read_csv(recording.as_slice())?;
    println!("replayed {} events, {} schemas", replayed.len(), reg2.len());

    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 500",
        &reg2,
    )?;

    let live = run(&query, &reg, &events);
    let from_disk = run(&query, &reg2, &replayed);
    assert_eq!(live, from_disk);
    println!("live == replay ✔  ({} result rows)", live.len());

    // 3. Shuffle the stream locally (swap neighbours within a 16-tick
    //    jitter) and repair it through the executor's ingestion stage: a
    //    16-tick reorder slack, dropping anything later than that.
    let mut shuffled = replayed.clone();
    for i in (0..shuffled.len().saturating_sub(8)).step_by(8) {
        shuffled.swap(i, i + 7);
        shuffled.swap(i + 2, i + 5);
    }
    let mut executor = StreamExecutor::<f64>::new(
        query.clone(),
        reg2.clone(),
        ExecutorConfig {
            shards: 2,
            slack: 16,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        },
    )?;
    let mut rows = Vec::new();
    for e in &shuffled {
        executor.push(e.clone())?;
        rows.extend(executor.poll_results());
    }
    rows.extend(executor.finish()?);
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    let repaired: Vec<f64> = rows.iter().map(|r| r.values[0].to_f64()).collect();
    assert_eq!(live, repaired);
    println!(
        "shuffled + executor reorder slack == live ✔  ({} events too late)",
        executor.stats().late_dropped
    );
    Ok(())
}
