//! Record & replay: persist a generated workload to CSV, reload it, repair
//! a deliberately shuffled copy with the out-of-order adapter, and verify
//! that all three paths produce identical aggregates.
//!
//! Demonstrates `greta_workloads::io` (stream persistence) and
//! `greta_core::ReorderBuffer` (the §2 out-of-order delegation).
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use greta::core::{GretaEngine, ReorderBuffer};
use greta::query::CompiledQuery;
use greta::types::Event;
use greta::workloads::io::{read_csv, write_csv};
use greta::workloads::{StockConfig, StockGen};
use greta_types::SchemaRegistry;

fn run(query: &CompiledQuery, reg: &SchemaRegistry, events: &[Event]) -> Vec<f64> {
    let mut engine = GretaEngine::<f64>::new(query.clone(), reg.clone()).unwrap();
    let rows = engine.run(events).unwrap();
    rows.iter().map(|r| r.values[0].to_f64()).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and record a stock stream.
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 2000,
            ..Default::default()
        },
        &mut reg,
    )?;
    let events = gen.generate();
    let mut recording = Vec::new();
    write_csv(&mut recording, &reg, &events)?;
    println!(
        "recorded {} events → {} bytes of CSV",
        events.len(),
        recording.len()
    );

    // 2. Reload — the registry is reconstructed from the file header.
    let (reg2, replayed) = read_csv(recording.as_slice())?;
    println!("replayed {} events, {} schemas", replayed.len(), reg2.len());

    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 500",
        &reg2,
    )?;

    let live = run(&query, &reg, &events);
    let from_disk = run(&query, &reg2, &replayed);
    assert_eq!(live, from_disk);
    println!("live == replay ✔  ({} result rows)", live.len());

    // 3. Shuffle the stream locally (swap neighbours within a 16-tick
    //    jitter) and repair it with the slack buffer.
    let mut shuffled = replayed.clone();
    for i in (0..shuffled.len().saturating_sub(8)).step_by(8) {
        shuffled.swap(i, i + 7);
        shuffled.swap(i + 2, i + 5);
    }
    let mut buf = ReorderBuffer::new(16);
    let mut engine = GretaEngine::<f64>::new(query.clone(), reg2.clone())?;
    let mut late = 0u64;
    for e in &shuffled {
        match buf.push(e.clone()) {
            Ok(ready) => {
                for e in ready {
                    engine.process(&e)?;
                }
            }
            Err(_) => late += 1,
        }
    }
    for e in buf.flush() {
        engine.process(&e)?;
    }
    let repaired: Vec<f64> = engine.finish().iter().map(|r| r.values[0].to_f64()).collect();
    assert_eq!(live, repaired);
    println!("shuffled + reorder-buffer == live ✔  ({late} events too late)");
    Ok(())
}
