//! Cascade: a two-stage executor DAG wired through `min_frontier`.
//!
//! Stage 1 is a multi-query executor: one shared ingest plane (reorder
//! buffer paid once per event) hosting the primary query plus a second
//! query registered at runtime. Stage 2 is a downstream executor that
//! consumes the primary query's *finalized* windows as its own input
//! events — the cascaded-DAG pattern.
//!
//! The correctness hinge is [`min_frontier`]: under `WindowOrdered`
//! emission it reports the window id every shard has passed, so rows of
//! windows strictly below it are final — no late row can ever amend
//! them. Forwarding only those rows makes the cascade deterministic: the
//! pipelined run below produces byte-identical stage-2 output to a
//! sequential run (stage 1 to completion, then stage 2).
//!
//! ```sh
//! cargo run --example cascade
//! ```
//!
//! [`min_frontier`]: greta::core::StreamExecutor::min_frontier

use greta::core::{
    sort_canonical, EmissionMode, ExecutorConfig, QueryId, StreamExecutor, WindowResult,
};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};

/// Stage 1, primary: per-group count of upward load trends.
const STAGE1: &str = "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
                      GROUP-BY grp WITHIN 60 SLIDE 30";
/// Stage 1, registered at runtime on the same stream: total load volume
/// per group over a different window.
const SIDE: &str = "RETURN grp, SUM(M.load) PATTERN M+ WHERE M.load < NEXT(M).load \
                    GROUP-BY grp WITHIN 40 SLIDE 20";
/// Stage 2: trends *of the trend counts* — windows where a group's
/// stage-1 count kept rising.
const STAGE2: &str = "RETURN grp, COUNT(*) PATTERN W+ WHERE W.trends < NEXT(W).trends \
                      GROUP-BY grp WITHIN 6 SLIDE 3";

/// Re-encode one finalized stage-1 row as a stage-2 input event: the
/// window id becomes event time (windows close in order, so times are
/// non-decreasing), the group key and the aggregate become attributes.
fn row_to_event(reg: &SchemaRegistry, row: &WindowResult<f64>) -> Event {
    let grp = match &row.group.0[0] {
        Some(greta::types::Value::Float(g)) => *g,
        Some(greta::types::Value::Int(g)) => *g as f64,
        other => panic!("unexpected group key {other:?}"),
    };
    EventBuilder::new(reg, "W")
        .unwrap()
        .at(Time(row.window))
        .set("grp", grp)
        .unwrap()
        .set("trends", row.values[0].to_f64())
        .unwrap()
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1 schema and executor: 4 shards, ordered emission (the
    // frontier only advances under WindowOrdered).
    let mut reg1 = SchemaRegistry::new();
    reg1.register_type("M", &["grp", "load"])?;
    let q1 = CompiledQuery::parse(STAGE1, &reg1)?;
    let mut up = StreamExecutor::<f64>::new(
        q1,
        reg1.clone(),
        ExecutorConfig {
            shards: 4,
            emission: EmissionMode::WindowOrdered,
            ..Default::default()
        },
    )?;

    // A second query joins the same stream at runtime: one barrier, no
    // second ingest path, no second reorder buffer.
    let side = up.register_query(SIDE, EmissionMode::Unordered)?;
    println!("stage 1 hosts queries {:?}", up.query_ids());

    // Stage 2 consumes stage-1 rows as events.
    let mut reg2 = SchemaRegistry::new();
    reg2.register_type("W", &["grp", "trends"])?;
    let q2 = CompiledQuery::parse(STAGE2, &reg2)?;
    let mut down = StreamExecutor::<f64>::new(
        q2,
        reg2.clone(),
        ExecutorConfig {
            shards: 2,
            emission: EmissionMode::WindowOrdered,
            ..Default::default()
        },
    )?;

    // Pipelined run: push stage 1, forward every finalized stage-1 row
    // (window strictly below the frontier) into stage 2 as it appears.
    // Everything below the cross-shard frontier is final: safe to feed
    // downstream even while stage 1 is still running.
    // Under `WindowOrdered` emission the polled rows arrive in canonical
    // `(window, group)` order, so the finalized rows are a prefix —
    // draining it preserves the order stage 2 sees, which matters
    // because stage-1 rows of one window share an event time and
    // `NEXT(W)` is order-sensitive among ties.
    let forward = |staged: &mut Vec<WindowResult<f64>>,
                   down: &mut StreamExecutor<f64>,
                   frontier: u64|
     -> Result<usize, Box<dyn std::error::Error>> {
        let cut = staged.partition_point(|r| r.window < frontier);
        for row in staged.drain(..cut) {
            down.push(row_to_event(&reg2, &row))?;
        }
        Ok(cut)
    };

    let mut staged: Vec<WindowResult<f64>> = Vec::new();
    let mut forwarded = 0usize;
    let mut side_rows = Vec::new();
    for t in 1..=600u64 {
        let e = EventBuilder::new(&reg1, "M")?
            .at(Time(t))
            .set("grp", (t % 5) as f64)?
            .set("load", ((t * 31) % 17) as f64)?
            .build();
        up.push(e)?;
        staged.extend(up.poll_results());
        side_rows.extend(up.poll_results_of(side)?);
        forwarded += forward(&mut staged, &mut down, up.min_frontier(QueryId::PRIMARY)?)?;
    }
    // Frontier stamps travel asynchronously on the result channel; give
    // the shard workers a bounded moment to report the windows the push
    // loop already closed, so the pipelined hand-off is visible before
    // end-of-stream.
    for _ in 0..10_000 {
        if up.min_frontier(QueryId::PRIMARY)? > 0 {
            break;
        }
        std::thread::yield_now();
    }
    staged.extend(up.poll_results());
    forwarded += forward(&mut staged, &mut down, up.min_frontier(QueryId::PRIMARY)?)?;
    println!("forwarded {forwarded} finalized rows while both stages were live");

    // End of stream: stage 1's remainder is final by definition; keep
    // window order for stage 2's reorder buffer.
    staged.extend(up.finish()?);
    sort_canonical(&mut staged);
    for row in &staged {
        down.push(row_to_event(&reg2, row))?;
        forwarded += 1;
    }
    side_rows.extend(up.poll_results_of(side)?);

    let mut out = down.poll_results();
    out.extend(down.finish()?);
    sort_canonical(&mut out);
    println!(
        "stage 1 emitted {} rows (+{} from the registered side query); stage 2 emitted {}",
        forwarded,
        side_rows.len(),
        out.len()
    );
    for row in out.iter().take(5) {
        println!(
            "  stage-2 window {} group {:?}: {} rising trend-count runs",
            row.window, row.group, row.values[0]
        );
    }

    // Determinism check: a fully sequential run — stage 1 to completion
    // on one shard, then stage 2 on one shard — yields the same stage-2
    // rows as the pipelined cascade above.
    let oracle = sequential_oracle(&reg1, &reg2)?;
    assert_eq!(
        out, oracle,
        "pipelined cascade diverged from sequential run"
    );
    assert!(forwarded > 0 && !out.is_empty());
    println!("cascade matches the sequential oracle ✔");
    Ok(())
}

/// The non-pipelined reference: run each stage to completion on a single
/// shard, in sequence.
fn sequential_oracle(
    reg1: &SchemaRegistry,
    reg2: &SchemaRegistry,
) -> Result<Vec<WindowResult<f64>>, Box<dyn std::error::Error>> {
    let one_shard = |emission| ExecutorConfig {
        shards: 1,
        emission,
        ..Default::default()
    };
    let mut up = StreamExecutor::<f64>::new(
        CompiledQuery::parse(STAGE1, reg1)?,
        reg1.clone(),
        one_shard(EmissionMode::WindowOrdered),
    )?;
    for t in 1..=600u64 {
        up.push(
            EventBuilder::new(reg1, "M")?
                .at(Time(t))
                .set("grp", (t % 5) as f64)?
                .set("load", ((t * 31) % 17) as f64)?
                .build(),
        )?;
    }
    let mut rows = up.poll_results();
    rows.extend(up.finish()?);
    sort_canonical(&mut rows);

    let mut down = StreamExecutor::<f64>::new(
        CompiledQuery::parse(STAGE2, reg2)?,
        reg2.clone(),
        one_shard(EmissionMode::WindowOrdered),
    )?;
    for row in &rows {
        down.push(row_to_event(reg2, row))?;
    }
    let mut out = down.poll_results();
    out.extend(down.finish()?);
    sort_canonical(&mut out);
    Ok(out)
}
