//! Traffic management scenario (paper §1, query Q3): detect traffic jams
//! *not caused by accidents* — `SEQ(NOT Accident A, Position P+)` with a
//! decreasing-speed edge predicate, grouped by road segment.
//!
//! Demonstrates leading negation (Case 3 of §5.1): once an accident is
//! reported in a segment, later slow-down trends in that segment are
//! suppressed via Definition-5 invalidation — no trend is ever built and
//! thrown away.
//!
//! ```sh
//! cargo run --release --example traffic
//! ```

use greta::core::{ExecutorConfig, StreamExecutor};
use greta::query::CompiledQuery;
use greta::workloads::{LinearRoadConfig, LinearRoadGen};
use greta_types::SchemaRegistry;

/// Push a batch through a sharded executor and return all rows in
/// `(window, group)` order.
fn run_sharded(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    events: &[greta::types::Event],
) -> Result<Vec<greta::core::WindowResult<f64>>, Box<dyn std::error::Error>> {
    let mut executor = StreamExecutor::<f64>::new(
        query.clone(),
        registry.clone(),
        ExecutorConfig {
            shards: 4, // segments shard cleanly: accidents broadcast
            ..Default::default()
        },
    )?;
    let mut rows = Vec::new();
    for e in events {
        executor.push(e.clone())?;
        rows.extend(executor.poll_results());
    }
    rows.extend(executor.finish()?);
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    Ok(rows)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SchemaRegistry::new();
    let generator = LinearRoadGen::new(
        LinearRoadConfig {
            events: 8000,
            vehicles: 40,
            segments: 8,
            slowdown_bias: 0.6,
            accident_rate: 0.002,
            ..Default::default()
        },
        &mut registry,
    )?;
    let events = generator.generate();
    let accidents = events
        .iter()
        .filter(|e| e.type_id == generator.accident)
        .count();
    println!(
        "generated {} position reports and {accidents} accidents",
        events.len() - accidents
    );

    let query = CompiledQuery::parse(
        "RETURN segment, COUNT(*), AVG(P.speed) \
         PATTERN SEQ(NOT Accident A, Position P+) \
         WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
         GROUP-BY segment \
         WITHIN 2000 SLIDE 2000",
        &registry,
    )?;

    let rows = run_sharded(&query, &registry, &events)?;
    println!("\nslow-down trends per segment (accident-free only):");
    for row in &rows {
        println!(
            "  window {:>2} | {} | trends = {:>12} | avg speed = {:.1}",
            row.window,
            row.group.display_with(&query.group_by),
            row.values[0].to_string(),
            row.values[1].to_f64()
        );
    }

    // Contrast: without the negative sub-pattern, accident segments also
    // report congestion trends.
    let no_neg = CompiledQuery::parse(
        "RETURN segment, COUNT(*), AVG(P.speed) \
         PATTERN Position P+ \
         WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
         GROUP-BY segment \
         WITHIN 2000 SLIDE 2000",
        &registry,
    )?;
    let rows2 = run_sharded(&no_neg, &registry, &events)?;
    let with_neg: f64 = rows.iter().map(|r| r.values[0].to_f64()).sum();
    let without: f64 = rows2.iter().map(|r| r.values[0].to_f64()).sum();
    println!(
        "\ntotal trends with negation: {with_neg:.0}; without: {without:.0} \
         (accidents suppress {:.1}%)",
        (1.0 - with_neg / without.max(1.0)) * 100.0
    );
    assert!(with_neg <= without);
    Ok(())
}
