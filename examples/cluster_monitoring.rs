//! Hadoop cluster monitoring scenario (paper §1, query Q2): total CPU
//! cycles per mapper across jobs with increasing load trends —
//! `SEQ(Start S, Measurement M+, End E)` with the `M.load < NEXT(M).load`
//! edge predicate, grouped by mapper.
//!
//! Demonstrates sequence patterns with MID events, SUM aggregation, and
//! the §10.4 per-group parallel execution.
//!
//! ```sh
//! cargo run --release --example cluster_monitoring
//! ```

use greta::core::{ExecutorConfig, GretaEngine, StreamExecutor};
use greta::query::CompiledQuery;
use greta::workloads::{ClusterConfig, ClusterGen};
use greta_types::SchemaRegistry;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SchemaRegistry::new();
    let generator = ClusterGen::new(
        ClusterConfig {
            events: 20_000,
            mappers: 8,
            jobs: 10,
            ..Default::default()
        },
        &mut registry,
    )?;
    let events = generator.generate();
    println!(
        "generated {} cluster events (Table 2 distributions)",
        events.len()
    );

    let query = CompiledQuery::parse(
        "RETURN mapper, SUM(M.cpu) \
         PATTERN SEQ(Start S, Measurement M+, End E) \
         WHERE [job, mapper] AND M.load < NEXT(M).load \
         GROUP-BY mapper \
         WITHIN 5000 SLIDE 5000",
        &registry,
    )?;

    // Sequential run.
    let t0 = Instant::now();
    let mut engine = GretaEngine::<f64>::new(query.clone(), registry.clone())?;
    for e in &events {
        engine.process(e)?;
    }
    let rows = engine.finish();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nsequential: {} mapper-window rows in {seq_ms:.1} ms",
        rows.len()
    );
    for row in rows.iter().take(8) {
        println!(
            "  window {:>2} | {} | SUM(M.cpu) = {}",
            row.window,
            row.group.display_with(&query.group_by),
            row.values[0]
        );
    }

    // Sharded executor run (paper §7/§10.4): each mapper group is owned by
    // one shard, events are pushed incrementally, results stream out as
    // windows close.
    for shards in [2usize, 4] {
        let t0 = Instant::now();
        let mut executor = StreamExecutor::<f64>::new(
            query.clone(),
            registry.clone(),
            ExecutorConfig {
                shards,
                ..Default::default()
            },
        )?;
        let mut prows = Vec::new();
        for e in &events {
            executor.push(e.clone())?;
            prows.extend(executor.poll_results());
        }
        prows.extend(executor.finish()?);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("executor x{shards}: {} rows in {ms:.1} ms", prows.len());
        assert_eq!(prows.len(), rows.len());
    }
    Ok(())
}
