//! Durability demo: run query Q1 over the stock stream with the WAL and
//! snapshotting enabled, "crash" mid-stream (drop the executor without
//! `finish()`), recover from disk, finish the stream, and verify the
//! combined output is byte-identical to an uninterrupted run.
//!
//! Exits non-zero on any mismatch — CI uses this as the recovery smoke
//! test.
//!
//! ```sh
//! cargo run --release --example durability
//! ```

use greta::core::{ExecutorConfig, GretaEngine, StreamExecutor, WindowResult};
use greta::durability::DurabilityConfig;
use greta::query::CompiledQuery;
use greta::types::SchemaRegistry;
use greta::workloads::{StockConfig, StockGen};

fn sorted(mut rows: Vec<WindowResult<u64>>) -> Vec<WindowResult<u64>> {
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    rows
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 4000,
            companies: 20,
            sectors: 8,
            ..Default::default()
        },
        &mut registry,
    )?;
    let events = gen.generate();
    let query = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 125",
        &registry,
    )?;

    // Uninterrupted oracle run.
    let mut oracle = GretaEngine::<u64>::new(query.clone(), registry.clone())?;
    let expect = sorted(oracle.run(&events)?);

    let dir = std::env::temp_dir().join(format!("greta-durability-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ExecutorConfig {
        shards: 4,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };

    // Phase 1: ingest 60% of the stream, then crash without finish().
    let crash_at = events.len() * 6 / 10;
    let mut committed = Vec::new();
    {
        let mut executor =
            StreamExecutor::<u64>::new(query.clone(), registry.clone(), config.clone())?;
        for e in &events[..crash_at] {
            executor.push(e.clone())?;
            committed.extend(executor.poll_results());
        }
        executor.checkpoint()?;
        let stats = executor.stats();
        println!(
            "crash after {} events: {} checkpoint(s), {} frames, {} rows already polled",
            crash_at,
            stats.checkpoints,
            stats.frames,
            committed.len()
        );
        // Dropping without finish() simulates the crash.
    }

    // Phase 2: recover from the manifest + snapshot + WAL tail.
    let mut executor = StreamExecutor::<u64>::recover(query, registry, config)?;
    println!(
        "recovered: {} events restored/replayed from {}",
        executor.stats().pushed,
        dir.display()
    );
    for e in &events[crash_at..] {
        executor.push(e.clone())?;
        committed.extend(executor.poll_results());
    }
    committed.extend(executor.finish()?);

    let got = sorted(committed);
    if got == expect {
        println!(
            "OK: {} result rows byte-identical to the uninterrupted run",
            got.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    } else {
        eprintln!(
            "MISMATCH: recovered run produced {} rows, oracle {}",
            got.len(),
            expect.len()
        );
        std::process::exit(1);
    }
}
