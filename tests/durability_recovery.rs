//! End-to-end durability: checkpoint → crash → recover on the paper's
//! workloads (Q1 stock, Q2 cluster), crash at arbitrary points (proptest
//! against an uninterrupted oracle), and corrupted-log handling (torn
//! tails recover, checksum corruption is a clean error).

use greta::core::{
    EngineError, ExecutorConfig, GretaEngine, PartitionKey, StreamExecutor, WindowResult,
};
use greta::durability::DurabilityConfig;
use greta::query::CompiledQuery;
use greta::types::{Event, SchemaRegistry};
use greta::workloads::{ClusterConfig, ClusterGen, StockConfig, StockGen};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("greta-durtest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn durable(dir: &Path, shards: usize, every: u64) -> ExecutorConfig {
    let mut dcfg = DurabilityConfig::new(dir);
    dcfg.snapshot_every_windows = every;
    dcfg.segment_bytes = 4096; // small segments so truncation is exercised
    ExecutorConfig {
        shards,
        durability: Some(dcfg),
        ..Default::default()
    }
}

fn sorted(mut rows: Vec<WindowResult<u64>>) -> Vec<WindowResult<u64>> {
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    rows
}

fn oracle(q: &CompiledQuery, reg: &SchemaRegistry, events: &[Event]) -> Vec<WindowResult<u64>> {
    let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
    sorted(engine.run(events).unwrap())
}

fn stock_q1(events: usize) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events,
            companies: 12,
            sectors: 5,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let evs = gen.generate();
    let q = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 300 SLIDE 100",
        &reg,
    )
    .unwrap();
    (reg, q, evs)
}

fn cluster_q2(events: usize) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = ClusterGen::new(
        ClusterConfig {
            events,
            mappers: 6,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let evs = gen.generate();
    let q = CompiledQuery::parse(
        "RETURN mapper, SUM(M.cpu) \
         PATTERN SEQ(Start S, Measurement M+, End E) \
         WHERE [job, mapper] AND M.load < NEXT(M).load \
         GROUP-BY mapper WITHIN 400 SLIDE 200",
        &reg,
    )
    .unwrap();
    (reg, q, evs)
}

/// checkpoint → crash → recover must reproduce the uninterrupted run
/// byte-for-byte: rows polled before the checkpoint plus everything the
/// recovered executor emits equal the oracle exactly.
fn assert_crash_recover_exact(
    name: &str,
    reg: &SchemaRegistry,
    q: &CompiledQuery,
    events: &[Event],
    crash_at: usize,
    shards: usize,
) {
    let expect = oracle(q, reg, events);
    let dir = tmpdir(name);
    let mut committed = Vec::new();
    {
        let mut exec =
            StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable(&dir, shards, 2)).unwrap();
        for e in &events[..crash_at] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        exec.checkpoint().unwrap();
        // Crash: dropped without finish(); un-polled rows ride the snapshot.
    }
    let mut exec =
        StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable(&dir, shards, 2)).unwrap();
    for e in &events[crash_at..] {
        exec.push(e.clone()).unwrap();
        committed.extend(exec.poll_results());
    }
    committed.extend(exec.finish().unwrap());
    assert_eq!(sorted(committed), expect, "{name}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn q1_stock_crash_recover_byte_identical() {
    let (reg, q, events) = stock_q1(1200);
    for (i, crash_at) in [150usize, 600, 1100].into_iter().enumerate() {
        assert_crash_recover_exact(
            &format!("q1-{i}"),
            &reg,
            &q,
            &events,
            crash_at,
            1 + i, // 1, 2, 3 shards
        );
    }
}

#[test]
fn q2_cluster_crash_recover_byte_identical() {
    let (reg, q, events) = cluster_q2(1200);
    for (i, crash_at) in [200usize, 700].into_iter().enumerate() {
        assert_crash_recover_exact(&format!("q2-{i}"), &reg, &q, &events, crash_at, 2 + i);
    }
}

#[test]
fn double_crash_double_recover() {
    // Crash, recover, crash again mid-replay-continuation, recover again.
    let (reg, q, events) = stock_q1(900);
    let expect = oracle(&q, &reg, &events);
    let dir = tmpdir("double-crash");
    let mut committed = Vec::new();
    {
        let mut exec =
            StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable(&dir, 2, 2)).unwrap();
        for e in &events[..300] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        exec.checkpoint().unwrap();
    }
    {
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable(&dir, 2, 2)).unwrap();
        for e in &events[300..600] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        exec.checkpoint().unwrap();
    }
    let mut exec =
        StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable(&dir, 2, 2)).unwrap();
    for e in &events[600..] {
        exec.push(e.clone()).unwrap();
        committed.extend(exec.poll_results());
    }
    committed.extend(exec.finish().unwrap());
    assert_eq!(sorted(committed), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Union of pre-crash output and post-recovery output, deduplicated by
/// `(window, group)` — the documented idempotent-sink contract for crashes
/// at arbitrary (non-checkpoint-aligned) points.
fn dedup_union(
    committed: Vec<WindowResult<u64>>,
    recovered: Vec<WindowResult<u64>>,
) -> Result<Vec<WindowResult<u64>>, TestCaseError> {
    let mut map: BTreeMap<(u64, PartitionKey), WindowResult<u64>> = BTreeMap::new();
    for row in committed.into_iter().chain(recovered) {
        let key = (row.window, row.group.clone());
        if let Some(prev) = map.get(&key) {
            // Duplicates must be byte-identical (deterministic replay).
            prop_assert_eq!(&prev.values, &row.values, "non-identical duplicate");
        } else {
            map.insert(key, row);
        }
    }
    Ok(map.into_values().collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Kill the executor after N events — no cooperative checkpoint, only
    /// whatever the automatic cadence produced — recover, run the rest,
    /// and compare against the uninterrupted oracle run on Q1.
    #[test]
    fn crash_at_arbitrary_point_recovers(
        crash_at in 1usize..400,
        shards in 1usize..4,
        every in 1u64..5,
    ) {
        let (reg, q, events) = stock_q1(400);
        let expect = oracle(&q, &reg, &events);
        let dir = tmpdir(&format!("prop-{crash_at}-{shards}-{every}"));
        let mut committed = Vec::new();
        {
            let mut exec = StreamExecutor::<u64>::new(
                q.clone(),
                reg.clone(),
                durable(&dir, shards, every),
            )
            .unwrap();
            for e in &events[..crash_at] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            // Hard crash: no finish, no checkpoint, rows in flight lost.
        }
        let mut exec = StreamExecutor::<u64>::recover(
            q.clone(),
            reg.clone(),
            durable(&dir, shards, every),
        )
        .unwrap();
        let mut recovered = Vec::new();
        for e in &events[crash_at..] {
            exec.push(e.clone()).unwrap();
            recovered.extend(exec.poll_results());
        }
        recovered.extend(exec.finish().unwrap());
        let got = sorted(dedup_union(committed, recovered)?);
        prop_assert_eq!(got, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Corrupted logs
// ---------------------------------------------------------------------

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_string();
            (name.starts_with("wal-") && name.ends_with(".seg")).then_some(p)
        })
        .collect();
    segs.sort();
    segs
}

/// Write a WAL (no checkpoint) for `n` events, then crash.
fn wal_only_run(dir: &Path, n: usize) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let (reg, q, events) = stock_q1(n);
    let mut cfg = durable(dir, 2, 2);
    cfg.durability.as_mut().unwrap().snapshot_every_windows = u64::MAX;
    cfg.durability.as_mut().unwrap().segment_bytes = 1 << 20; // one segment
    let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), cfg).unwrap();
    for e in &events {
        exec.push(e.clone()).unwrap();
    }
    drop(exec); // crash
    (reg, q, events)
}

#[test]
fn torn_wal_tail_recovers_without_the_torn_record() {
    let dir = tmpdir("torn-tail");
    let (reg, q, events) = wal_only_run(&dir, 60);
    // Tear the last frame: a crash mid-append.
    let seg = wal_segments(&dir).pop().expect("one segment");
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);
    // Recovery repairs the tail: state is the stream minus the torn-off
    // final event (which was never durable).
    let mut exec =
        StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable(&dir, 2, 2)).unwrap();
    assert_eq!(exec.stats().pushed, events.len() as u64 - 1);
    let rows = sorted(exec.finish().unwrap());
    assert_eq!(rows, oracle(&q, &reg, &events[..events.len() - 1]));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_checksum_corruption_is_a_clean_recovery_error() {
    let dir = tmpdir("bad-crc");
    let (reg, q, _) = wal_only_run(&dir, 60);
    // Flip one byte in the middle of the log: data corruption, not a torn
    // write — recovery must refuse rather than replay garbage.
    let seg = wal_segments(&dir).pop().expect("one segment");
    let mut data = std::fs::read(&seg).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x40;
    std::fs::write(&seg, &data).unwrap();
    let err = StreamExecutor::<u64>::recover(q, reg, durable(&dir, 2, 2))
        .err()
        .expect("recover must fail on checksum corruption");
    assert!(matches!(err, EngineError::Durability(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_corruption_is_a_clean_recovery_error() {
    let dir = tmpdir("bad-snap");
    let (reg, q, events) = stock_q1(300);
    {
        let mut exec =
            StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable(&dir, 2, 2)).unwrap();
        for e in &events[..200] {
            exec.push(e.clone()).unwrap();
        }
        exec.checkpoint().unwrap();
    }
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-"))
        })
        .expect("snapshot file");
    let mut data = std::fs::read(&snap).unwrap();
    let last = data.len() - 1;
    data[last] ^= 0x01;
    std::fs::write(&snap, &data).unwrap();
    let err = StreamExecutor::<u64>::recover(q, reg, durable(&dir, 2, 2))
        .err()
        .expect("recover must fail on snapshot corruption");
    assert!(matches!(err, EngineError::Durability(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
