//! Failure injection and boundary conditions: out-of-order input, empty
//! streams, same-timestamp floods, degenerate windows, engine lifecycle
//! misuse — the engine must fail loudly (typed errors) or behave exactly
//! per spec, never corrupt state.

use greta::core::{EngineError, GretaEngine, MemoryFootprint, ReorderBuffer};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &["attr"]).unwrap();
    reg.register_type("B", &["attr"]).unwrap();
    reg.register_type("Z", &["attr"]).unwrap(); // not in any query
    reg
}

fn ev(reg: &SchemaRegistry, ty: &str, t: u64) -> Event {
    EventBuilder::new(reg, ty).unwrap().at(Time(t)).build()
}

fn count_query(reg: &SchemaRegistry) -> CompiledQuery {
    CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", reg).unwrap()
}

#[test]
fn out_of_order_event_is_rejected_and_engine_survives() {
    let reg = registry();
    let mut engine = GretaEngine::<u64>::new(count_query(&reg), reg.clone()).unwrap();
    engine.process(&ev(&reg, "A", 10)).unwrap();
    let err = engine.process(&ev(&reg, "A", 5)).unwrap_err();
    assert!(matches!(
        err,
        EngineError::OutOfOrder {
            watermark: 10,
            got: 5
        }
    ));
    // The engine keeps working for in-order input after the rejection.
    engine.process(&ev(&reg, "A", 11)).unwrap();
    let rows = engine.finish();
    assert_eq!(rows[0].values[0].to_f64(), 3.0); // {a10},{a11},(a10,a11)
}

#[test]
fn empty_stream_produces_no_rows() {
    let reg = registry();
    let mut engine = GretaEngine::<u64>::new(count_query(&reg), reg.clone()).unwrap();
    assert!(engine.finish().is_empty());
    assert_eq!(engine.memory_bytes(), 0);
}

#[test]
fn stream_of_only_irrelevant_types_produces_no_rows() {
    let reg = registry();
    let mut engine = GretaEngine::<u64>::new(count_query(&reg), reg.clone()).unwrap();
    for t in 0..50 {
        engine.process(&ev(&reg, "Z", t)).unwrap();
    }
    assert!(engine.finish().is_empty());
    assert_eq!(engine.stats().vertices, 0);
}

#[test]
fn same_timestamp_flood_yields_singletons_only() {
    // 100 a's at the same tick: Def. 1 adjacency needs strictly increasing
    // times, so no pair connects — exactly 100 single-event trends.
    let reg = registry();
    let mut engine = GretaEngine::<u64>::new(count_query(&reg), reg.clone()).unwrap();
    for _ in 0..100 {
        engine.process(&ev(&reg, "A", 7)).unwrap();
    }
    let rows = engine.finish();
    assert_eq!(rows[0].values[0].to_f64(), 100.0);
    assert_eq!(engine.stats().edges, 0);
}

#[test]
fn window_shorter_than_slide_samples_the_stream() {
    // WITHIN 2 SLIDE 5: only events with t mod 5 < 2 are in any window.
    let reg = registry();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 2 SLIDE 5", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    for t in 0..20u64 {
        engine.process(&ev(&reg, "A", t)).unwrap();
    }
    let rows = engine.finish();
    // Windows [0,2), [5,7), [10,12), [15,17): each holds 2 events ⇒ 3 trends.
    assert_eq!(rows.len(), 4);
    assert!(rows.iter().all(|r| r.values[0].to_f64() == 3.0));
}

#[test]
fn finish_is_idempotent() {
    let reg = registry();
    let mut engine = GretaEngine::<u64>::new(count_query(&reg), reg.clone()).unwrap();
    engine.process(&ev(&reg, "A", 1)).unwrap();
    let first = engine.finish();
    assert_eq!(first.len(), 1);
    assert!(engine.finish().is_empty()); // already drained
    assert!(engine.poll_results().is_empty());
}

#[test]
fn saturating_u64_carrier_never_wraps() {
    // 80 mutually-compatible events drive counts past 2^64; the u64
    // carrier must saturate at u64::MAX instead of wrapping to nonsense.
    let reg = registry();
    let q =
        CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    for t in 0..80u64 {
        engine.process(&ev(&reg, "A", t)).unwrap();
    }
    let rows = engine.finish();
    match &rows[0].values[0] {
        greta::core::OutValue::Count(c) => assert_eq!(*c, u64::MAX),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn biguint_carrier_is_exact_past_u64() {
    use greta_bignum::BigUint;
    let reg = registry();
    let q =
        CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000", &reg).unwrap();
    let mut engine = GretaEngine::<BigUint>::new(q, reg.clone()).unwrap();
    for t in 0..80u64 {
        engine.process(&ev(&reg, "A", t)).unwrap();
    }
    let rows = engine.finish();
    // 2^80 - 1, exactly.
    assert_eq!(rows[0].values[0].to_string(), "1208925819614629174706175");
}

#[test]
fn reorder_buffer_rescues_moderately_disordered_input() {
    let reg = registry();
    let mut engine = GretaEngine::<u64>::new(count_query(&reg), reg.clone()).unwrap();
    let mut buf = ReorderBuffer::new(5);
    let times = [2u64, 1, 3, 6, 4, 8, 7, 12, 10];
    let mut dropped = 0;
    for t in times {
        match buf.push(ev(&reg, "A", t).into_ref()) {
            Ok(ready) => {
                for e in ready {
                    engine.process_ref(&e).unwrap();
                }
            }
            Err(_) => dropped += 1,
        }
    }
    for e in buf.flush() {
        engine.process_ref(&e).unwrap();
    }
    assert_eq!(dropped, 0);
    let rows = engine.finish();
    assert_eq!(rows[0].values[0].to_f64(), (1u64 << 9) as f64 - 1.0);
}

#[test]
fn huge_time_gaps_do_not_blow_memory_or_panic() {
    let reg = registry();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    for t in [0u64, 1_000_000, 2_000_000_000, 4_000_000_000_000] {
        engine.process(&ev(&reg, "A", t)).unwrap();
    }
    let rows = engine.finish();
    assert_eq!(rows.len(), 4);
    assert!(engine.memory_bytes() < 64 * 1024);
}

#[test]
fn max_timestamp_does_not_overflow_window_arithmetic() {
    let reg = registry();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    // A very large (but not MAX, to keep wid*slide+within in range) stamp.
    engine.process(&ev(&reg, "A", u64::MAX / 4)).unwrap();
    let rows = engine.finish();
    assert_eq!(rows.len(), 1);
}

#[test]
fn events_with_zero_attributes_work() {
    let mut reg = SchemaRegistry::new();
    reg.register_type("N", &[]).unwrap();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN N+ WITHIN 10 SLIDE 10", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    for t in 0..4u64 {
        let e = EventBuilder::new(&reg, "N").unwrap().at(Time(t)).build();
        engine.process(&e).unwrap();
    }
    let rows = engine.finish();
    assert_eq!(rows[0].values[0].to_f64(), 15.0);
}

#[test]
fn vertex_predicate_that_rejects_everything() {
    let reg = registry();
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN A S+ WHERE S.attr > 100 WITHIN 10 SLIDE 10",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    for t in 0..10u64 {
        engine.process(&ev(&reg, "A", t)).unwrap();
    }
    assert!(engine.finish().is_empty());
    assert_eq!(engine.stats().vertices, 0);
}
