//! Event-selection semantics (experiment E6, Table 1): the same pattern
//! under skip-till-any-match, skip-till-next-match and contiguous
//! semantics must produce exponential / polynomial / polynomial trend
//! counts with `any ≥ next ≥ contiguous`-style dominance on count volume.

use greta::core::{EngineConfig, GretaEngine, Semantics};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &["attr"]).unwrap();
    reg.register_type("B", &["attr"]).unwrap();
    reg
}

fn ev(reg: &SchemaRegistry, ty: &str, t: u64, attr: f64) -> Event {
    EventBuilder::new(reg, ty)
        .unwrap()
        .at(Time(t))
        .set("attr", attr)
        .unwrap()
        .build()
}

fn count_with(sem: Semantics, query_text: &str, evs: &[Event], reg: &SchemaRegistry) -> f64 {
    let q = CompiledQuery::parse(query_text, reg).unwrap();
    let mut engine = GretaEngine::<u64>::with_config(
        q,
        reg.clone(),
        EngineConfig {
            semantics: sem,
            ..Default::default()
        },
    )
    .unwrap();
    let rows = engine.run(evs).unwrap();
    rows.iter().map(|r| r.values[0].to_f64()).sum()
}

#[test]
fn table_1_trend_count_growth() {
    // n identical a's under A+:
    //   skip-till-any:  2^n − 1 subsets (exponential)
    //   skip-till-next: n(n+1)/2 runs via latest-predecessor chaining
    //   contiguous:     n(n+1)/2 contiguous runs
    let reg = registry();
    let n = 10u64;
    let evs: Vec<Event> = (1..=n).map(|t| ev(&reg, "A", t, 0.0)).collect();
    let q = "RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000";
    assert_eq!(count_with(Semantics::SkipTillAny, q, &evs, &reg), 1023.0);
    assert_eq!(count_with(Semantics::SkipTillNext, q, &evs, &reg), 55.0);
    assert_eq!(count_with(Semantics::Contiguous, q, &evs, &reg), 55.0);
}

#[test]
fn contiguous_skips_nothing() {
    // a1 b2 a3: under contiguous semantics, (a1, a3) is not a trend of A+
    // because b2 sits between them.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 0.0),
        ev(&reg, "B", 2, 0.0),
        ev(&reg, "A", 3, 0.0),
    ];
    let q = "RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000";
    assert_eq!(count_with(Semantics::Contiguous, q, &evs, &reg), 2.0); // {a1},{a3}
    assert_eq!(count_with(Semantics::SkipTillAny, q, &evs, &reg), 3.0); // + (a1,a3)
}

#[test]
fn skip_till_next_skips_only_irrelevant() {
    // a1 b2 a3: b2 is irrelevant to A+, so skip-till-next still links a1→a3.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 0.0),
        ev(&reg, "B", 2, 0.0),
        ev(&reg, "A", 3, 0.0),
    ];
    let q = "RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000";
    assert_eq!(count_with(Semantics::SkipTillNext, q, &evs, &reg), 3.0);
}

#[test]
fn skip_till_next_respects_predicates() {
    // Decreasing-attr trend over 10, 12, 8: under skip-till-next, 8 links
    // to the *latest* compatible event (12 fails the predicate? prev=12 >
    // next=8 holds! prev must satisfy attr > next). Both 10 and 12 are
    // compatible; only the latest (12) links.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 10.0),
        ev(&reg, "A", 2, 12.0),
        ev(&reg, "A", 3, 8.0),
    ];
    let q = "RETURN COUNT(*) PATTERN A S+ WHERE S.attr > NEXT(S).attr WITHIN 1000 SLIDE 1000";
    // any: {10},{12},{8},(10,8),(12,8) = 5; next: {10},{12},{8},(12,8) = 4.
    assert_eq!(count_with(Semantics::SkipTillAny, q, &evs, &reg), 5.0);
    assert_eq!(count_with(Semantics::SkipTillNext, q, &evs, &reg), 4.0);
}

#[test]
fn semantics_ordering_on_random_stream() {
    // Volume dominance: any ≥ next and any ≥ contiguous on every stream.
    let reg = registry();
    let evs: Vec<Event> = (0..24u64)
        .map(|t| {
            let ty = if t % 5 == 3 { "B" } else { "A" };
            ev(&reg, ty, t, ((t * 17) % 11) as f64)
        })
        .collect();
    for q in [
        "RETURN COUNT(*) PATTERN A+ WITHIN 1000 SLIDE 1000",
        "RETURN COUNT(*) PATTERN A S+ WHERE S.attr > NEXT(S).attr WITHIN 1000 SLIDE 1000",
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 1000 SLIDE 1000",
    ] {
        let any = count_with(Semantics::SkipTillAny, q, &evs, &reg);
        let next = count_with(Semantics::SkipTillNext, q, &evs, &reg);
        let cont = count_with(Semantics::Contiguous, q, &evs, &reg);
        assert!(any >= next, "{q}: any {any} < next {next}");
        assert!(any >= cont, "{q}: any {any} < contiguous {cont}");
    }
}
