//! Integration tests for the multi-query executor (ISSUE 9): one ingest
//! plane (reorder buffer + WAL, paid once per event) fanning out to N
//! registered queries, each with its own compiled plan, emission mode, and
//! result channel. Every query's output must be byte-identical to its
//! standalone single-query run — across shard counts, live
//! register/deregister barriers (under rebalancing), crash/recovery with
//! the registry in the snapshot/WAL, and a two-stage cascaded DAG driven
//! by `min_frontier`.

use greta::core::{
    sort_canonical, EmissionMode, ExecutorConfig, GretaEngine, PartitionKey, QueryId,
    RebalanceConfig, StreamExecutor, StreamRouting, WindowResult,
};
use greta::durability::DurabilityConfig;
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time, Value};
use std::path::PathBuf;

fn sorted(mut rows: Vec<WindowResult<f64>>) -> Vec<WindowResult<f64>> {
    sort_canonical(&mut rows);
    rows
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("greta-multiq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_canonical_order(rows: &[WindowResult<f64>], ctx: &str) {
    for w in rows.windows(2) {
        assert!(
            w[0].order_key() <= w[1].order_key(),
            "{ctx}: out-of-order emission: ({}, {:?}) then ({}, {:?})",
            w[0].window,
            w[0].group,
            w[1].window,
            w[1].group,
        );
    }
}

/// One `M` stream, three query shapes over it: the primary and QB share
/// the `grp` key plane (one routed frame feeds both); QC groups by `aux`,
/// its own plane.
const QA: &str = "RETURN grp, COUNT(*), SUM(S.load) PATTERN M S+ \
                  WHERE S.load < NEXT(S).load GROUP-BY grp WITHIN 40 SLIDE 20";
const QB: &str = "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
                  GROUP-BY grp WITHIN 60 SLIDE 30";
const QC: &str = "RETURN aux, SUM(M.load) PATTERN M+ WHERE M.load < NEXT(M).load \
                  GROUP-BY aux WITHIN 50 SLIDE 25";

fn setup() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp", "aux", "load"]).unwrap();
    reg
}

fn events(reg: &SchemaRegistry, n: usize) -> Vec<Event> {
    (0..n as u64)
        .map(|t| {
            EventBuilder::new(reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", (t % 5) as i64)
                .unwrap()
                .set("aux", (t % 7) as i64)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build()
        })
        .collect()
}

/// Single-engine oracle: the canonical output of `text` over `events`.
fn oracle(text: &str, reg: &SchemaRegistry, events: &[Event]) -> Vec<WindowResult<f64>> {
    let q = CompiledQuery::parse(text, reg).unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    sorted(engine.run(events).unwrap())
}

#[test]
fn three_queries_share_one_stream_byte_identical() {
    let reg = setup();
    let events = events(&reg, 500);
    let expect_a = oracle(QA, &reg, &events);
    let expect_b = oracle(QB, &reg, &events);
    let expect_c = oracle(QC, &reg, &events);
    for shards in [1usize, 2, 4] {
        let qa = CompiledQuery::parse(QA, &reg).unwrap();
        let mut exec = StreamExecutor::<f64>::new(
            qa,
            reg.clone(),
            ExecutorConfig {
                shards,
                ..Default::default()
            },
        )
        .unwrap();
        let qb = exec
            .register_query(QB, EmissionMode::WindowOrdered)
            .unwrap();
        let qc = exec.register_query(QC, EmissionMode::Unordered).unwrap();
        assert_eq!(exec.query_ids(), vec![QueryId::PRIMARY, qb, qc]);
        assert_eq!(exec.query_text(qb), Some(QB));
        let (mut rows_a, mut rows_b, mut rows_c) = (Vec::new(), Vec::new(), Vec::new());
        for e in &events {
            exec.push(e.clone()).unwrap();
            rows_a.extend(exec.poll_results());
            rows_b.extend(exec.poll_results_of(qb).unwrap());
            rows_c.extend(exec.poll_results_of(qc).unwrap());
        }
        rows_a.extend(exec.finish().unwrap());
        rows_b.extend(exec.poll_results_of(qb).unwrap());
        rows_c.extend(exec.poll_results_of(qc).unwrap());
        let stats = exec.stats();
        // One ingest plane: each event was WAL-less here but released and
        // routed exactly once, whatever the query count.
        assert_eq!(stats.pushed, events.len() as u64);
        assert_eq!(stats.released, events.len() as u64);
        let qb_stats = stats.queries.iter().find(|q| q.id == qb).unwrap();
        let qc_stats = stats.queries.iter().find(|q| q.id == qc).unwrap();
        assert!(
            qb_stats.shares_primary_routing,
            "QB groups by grp: must ride the primary's routed frames"
        );
        assert!(
            !qc_stats.shares_primary_routing,
            "QC groups by aux: must route on its own key plane"
        );
        // Byte-identity per query vs its standalone run.
        assert_eq!(sorted(rows_a), expect_a, "QA shards={shards}");
        assert_canonical_order(&rows_b, &format!("QB shards={shards}"));
        assert_eq!(rows_b, expect_b, "QB shards={shards}");
        assert_eq!(sorted(rows_c), expect_c, "QC shards={shards}");
    }
}

#[test]
fn register_and_deregister_mid_stream_under_rebalancing() {
    let reg = setup();
    // Skewed stream: the hot grp keys all hash to shard 0 of 4 so the
    // detector migrates state mid-run while queries come and go.
    let qa = CompiledQuery::parse(QA, &reg).unwrap();
    let routing = StreamRouting::new(&qa, &reg);
    let hot: Vec<i64> = (0..10_000i64)
        .filter(|g| routing.shard_of_group_key(&PartitionKey(vec![Some(Value::Int(*g))]), 4) == 0)
        .take(3)
        .collect();
    let events: Vec<Event> = (0..600u64)
        .map(|t| {
            let grp = if t % 10 < 9 {
                hot[(t % 3) as usize]
            } else {
                100_000 + (t % 23) as i64
            };
            EventBuilder::new(&reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", grp)
                .unwrap()
                .set("aux", (t % 7) as i64)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build()
        })
        .collect();
    let (reg_at, dereg_at) = (150usize, 450usize);
    // The register/deregister barrier cuts at the *release* frontier: with
    // slack 0 and strictly increasing stamps the reorder buffer still
    // holds the most recently pushed event (its successor has not proven
    // the stamp complete), so a query registered before push k and
    // deregistered before push j observes exactly the slice [k-1, j-1).
    let expect_b = oracle(QB, &reg, &events[reg_at - 1..dereg_at - 1]);
    let expect_a = oracle(QA, &reg, &events);
    let mut exec = StreamExecutor::<f64>::new(
        qa,
        reg.clone(),
        ExecutorConfig {
            shards: 4,
            rebalance: Some(RebalanceConfig {
                check_every_windows: 2,
                imbalance_ratio: 1.2,
                min_moves: 1,
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut qb = None;
    let epoch_before = exec.query_epoch();
    for (i, e) in events.iter().enumerate() {
        if i == reg_at {
            qb = Some(exec.register_query(QB, EmissionMode::Unordered).unwrap());
        }
        if i == dereg_at {
            let id = qb.unwrap();
            rows_b.extend(exec.poll_results_of(id).unwrap());
            rows_b.extend(exec.deregister_query(id).unwrap());
            assert!(!exec.query_ids().contains(&id));
        }
        exec.push(e.clone()).unwrap();
        rows_a.extend(exec.poll_results());
        if let Some(id) = qb {
            if i >= reg_at && i < dereg_at {
                rows_b.extend(exec.poll_results_of(id).unwrap());
            }
        }
    }
    rows_a.extend(exec.finish().unwrap());
    let stats = exec.stats();
    assert!(stats.rebalances >= 1, "stream must migrate mid-run");
    assert_eq!(
        exec.query_epoch(),
        epoch_before + 2,
        "register + deregister"
    );
    assert_eq!(sorted(rows_b), expect_b, "registered window of the stream");
    assert_eq!(sorted(rows_a), expect_a, "primary must be undisturbed");
}

#[test]
fn crash_recovery_restores_all_registered_queries() {
    let reg = setup();
    let events = events(&reg, 500);
    let expect_a = oracle(QA, &reg, &events);
    let expect_b = oracle(QB, &reg, &events);
    let expect_c = oracle(QC, &reg, &events);
    let dir = tmpdir("recover");
    let mk_cfg = || ExecutorConfig {
        shards: 3,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let qa = CompiledQuery::parse(QA, &reg).unwrap();
    let (mut rows_a, mut rows_b, mut rows_c) = (Vec::new(), Vec::new(), Vec::new());
    let (qb, qc);
    {
        let mut exec = StreamExecutor::<f64>::new(qa.clone(), reg.clone(), mk_cfg()).unwrap();
        qb = exec
            .register_query(QB, EmissionMode::WindowOrdered)
            .unwrap();
        qc = exec.register_query(QC, EmissionMode::Unordered).unwrap();
        for e in &events[..220] {
            exec.push(e.clone()).unwrap();
            rows_a.extend(exec.poll_results());
            rows_b.extend(exec.poll_results_of(qb).unwrap());
            rows_c.extend(exec.poll_results_of(qc).unwrap());
        }
        exec.checkpoint().unwrap();
        // Past the checkpoint, push without polling: these events live
        // only in the WAL and must replay — registry intact — on recovery.
        for e in &events[220..300] {
            exec.push(e.clone()).unwrap();
        }
    } // crash
    let mut exec = StreamExecutor::<f64>::recover(qa, reg.clone(), mk_cfg()).unwrap();
    assert_eq!(
        exec.query_ids(),
        vec![QueryId::PRIMARY, qb, qc],
        "recovery must restore the whole registry"
    );
    assert_eq!(exec.query_text(qb), Some(QB));
    assert_eq!(exec.query_text(qc), Some(QC));
    for e in &events[300..] {
        exec.push(e.clone()).unwrap();
        rows_a.extend(exec.poll_results());
        rows_b.extend(exec.poll_results_of(qb).unwrap());
        rows_c.extend(exec.poll_results_of(qc).unwrap());
    }
    rows_a.extend(exec.finish().unwrap());
    rows_b.extend(exec.poll_results_of(qb).unwrap());
    rows_c.extend(exec.poll_results_of(qc).unwrap());
    assert_eq!(sorted(rows_a), expect_a, "primary across crash");
    assert_canonical_order(&rows_b, "ordered registered query across crash");
    assert_eq!(rows_b, expect_b, "ordered registered query across crash");
    assert_eq!(
        sorted(rows_c),
        expect_c,
        "unordered registered query across crash"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_replays_registration_made_after_the_last_checkpoint() {
    let reg = setup();
    let events = events(&reg, 400);
    // Registration lands at the release frontier: event 259 is still in
    // the reorder buffer at the cut and is released after it, so the
    // query's stream starts at index 259 (see the rebalancing test).
    let expect_b = oracle(QB, &reg, &events[259..]);
    let dir = tmpdir("wal-register");
    let mk_cfg = || ExecutorConfig {
        shards: 2,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let qa = CompiledQuery::parse(QA, &reg).unwrap();
    let qb;
    {
        let mut exec = StreamExecutor::<f64>::new(qa.clone(), reg.clone(), mk_cfg()).unwrap();
        for e in &events[..200] {
            exec.push(e.clone()).unwrap();
        }
        exec.checkpoint().unwrap();
        for e in &events[200..260] {
            exec.push(e.clone()).unwrap();
        }
        // Registered *after* the checkpoint: only the WAL knows. Replay
        // must re-run the registration at the same stream position so the
        // query sees exactly the events [260..].
        qb = exec.register_query(QB, EmissionMode::Unordered).unwrap();
        for e in &events[260..300] {
            exec.push(e.clone()).unwrap();
        }
    } // crash without a second checkpoint
    let mut exec = StreamExecutor::<f64>::recover(qa, reg.clone(), mk_cfg()).unwrap();
    assert!(exec.query_ids().contains(&qb));
    let mut rows_b = exec.poll_results_of(qb).unwrap();
    for e in &events[300..] {
        exec.push(e.clone()).unwrap();
        rows_b.extend(exec.poll_results_of(qb).unwrap());
    }
    exec.finish().unwrap();
    rows_b.extend(exec.poll_results_of(qb).unwrap());
    assert_eq!(sorted(rows_b), expect_b);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two-stage cascaded DAG: stage 1 counts trends per `grp` under ordered
/// emission; its rows become stage 2's input events, gated by
/// `min_frontier` so only final windows flow downstream. Equivalent to
/// running the stages sequentially.
#[test]
fn cascaded_dag_equals_sequential_oracle() {
    let reg = setup();
    let events = events(&reg, 500);
    let stage1 = CompiledQuery::parse(QB, &reg).unwrap();

    // Stage 2 consumes stage-1 rows as `W(grp, trends)` events stamped
    // with their window id.
    let mut reg2 = SchemaRegistry::new();
    reg2.register_type("W", &["grp", "trends"]).unwrap();
    const STAGE2: &str = "RETURN grp, COUNT(*) PATTERN W+ \
                          WHERE W.trends < NEXT(W).trends \
                          GROUP-BY grp WITHIN 6 SLIDE 3";
    let row_to_event = |reg2: &SchemaRegistry, r: &WindowResult<f64>| -> Event {
        let Some(Value::Int(grp)) = r.group.0[0] else {
            panic!("stage 1 groups by an int key");
        };
        EventBuilder::new(reg2, "W")
            .unwrap()
            .at(Time(r.window))
            .set("grp", grp)
            .unwrap()
            .set("trends", r.values[0].to_f64())
            .unwrap()
            .build()
    };

    // Sequential oracle: full stage 1, then full stage 2 over its rows.
    let stage1_rows = oracle(QB, &reg, &events);
    let stage2_input: Vec<Event> = stage1_rows.iter().map(|r| row_to_event(&reg2, r)).collect();
    let expect = oracle(STAGE2, &reg2, &stage2_input);

    // Cascaded deployment: both stages live, stage-1 rows stream into
    // stage 2 as soon as the released watermark proves them final.
    let mut up = StreamExecutor::<f64>::new(
        stage1,
        reg.clone(),
        ExecutorConfig {
            shards: 4,
            emission: EmissionMode::WindowOrdered,
            ..Default::default()
        },
    )
    .unwrap();
    let mut down = StreamExecutor::<f64>::new(
        CompiledQuery::parse(STAGE2, &reg2).unwrap(),
        reg2.clone(),
        ExecutorConfig {
            shards: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut staged: Vec<WindowResult<f64>> = Vec::new();
    let mut out = Vec::new();
    let mut forwarded = 0usize;
    for e in &events {
        up.push(e.clone()).unwrap();
        staged.extend(up.poll_results());
        // Ordered emission releases only complete windows, but a window
        // may still release in pieces across polls: `min_frontier` is the
        // watermark below which no further rows can appear — safe to
        // forward.
        let frontier = up.min_frontier(QueryId::PRIMARY).unwrap();
        let mut keep = Vec::new();
        for r in staged.drain(..) {
            if r.window < frontier {
                forwarded += 1;
                down.push(row_to_event(&reg2, &r)).unwrap();
            } else {
                keep.push(r);
            }
        }
        staged = keep;
        out.extend(down.poll_results());
    }
    // Frontier stamps travel on the result channel: give the async
    // workers a moment to land one so the live-cascade path is exercised.
    for _ in 0..2000 {
        staged.extend(up.poll_results());
        if up.min_frontier(QueryId::PRIMARY).unwrap() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let frontier = up.min_frontier(QueryId::PRIMARY).unwrap();
    assert!(frontier > 0, "min_frontier never advanced");
    let mut keep = Vec::new();
    for r in staged.drain(..) {
        if r.window < frontier {
            forwarded += 1;
            down.push(row_to_event(&reg2, &r)).unwrap();
        } else {
            keep.push(r);
        }
    }
    staged = keep;
    assert!(
        forwarded > 0,
        "min_frontier never released a window while both stages were live"
    );
    staged.extend(up.finish().unwrap());
    for r in &staged {
        down.push(row_to_event(&reg2, r)).unwrap();
    }
    out.extend(down.finish().unwrap());
    assert_eq!(sorted(out), expect);
}

#[test]
fn registration_guards_reject_bad_input() {
    let reg = setup();
    let qa = CompiledQuery::parse(QA, &reg).unwrap();
    let mut exec = StreamExecutor::<f64>::new(
        qa,
        reg.clone(),
        ExecutorConfig {
            shards: 2,
            ..Default::default()
        },
    )
    .unwrap();
    // Unparsable text is refused before anything is logged or installed.
    assert!(exec
        .register_query("RETURN nonsense", EmissionMode::Unordered)
        .is_err());
    assert_eq!(exec.query_ids(), vec![QueryId::PRIMARY]);
    // The primary cannot be deregistered; unknown ids are errors.
    assert!(exec.deregister_query(QueryId::PRIMARY).is_err());
    assert!(exec.deregister_query(QueryId(99)).is_err());
    assert!(exec.poll_results_of(QueryId(99)).is_err());
    // min_frontier needs an ordered merge.
    assert!(exec.min_frontier(QueryId::PRIMARY).is_err());
    let qb = exec.register_query(QB, EmissionMode::Unordered).unwrap();
    let rows = exec.deregister_query(qb).unwrap();
    assert!(rows.is_empty(), "no events ever flowed");
    // Double deregistration is an error; its (empty) results stay pollable.
    assert!(exec.deregister_query(qb).is_err());
    assert!(exec.poll_results_of(qb).unwrap().is_empty());
    exec.finish().unwrap();
}
