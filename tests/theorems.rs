//! Property checks of the paper's formal claims:
//!
//! * Lemma 1 — no positive pattern matches the empty trend;
//! * Theorem 4.1 — start/end event types are unique and total;
//! * Theorem 4.3/4.4 — monotonicity and window-slicing consistency of the
//!   incremental count;
//! * Theorem 8.1 — vertex count is linear and edge count quadratic in the
//!   number of events.

use greta::core::GretaEngine;
use greta::query::ast::Pattern;
use greta::query::pattern::{desugar, simplify, validate};
use greta::query::template::{LPattern, Template};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};
use proptest::prelude::*;

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    for t in ["A", "B", "C", "D"] {
        reg.register_type(t, &["attr"]).unwrap();
    }
    reg
}

/// Random positive pattern generator (types A–D, depth-limited).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = (0u8..4).prop_map(|i| Pattern::ty(["A", "B", "C", "D"][i as usize]));
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Pattern::plus),
            inner.clone().prop_map(Pattern::star),
            inner.clone().prop_map(Pattern::optional),
            proptest::collection::vec(inner, 2..4).prop_map(Pattern::seq),
        ]
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..4, 1u8..3), 0..12)
}

fn build_events(reg: &SchemaRegistry, raw: &[(u8, u8)]) -> Vec<Event> {
    let names = ["A", "B", "C", "D"];
    let mut t = 0u64;
    raw.iter()
        .map(|(ty, dt)| {
            t += *dt as u64;
            EventBuilder::new(reg, names[*ty as usize])
                .unwrap()
                .at(Time(t))
                .build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Lemma 1 + Theorem 4.1: desugared positive patterns build templates
    /// with well-defined unique start/end states, and never an empty
    /// alternative.
    #[test]
    fn lemma_1_and_theorem_4_1(p in arb_pattern()) {
        let p = simplify(p);
        prop_assume!(validate(&p).is_ok());
        let Ok(alts) = desugar(&p) else { return Ok(()) }; // plus-over-star combos are rejected
        prop_assert!(!alts.is_empty());
        for alt in alts {
            let lp = LPattern::locate(&alt).unwrap();
            let t = Template::build(&lp).unwrap();
            prop_assert!(!t.states.is_empty(), "no empty trend alternative (Lemma 1)");
            prop_assert!(t.state(t.start).is_some(), "start total (Thm 4.1)");
            prop_assert!(t.state(t.end).is_some(), "end total (Thm 4.1)");
        }
    }

    /// Theorem 4.3 corollary: for positive patterns, appending an event
    /// never decreases any window's COUNT(*) (trends are only added).
    #[test]
    fn count_is_monotone_in_the_stream(p in arb_pattern(), raw in arb_stream()) {
        let reg = registry();
        let p = simplify(p);
        prop_assume!(validate(&p).is_ok());
        let spec = greta::query::QuerySpec::count_star(p, 1_000);
        let Ok(q) = CompiledQuery::compile(&spec, &reg) else { return Ok(()) };
        let events = build_events(&reg, &raw);
        let mut prev_total = 0.0;
        for cut in 0..=events.len() {
            let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
            let rows = engine.run(&events[..cut]).unwrap();
            let total: f64 = rows.iter().map(|r| r.values[0].to_f64()).sum();
            prop_assert!(total >= prev_total, "count dropped at cut {cut}");
            prev_total = total;
        }
    }

    /// Window-sharing correctness: each window of a sliding run equals an
    /// independent tumbling run over exactly that window's event slice.
    #[test]
    fn shared_windows_equal_independent_windows(raw in arb_stream()) {
        let reg = registry();
        let sliding = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 6 SLIDE 2",
            &reg,
        ).unwrap();
        let events = build_events(&reg, &raw);
        let mut engine = GretaEngine::<f64>::new(sliding.clone(), reg.clone()).unwrap();
        let rows = engine.run(&events).unwrap();
        for row in rows {
            let ws = row.window * 2;
            let we = ws + 6;
            // Re-run the window's slice through a fresh huge tumbling window.
            let slice: Vec<Event> = events
                .iter()
                .filter(|e| e.time.ticks() >= ws && e.time.ticks() < we)
                .cloned()
                .collect();
            let tumbling = CompiledQuery::parse(
                "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 1000000 SLIDE 1000000",
                &reg,
            ).unwrap();
            let mut fresh = GretaEngine::<f64>::new(tumbling, reg.clone()).unwrap();
            let expect: f64 = fresh
                .run(&slice)
                .unwrap()
                .iter()
                .map(|r| r.values[0].to_f64())
                .sum();
            prop_assert_eq!(row.values[0].to_f64(), expect, "window {}", row.window);
        }
    }

    /// Theorem 8.1: vertices ≤ events × states (linear space) and edges ≤
    /// (events × states)² (quadratic time), for every random run.
    #[test]
    fn theorem_8_1_resource_bounds(p in arb_pattern(), raw in arb_stream()) {
        let reg = registry();
        let p = simplify(p);
        prop_assume!(validate(&p).is_ok());
        let spec = greta::query::QuerySpec::count_star(p, 1_000);
        let Ok(q) = CompiledQuery::compile(&spec, &reg) else { return Ok(()) };
        let max_states: usize = q
            .alternatives
            .iter()
            .map(|a| a.graphs.iter().map(|g| g.template.states.len()).sum::<usize>())
            .max()
            .unwrap_or(0);
        let events = build_events(&reg, &raw);
        let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
        engine.run(&events).unwrap();
        let stats = engine.stats();
        let n = events.len() as u64;
        let s = max_states as u64 * q_alt_count(&engine);
        prop_assert!(stats.vertices <= n * s.max(1), "linear space bound");
        let cap = (n * s.max(1)).pow(2);
        prop_assert!(stats.edges <= cap.max(1), "quadratic edge bound");
    }
}

fn q_alt_count<N: greta::core::TrendNum>(e: &GretaEngine<N>) -> u64 {
    e.query().alternatives.len() as u64
}

#[test]
fn complexity_is_quadratic_not_exponential() {
    // Doubling the (fully compatible) event count must ~4x the edge count,
    // never 2^n it. n=64 vs n=128 under A+.
    let reg = registry();
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN A+ WITHIN 100000 SLIDE 100000",
        &reg,
    )
    .unwrap();
    let run = |n: u64| {
        let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
        for t in 0..n {
            engine
                .process(&EventBuilder::new(&reg, "A").unwrap().at(Time(t)).build())
                .unwrap();
        }
        engine.finish();
        engine.stats().edges
    };
    let e64 = run(64);
    let e128 = run(128);
    assert_eq!(e64, 64 * 63 / 2);
    assert_eq!(e128, 128 * 127 / 2);
    assert!(e128 < e64 * 5); // quadratic scaling, not exponential
}
