//! Integration tests for ordered streaming emission (ISSUE 5):
//! `EmissionMode::WindowOrdered` must stream results window-monotone in
//! canonical `(window, group)` order from `poll_results()` — byte-identical
//! to the sorted `Unordered` output — across shard counts, with dynamic
//! rebalancing enabled, and across a crash/recover cut, with buffering
//! bounded by open windows rather than a sort at `finish()`.

use greta::core::{
    EmissionMode, ExecutorConfig, GretaEngine, PartitionKey, RebalanceConfig, StreamExecutor,
    StreamRouting, WindowResult,
};
use greta::durability::DurabilityConfig;
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time, Value};
use std::path::PathBuf;

fn sorted(mut rows: Vec<WindowResult<f64>>) -> Vec<WindowResult<f64>> {
    greta::core::sort_canonical(&mut rows);
    rows
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("greta-ordered-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Panics unless `rows` are window-monotone in canonical order.
fn assert_canonical_order(rows: &[WindowResult<f64>], ctx: &str) {
    for w in rows.windows(2) {
        assert!(
            w[0].order_key() <= w[1].order_key(),
            "{ctx}: out-of-order emission: ({}, {:?}) then ({}, {:?})",
            w[0].window,
            w[0].group,
            w[1].window,
            w[1].group,
        );
    }
}

/// Q1-shaped grouped down-trend query over a synthetic `M` stream.
fn q1_setup() -> (SchemaRegistry, CompiledQuery) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp", "load"]).unwrap();
    let q = CompiledQuery::parse(
        "RETURN grp, COUNT(*), SUM(S.load) PATTERN M S+ WHERE S.load < NEXT(S).load \
         GROUP-BY grp WITHIN 40 SLIDE 20",
        &reg,
    )
    .unwrap();
    (reg, q)
}

fn q1_events(reg: &SchemaRegistry, n: usize, groups: u64) -> Vec<Event> {
    (0..n as u64)
        .map(|t| {
            EventBuilder::new(reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", (t % groups) as i64)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build()
        })
        .collect()
}

/// Q2/Q3-shaped query with a leading negation over a sub-key broadcast
/// type: `Accident` lacks `vehicle`, so it reaches every shard.
fn q2_setup() -> (SchemaRegistry, CompiledQuery) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("Accident", &["segment"]).unwrap();
    reg.register_type("Position", &["vehicle", "segment"])
        .unwrap();
    let q = CompiledQuery::parse(
        "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
         WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 60 SLIDE 30",
        &reg,
    )
    .unwrap();
    (reg, q)
}

fn q2_events(reg: &SchemaRegistry, n: usize) -> Vec<Event> {
    (0..n as u64)
        .map(|t| {
            if t % 13 == 7 {
                EventBuilder::new(reg, "Accident")
                    .unwrap()
                    .at(Time(t))
                    .set("segment", (t % 5) as i64)
                    .unwrap()
                    .build()
            } else {
                EventBuilder::new(reg, "Position")
                    .unwrap()
                    .at(Time(t))
                    .set("vehicle", (t % 11) as i64)
                    .unwrap()
                    .set("segment", (t % 5) as i64)
                    .unwrap()
                    .build()
            }
        })
        .collect()
}

/// Drive an executor pushing + polling per event; returns (all polled
/// batches concatenated in drain order, the finish remainder).
fn drive(
    q: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    config: ExecutorConfig,
) -> (Vec<WindowResult<f64>>, greta::core::ExecutorStats) {
    let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), config).unwrap();
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().unwrap());
    let stats = exec.stats();
    (rows, stats)
}

fn ordered_config(shards: usize) -> ExecutorConfig {
    ExecutorConfig {
        shards,
        emission: EmissionMode::WindowOrdered,
        ..Default::default()
    }
}

#[test]
fn window_ordered_stream_is_monotone_and_byte_identical_q1() {
    let (reg, q) = q1_setup();
    let events = q1_events(&reg, 400, 7);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    for shards in [1usize, 2, 4] {
        let (rows, _) = drive(&q, &reg, &events, ordered_config(shards));
        assert_canonical_order(&rows, &format!("q1 shards={shards}"));
        // No sort anywhere: the raw concatenation IS the canonical output.
        assert_eq!(rows, expect, "q1 shards={shards}");
    }
}

#[test]
fn window_ordered_stream_is_monotone_and_byte_identical_q2_broadcast() {
    let (reg, q) = q2_setup();
    let events = q2_events(&reg, 300);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    for shards in [1usize, 2, 4] {
        let (rows, stats) = drive(&q, &reg, &events, ordered_config(shards));
        assert_canonical_order(&rows, &format!("q2 shards={shards}"));
        assert_eq!(rows, expect, "q2 shards={shards}");
        if shards > 1 {
            assert!(stats.broadcasts > 0, "q2 must exercise broadcast types");
        }
    }
}

#[test]
fn ordered_results_stream_before_finish() {
    // Ordered emission must still be *streaming*: windows whose frontier
    // has passed are released while events are still being pushed, not
    // hoarded until finish().
    let (reg, q) = q1_setup();
    let events = q1_events(&reg, 400, 7);
    let mut exec = StreamExecutor::<f64>::new(q, reg, ordered_config(2)).unwrap();
    let mut streamed = 0usize;
    for e in &events {
        exec.push(e.clone()).unwrap();
        streamed += exec.poll_results().len();
    }
    for _ in 0..200 {
        streamed += exec.poll_results().len();
        if streamed > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(
        streamed > 0,
        "ordered mode buffered everything until finish"
    );
    exec.finish().unwrap();
}

#[test]
fn window_ordered_composes_with_rebalancing() {
    // Hot groups colliding on one shard: the detector migrates state
    // mid-stream (routing-epoch bumps) and the ordered stream must stay
    // monotone and byte-identical through the barrier.
    let (reg, q) = q1_setup();
    let routing = StreamRouting::new(&q, &reg);
    let hot: Vec<i64> = (0..10_000i64)
        .filter(|g| routing.shard_of_group_key(&PartitionKey(vec![Some(Value::Int(*g))]), 4) == 0)
        .take(3)
        .collect();
    let events: Vec<Event> = (0..600u64)
        .map(|t| {
            let grp = if t % 10 < 9 {
                hot[(t % 3) as usize]
            } else {
                100_000 + (t % 23) as i64
            };
            EventBuilder::new(&reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", grp)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build()
        })
        .collect();
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let (rows, stats) = drive(
        &q,
        &reg,
        &events,
        ExecutorConfig {
            shards: 4,
            emission: EmissionMode::WindowOrdered,
            rebalance: Some(RebalanceConfig {
                check_every_windows: 2,
                imbalance_ratio: 1.2,
                min_moves: 1,
            }),
            ..Default::default()
        },
    );
    assert!(stats.rebalances >= 1, "stream must migrate mid-run");
    assert_canonical_order(&rows, "rebalanced ordered run");
    assert_eq!(rows, expect);
}

#[test]
fn window_ordered_survives_crash_and_recovery() {
    // Poll up to a checkpoint, crash, recover, poll the rest: the
    // concatenated stream is the canonical output, still monotone across
    // the cut (the snapshot carries the merge frontier).
    let (reg, q) = q1_setup();
    let events = q1_events(&reg, 400, 7);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let dir = tmpdir("crash");
    let mk_cfg = || ExecutorConfig {
        shards: 3,
        emission: EmissionMode::WindowOrdered,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let mut committed = Vec::new();
    {
        let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), mk_cfg()).unwrap();
        for e in &events[..220] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        exec.checkpoint().unwrap();
        // Crash without polling further: rows pending at the checkpoint
        // live in the snapshot and resurface through the recovered
        // executor (polling them here too would double-count).
    } // crash
    let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), mk_cfg()).unwrap();
    for e in &events[220..] {
        exec.push(e.clone()).unwrap();
        committed.extend(exec.poll_results());
    }
    committed.extend(exec.finish().unwrap());
    assert_canonical_order(&committed, "ordered stream across crash");
    assert_eq!(committed, expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn window_ordered_recovery_into_different_shard_count() {
    // Resharded recovery resets the per-shard frontiers to the released
    // watermark; the resumed stream must stay monotone and complete.
    let (reg, q) = q1_setup();
    let events = q1_events(&reg, 400, 7);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    for (from, to) in [(2usize, 4usize), (4, 2)] {
        let dir = tmpdir(&format!("reshard-{from}-{to}"));
        let cfg = |shards| ExecutorConfig {
            shards,
            emission: EmissionMode::WindowOrdered,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let mut committed = Vec::new();
        {
            let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), cfg(from)).unwrap();
            for e in &events[..200] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
        } // crash
        let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), cfg(to)).unwrap();
        assert_eq!(exec.shards(), to);
        for e in &events[200..] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_canonical_order(&committed, &format!("reshard {from}→{to}"));
        assert_eq!(committed, expect, "{from}→{to}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recover_refuses_emission_mode_mismatch() {
    let (reg, q) = q1_setup();
    let events = q1_events(&reg, 120, 5);
    let dir = tmpdir("mode-mismatch");
    let mk_cfg = |emission| ExecutorConfig {
        shards: 2,
        emission,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    {
        let mut exec =
            StreamExecutor::<f64>::new(q.clone(), reg.clone(), mk_cfg(EmissionMode::WindowOrdered))
                .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        exec.checkpoint().unwrap();
    }
    // Recovering under a different emission mode would change the stream
    // shape mid-run: refused.
    let err =
        StreamExecutor::<f64>::recover(q.clone(), reg.clone(), mk_cfg(EmissionMode::Unordered))
            .err()
            .expect("mode mismatch must be refused");
    assert!(matches!(err, greta::core::EngineError::Config(_)), "{err}");
    // The matching mode still recovers.
    let mut exec =
        StreamExecutor::<f64>::recover(q, reg, mk_cfg(EmissionMode::WindowOrdered)).unwrap();
    exec.finish().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ordered_buffering_is_bounded_by_open_windows() {
    // No sort-at-finish: once the workers catch up with the pushed
    // stream, every window the frontier has passed must already be
    // released through poll_results() — finish() may only carry the rows
    // of windows that were still open (bounded by within/slide), not the
    // stream's worth of buffered output.
    let (reg, q) = q1_setup();
    let events = q1_events(&reg, 1000, 7);
    let mut exec = StreamExecutor::<f64>::new(q, reg, ordered_config(4)).unwrap();
    let mut total = Vec::new();
    for e in &events {
        exec.push(e.clone()).unwrap();
        total.extend(exec.poll_results());
    }
    // Let the async workers drain what was already pushed.
    let mut idle = 0;
    for _ in 0..2000 {
        let got = exec.poll_results();
        idle = if got.is_empty() { idle + 1 } else { 0 };
        total.extend(got);
        if idle >= 50 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let tail = exec.finish().unwrap();
    // 1000 ticks at WITHIN 40 SLIDE 20 ⇒ ~50 windows, ≤ 2 open at the
    // cut: the finish remainder is a sliver, not the stream.
    assert!(
        total.len() > tail.len() * 5,
        "finish carried {} of {} rows — merge is not streaming",
        tail.len(),
        total.len() + tail.len()
    );
    let last_released = total.last().map(|r| r.window).unwrap_or(0);
    assert!(
        tail.iter().all(|r| r.window >= last_released),
        "finish re-delivered windows already released"
    );
}

mod props {
    use super::*;
    use proptest::prelude::*;

    fn check_ordered_matches_unordered(
        q: &CompiledQuery,
        reg: &SchemaRegistry,
        events: &[Event],
        shards: usize,
        rebalance: bool,
    ) -> Result<(), TestCaseError> {
        let base = ExecutorConfig {
            shards,
            rebalance: rebalance.then_some(RebalanceConfig {
                check_every_windows: 1,
                imbalance_ratio: 1.2,
                min_moves: 1,
            }),
            ..Default::default()
        };
        let (unordered, _) = drive(q, reg, events, base.clone());
        let (ordered, _) = drive(
            q,
            reg,
            events,
            ExecutorConfig {
                emission: EmissionMode::WindowOrdered,
                ..base
            },
        );
        for w in ordered.windows(2) {
            prop_assert!(
                w[0].order_key() <= w[1].order_key(),
                "ordered stream went backwards"
            );
        }
        prop_assert_eq!(ordered, sorted(unordered));
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Satellite acceptance: on random Q1-shaped streams, the
        /// `WindowOrdered` poll concatenation is byte-identical to the
        /// sorted `Unordered` output at 1/2/4 shards, with and without
        /// rebalancing.
        #[test]
        fn ordered_equals_sorted_unordered_q1(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255), 60..160),
            rebalance in proptest::bool::ANY,
        ) {
            let (reg, q) = q1_setup();
            let mut t = 0u64;
            let events: Vec<Event> = spec.iter().map(|(skew, load)| {
                t += 1 + (*load % 3) as u64;
                let grp = if skew % 10 < 9 { (*skew as i64) % 4 } else { 50 + (*skew as i64) % 19 };
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", grp).unwrap()
                    .set("load", (*load % 16) as f64).unwrap()
                    .build()
            }).collect();
            for shards in [1usize, 2, 4] {
                check_ordered_matches_unordered(&q, &reg, &events, shards, rebalance)?;
            }
        }

        /// Same for Q2-shaped streams with broadcast (sub-key negation)
        /// types, which reach every shard.
        #[test]
        fn ordered_equals_sorted_unordered_q2(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255), 50..120),
        ) {
            let (reg, q) = q2_setup();
            let mut t = 0u64;
            let events: Vec<Event> = spec.iter().map(|(a, b)| {
                t += 1 + (*b % 2) as u64;
                if a % 11 == 3 {
                    EventBuilder::new(&reg, "Accident")
                        .unwrap()
                        .at(Time(t))
                        .set("segment", (*b as i64) % 4).unwrap()
                        .build()
                } else {
                    EventBuilder::new(&reg, "Position")
                        .unwrap()
                        .at(Time(t))
                        .set("vehicle", (*a as i64) % 7).unwrap()
                        .set("segment", (*b as i64) % 4).unwrap()
                        .build()
                }
            }).collect();
            for shards in [1usize, 2, 4] {
                check_ordered_matches_unordered(&q, &reg, &events, shards, false)?;
            }
        }

        /// A crash/recover cut at a random point must resume the ordered
        /// stream exactly: polled-before-checkpoint + polled-after-recovery
        /// is the canonical output, monotone across the cut.
        #[test]
        fn ordered_stream_resumes_across_random_crash_cut(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255), 60..140),
            shards in 1usize..4,
            cut_pct in 20u8..80,
        ) {
            let (reg, q) = q1_setup();
            let mut t = 0u64;
            let events: Vec<Event> = spec.iter().map(|(skew, load)| {
                t += 1;
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", (*skew as i64) % 6).unwrap()
                    .set("load", (*load % 16) as f64).unwrap()
                    .build()
            }).collect();
            let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
            let expect = sorted(engine.run(&events).unwrap());
            let cut = events.len() * cut_pct as usize / 100;
            let dir = tmpdir(&format!("prop-cut-{shards}-{}-{cut}", spec.len()));
            let cfg = || ExecutorConfig {
                shards,
                emission: EmissionMode::WindowOrdered,
                durability: Some(DurabilityConfig::new(&dir)),
                ..Default::default()
            };
            let mut committed = Vec::new();
            {
                let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), cfg()).unwrap();
                for e in &events[..cut] {
                    exec.push(e.clone()).unwrap();
                    committed.extend(exec.poll_results());
                }
                exec.checkpoint().unwrap();
            } // crash
            let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), cfg()).unwrap();
            for e in &events[cut..] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            committed.extend(exec.finish().unwrap());
            for w in committed.windows(2) {
                prop_assert!(w[0].order_key() <= w[1].order_key(), "stream went backwards across cut");
            }
            prop_assert_eq!(committed, expect);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
