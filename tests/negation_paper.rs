//! Integration tests for nested negation (experiment E3 of DESIGN.md):
//! the scenarios of Figs. 6(d), 7, 8 and Examples 2–5, cross-validated
//! against the enumeration oracle and all two-step baselines.

use greta::baselines::{oracle_run, CetEngine, FlinkEngine, SaseEngine};
use greta::core::GretaEngine;
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    for t in ["A", "B", "C", "D", "E"] {
        reg.register_type(t, &["attr"]).unwrap();
    }
    reg
}

fn ev(reg: &SchemaRegistry, ty: &str, t: u64) -> Event {
    EventBuilder::new(reg, ty).unwrap().at(Time(t)).build()
}

/// The stream of §5.2: {a1, b2, c2, a3, e3, a4, c5, d6, b7, a8, b9}.
fn figure_6d_stream(reg: &SchemaRegistry) -> Vec<Event> {
    [
        ("A", 1u64),
        ("B", 2),
        ("C", 2),
        ("A", 3),
        ("E", 3),
        ("A", 4),
        ("C", 5),
        ("D", 6),
        ("B", 7),
        ("A", 8),
        ("B", 9),
    ]
    .iter()
    .map(|(t, ts)| ev(reg, t, *ts))
    .collect()
}

fn greta_count(q: &CompiledQuery, reg: &SchemaRegistry, evs: &[Event]) -> f64 {
    let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
    let rows = engine.run(evs).unwrap();
    rows.iter().map(|r| r.values[0].to_f64()).sum()
}

fn all_engines_agree(pattern: &str, evs: &[Event], reg: &SchemaRegistry) -> f64 {
    let q = CompiledQuery::parse(
        &format!("RETURN COUNT(*) PATTERN {pattern} WITHIN 1000 SLIDE 1000"),
        reg,
    )
    .unwrap();
    let greta = greta_count(&q, reg, evs);
    let oracle: f64 = oracle_run(&q, reg, evs)
        .iter()
        .map(|r| r.values[0].to_f64())
        .sum();
    assert_eq!(greta, oracle, "{pattern}: GRETA vs oracle");
    let sase = SaseEngine::run(&q, reg, evs, u64::MAX);
    let cet = CetEngine::run(&q, reg, evs, u64::MAX);
    let flink = FlinkEngine::run(&q, reg, evs, u64::MAX);
    for (name, run) in [("SASE", &sase), ("CET", &cet), ("FLINK", &flink)] {
        let total: f64 = run.rows.iter().map(|r| r.values[0].to_f64()).sum();
        assert_eq!(greta, total, "{pattern}: GRETA vs {name}");
    }
    greta
}

#[test]
fn example_2_nested_negation_figure_6d() {
    // e3 invalidates c2; (c5,d6) invalidates a1,a3,a4 for b's after t6;
    // b7 is never inserted; final = b2(1) + b9(12) = 13.
    let reg = registry();
    let evs = figure_6d_stream(&reg);
    let count = all_engines_agree("(SEQ(A+, NOT SEQ(C, NOT E, D), B))+", &evs, &reg);
    assert_eq!(count, 13.0);
}

#[test]
fn nested_negation_without_inner_exception() {
    // Without the inner NOT E, *both* (c2,…,d6) and (c5,d6) finish — the
    // dominating invalidation is the same (start = c5), so the count equals
    // the Fig. 6(d) one.
    let reg = registry();
    let evs = figure_6d_stream(&reg);
    let count = all_engines_agree("(SEQ(A+, NOT SEQ(C, D), B))+", &evs, &reg);
    assert_eq!(count, 13.0);
}

#[test]
fn figure_8a_trailing_negation() {
    // SEQ(A+, NOT E) over the Fig. 6(d) stream: e3 invalidates a1 (strictly
    // before t3) for all later connections and END validity.
    let reg = registry();
    let evs = figure_6d_stream(&reg);
    let count = all_engines_agree("SEQ(A+, NOT E)", &evs, &reg);
    // a3 connected to a1 at t3 — the invalidation only affects connections
    // strictly after e3 (t3), so a3.count = 1 + a1 = 2. Afterwards a1 is
    // invalid: a4 = 1 + a3 = 3, a8 = 1 + a3 + a4 = 6. At close, END events
    // with time < 3 (a1) are excluded: final = a3 + a4 + a8 = 11.
    assert_eq!(count, 11.0);
}

#[test]
fn figure_8b_leading_negation() {
    // SEQ(NOT E, A+): e3 drops every later a (a4, a8); valid trends live
    // within {a1, a3}: 3 trends.
    let reg = registry();
    let evs = figure_6d_stream(&reg);
    let count = all_engines_agree("SEQ(NOT E, A+)", &evs, &reg);
    assert_eq!(count, 3.0);
}

#[test]
fn case1_negation_before_and_after() {
    // SEQ(A+, NOT E, B): e3 invalidates a1 (t<3) for b's after t3.
    // b2 (t2 < e3): preds a1 → 1. b7: valid preds a3,a4 (a1 invalid):
    // a3=1+a1=2? No wait — A→A edges are unaffected by Pair-mode
    // invalidation, so a3 = 1 + a1 = 2, a4 = 1 + a1 + a3 = 4, a8 = 8.
    // b7 ← {a3, a4} = 6; b9 ← {a3, a4, a8} = 14. Final = 1 + 6 + 14 = 21.
    let reg = registry();
    let evs = figure_6d_stream(&reg);
    let count = all_engines_agree("SEQ(A+, NOT E, B)", &evs, &reg);
    assert_eq!(count, 21.0);
}

#[test]
fn consecutive_negatives_are_independent() {
    // SEQ(A, NOT C, NOT E, B): both constraints apply at the same gap.
    let reg = registry();
    // a1, c2, b3  → (a1,b3) blocked by c2.
    let evs1 = vec![ev(&reg, "A", 1), ev(&reg, "C", 2), ev(&reg, "B", 3)];
    assert_eq!(
        all_engines_agree("SEQ(A, NOT C, NOT E, B)", &evs1, &reg),
        0.0
    );
    // a1, e2, b3 → blocked by e2.
    let evs2 = vec![ev(&reg, "A", 1), ev(&reg, "E", 2), ev(&reg, "B", 3)];
    assert_eq!(
        all_engines_agree("SEQ(A, NOT C, NOT E, B)", &evs2, &reg),
        0.0
    );
    // a1, b3 → allowed.
    let evs3 = vec![ev(&reg, "A", 1), ev(&reg, "B", 3)];
    assert_eq!(
        all_engines_agree("SEQ(A, NOT C, NOT E, B)", &evs3, &reg),
        1.0
    );
}

#[test]
fn negation_same_timestamp_is_not_strictly_before() {
    // The §7 transaction model: a negative trend finishing AT time t does
    // not affect connections happening at time t (strict inequalities).
    let reg = registry();
    let evs = vec![ev(&reg, "A", 1), ev(&reg, "C", 2), ev(&reg, "B", 2)];
    // c2 finishes at t2; b2 arrives at t2 — not strictly after ⇒ (a1,b2)
    // survives.
    assert_eq!(all_engines_agree("SEQ(A, NOT C, B)", &evs, &reg), 1.0);
    // One tick later it is suppressed.
    let evs = vec![ev(&reg, "A", 1), ev(&reg, "C", 2), ev(&reg, "B", 3)];
    assert_eq!(all_engines_agree("SEQ(A, NOT C, B)", &evs, &reg), 0.0);
}

#[test]
fn negative_trend_must_fully_occur_between() {
    // SEQ(A+, NOT SEQ(C, D), B): C at t2 with D *after* the b — the (C,D)
    // trend completes only after b4, so (a1, b4) is valid at the time it
    // forms.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1),
        ev(&reg, "C", 2),
        ev(&reg, "B", 4),
        ev(&reg, "D", 5),
        ev(&reg, "B", 6),
    ];
    // b4: (c,d) not finished yet → a1 valid → count 1.
    // b6: (c2,d5) finished at t5 with start t2 → a1 (t1 < 2) invalid → b6
    // has no predecessors and is not inserted.
    assert_eq!(
        all_engines_agree("SEQ(A+, NOT SEQ(C, D), B)", &evs, &reg),
        1.0
    );
}

#[test]
fn invalidation_uses_latest_start_dominance() {
    // Two C's before one D: the trend (c3, d4) has the later start and
    // dominates (c2, d4). Events before t3 are invalid; a2 (t2 < 3) is out,
    // but there is no a between 3 and 4… use a stream where it matters:
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1),
        ev(&reg, "C", 2),
        ev(&reg, "A", 2),
        ev(&reg, "C", 3),
        ev(&reg, "D", 4),
        ev(&reg, "B", 5),
    ];
    // Threshold start = max(c2, c3) = 3 ⇒ a1 and a2 both invalid for b5.
    assert_eq!(
        all_engines_agree("SEQ(A+, NOT SEQ(C, D), B)", &evs, &reg),
        0.0
    );
}

#[test]
fn negation_with_all_aggregates_matches_oracle() {
    let reg = registry();
    let evs = figure_6d_stream(&reg);
    let q = CompiledQuery::parse(
        "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) \
         PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ WITHIN 1000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let rows = engine.run(&evs).unwrap();
    let oracle = oracle_run(&q, &reg, &evs);
    assert_eq!(rows.len(), oracle.len());
    for (g, o) in rows.iter().zip(&oracle) {
        for (gv, ov) in g.values.iter().zip(&o.values) {
            let (a, b) = (gv.to_f64(), ov.to_f64());
            if a.is_nan() && b.is_nan() {
                continue;
            }
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
