//! Query-language integration tests: the three motivating queries of §1
//! parse, compile and execute; the grammar of Fig. 2 round-trips; error
//! paths produce actionable diagnostics.

use greta::query::{parse_query, CompiledQuery, QueryError};
use greta::types::SchemaRegistry;

fn full_registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register_type(
        "Stock",
        &["price", "volume", "company", "sector", "kind", "txn"],
    )
    .unwrap();
    reg.register_type("Start", &["job", "mapper"]).unwrap();
    reg.register_type("Measurement", &["job", "mapper", "cpu", "memory", "load"])
        .unwrap();
    reg.register_type("End", &["job", "mapper"]).unwrap();
    reg.register_type("Accident", &["segment"]).unwrap();
    reg.register_type("Position", &["vehicle", "segment", "position", "speed"])
        .unwrap();
    reg
}

const Q1: &str = "RETURN sector, COUNT(*) PATTERN Stock S+ \
                  WHERE [company, sector] AND S.price > NEXT(S).price \
                  GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds";
const Q2: &str = "RETURN mapper, SUM(M.cpu) \
                  PATTERN SEQ(Start S, Measurement M+, End E) \
                  WHERE [job, mapper] AND M.load < NEXT(M).load \
                  GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds";
const Q3: &str = "RETURN segment, COUNT(*), AVG(P.speed) \
                  PATTERN SEQ(NOT Accident A, Position P+) \
                  WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
                  GROUP-BY segment WITHIN 5 minutes SLIDE 1 minute";

#[test]
fn paper_queries_parse_and_compile() {
    let reg = full_registry();
    for (name, text) in [("Q1", Q1), ("Q2", Q2), ("Q3", Q3)] {
        let spec = parse_query(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(spec.pattern.has_kleene(), "{name} is a Kleene pattern");
        let q = CompiledQuery::compile(&spec, &reg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(q.alternatives.len(), 1);
    }
}

#[test]
fn q1_window_durations_convert_to_ticks() {
    let spec = parse_query(Q1).unwrap();
    assert_eq!(spec.window.within, 600);
    assert_eq!(spec.window.slide, 10);
    // k = within/slide windows per event (Theorem 8.1's k).
    assert_eq!(spec.window.windows_per_event(), 60);
}

#[test]
fn q3_splits_into_positive_and_negative_graphs() {
    let reg = full_registry();
    let q = CompiledQuery::parse(Q3, &reg).unwrap();
    let alt = &q.alternatives[0];
    assert_eq!(alt.graphs.len(), 2);
    assert!(!alt.graphs[0].is_negative());
    assert!(alt.graphs[1].is_negative());
    assert_eq!(alt.graphs[1].previous, None); // leading negation (Case 3)
    assert!(alt.graphs[1].following.is_some());
}

#[test]
fn q1_variations_with_price_factors() {
    // The §10.1 query variations: S.price * X < NEXT(S).price.
    let reg = full_registry();
    for x in ["1", "1.05", "1.1", "1.15", "1.2"] {
        let text = format!(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price * {x} < NEXT(S).price \
             GROUP-BY sector WITHIN 600 SLIDE 10"
        );
        let q = CompiledQuery::parse(&text, &reg).unwrap();
        let ep = &q.alternatives[0].predicates.edges[0];
        let rf = ep
            .range
            .as_ref()
            .expect("linear predicate gets a range form");
        assert!((rf.scale - x.parse::<f64>().unwrap()).abs() < 1e-12);
    }
}

#[test]
fn grammar_sugar_round_trips() {
    let reg = full_registry();
    // Star and optional desugar into disjoint alternatives (§9).
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN SEQ(Start S?, Measurement M+, End E?) WITHIN 60 SLIDE 60",
        &reg,
    )
    .unwrap();
    assert_eq!(q.alternatives.len(), 4);
}

#[test]
fn error_diagnostics() {
    let reg = full_registry();
    // Unknown event type.
    let err =
        CompiledQuery::parse("RETURN COUNT(*) PATTERN Bond B+ WITHIN 1 SLIDE 1", &reg).unwrap_err();
    assert!(err.to_string().contains("Bond"), "{err}");
    // Unknown attribute in aggregate.
    let err = CompiledQuery::parse(
        "RETURN MIN(S.prize) PATTERN Stock S+ WITHIN 1 SLIDE 1",
        &reg,
    )
    .unwrap_err();
    assert!(err.to_string().contains("prize"), "{err}");
    // Outermost negation.
    let err = CompiledQuery::parse("RETURN COUNT(*) PATTERN NOT Stock WITHIN 1 SLIDE 1", &reg)
        .unwrap_err();
    assert!(matches!(err, QueryError::InvalidPattern(_)), "{err}");
    // Zero window.
    let err = CompiledQuery::parse("RETURN COUNT(*) PATTERN Stock S+ WITHIN 0 SLIDE 1", &reg)
        .unwrap_err();
    assert!(matches!(err, QueryError::InvalidWindow(_)), "{err}");
    // Lex error positions point at the offending byte.
    let err = parse_query("RETURN COUNT(*) PATTERN ☃").unwrap_err();
    assert!(matches!(err, QueryError::Lex { .. }), "{err}");
}

#[test]
fn minimal_trend_length_unrolling() {
    // §9: A+ with minimal length 3 = SEQ(A, A, A+); exercised through the
    // public pattern API and executable end to end.
    use greta::query::ast::Pattern;
    use greta::query::pattern::unroll_plus;
    let p = Pattern::ty("Stock").plus();
    let unrolled = unroll_plus(&p, 3).unwrap();
    let spec = greta::query::QuerySpec::count_star(unrolled, 100);
    let reg = full_registry();
    let q = CompiledQuery::compile(&spec, &reg).unwrap();
    // Three occurrences of Stock — one state each.
    assert_eq!(q.alternatives[0].graphs[0].template.states.len(), 3);

    // Executing: with 4 events, trends of length ≥ 3: C(4,3) + C(4,4) = 5.
    use greta::core::GretaEngine;
    use greta::types::{EventBuilder, Time};
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    for t in 1..=4u64 {
        let e = EventBuilder::new(&reg, "Stock")
            .unwrap()
            .at(Time(t))
            .build();
        engine.process(&e).unwrap();
    }
    let rows = engine.finish();
    assert_eq!(rows[0].values[0].to_f64(), 5.0);
}

#[test]
fn disjunction_compiles_for_disjoint_types() {
    let reg = full_registry();
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN Stock S+ OR Position P+ WITHIN 100 SLIDE 100",
        &reg,
    )
    .unwrap();
    assert_eq!(q.alternatives.len(), 2);
}
