//! Property-based cross-validation: for random patterns, predicates,
//! windows and streams, **five independent implementations must agree** on
//! every aggregate of every window of every group:
//!
//! * GRETA (graph DP — the paper's contribution), with all three numeric
//!   carriers (`u64`, `f64`, `BigUint`);
//! * the enumeration oracle (aggregate-per-trend);
//! * SASE-, CET- and Flink-style two-step baselines.
//!
//! This is the strongest defence of Theorems 4.3/4.4/5.1/9.1: the DP
//! propagation and every optimization (panes, pruning, range indexes,
//! invalidation logs) must be observationally equivalent to brute force.

use greta::baselines::{oracle_run, CetEngine, FlinkEngine, SaseEngine};
use greta::core::{EngineConfig, GretaEngine};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};
use greta_bignum::BigUint;
use proptest::prelude::*;

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    for t in ["A", "B", "C", "D", "E"] {
        reg.register_type(t, &["attr", "g"]).unwrap();
    }
    reg
}

/// Curated pattern pool: flat/nested Kleene, sequences, every negation
/// case, multiplicities, star/optional sugar.
const PATTERNS: &[&str] = &[
    "A+",
    "SEQ(A, B)",
    "SEQ(A+, B)",
    "(SEQ(A+, B))+",
    "SEQ(A, B+, C)",
    "SEQ(A+, B+)",
    "(SEQ(A+, B, C+))+",
    "SEQ(A+, NOT C, B)",
    "SEQ(A+, NOT SEQ(C, D), B)",
    "(SEQ(A+, NOT SEQ(C, NOT E, D), B))+",
    "SEQ(A+, NOT C)",
    "SEQ(NOT C, A+)",
    "SEQ(A X1+, B, A X2+)",
    "SEQ(A*, B)",
    "SEQ(A?, B, C*)",
];

const WHERES: &[&str] = &[
    "",
    " WHERE A.attr > NEXT(A).attr",
    " WHERE A.attr < NEXT(A).attr",
    " WHERE [g]",
    " WHERE [g] AND A.attr > NEXT(A).attr",
    " WHERE A.attr > 3",
];

const AGGS: &[&str] = &[
    "COUNT(*)",
    "COUNT(*), COUNT(A)",
    "COUNT(*), MIN(A.attr), MAX(A.attr)",
    "COUNT(*), SUM(A.attr), AVG(A.attr)",
];

fn arb_stream() -> impl Strategy<Value = Vec<(u8, u8, i8, i8)>> {
    // (type 0..5, time-delta 0..3, attr, group)
    prop::collection::vec((0u8..5, 0u8..3, 0i8..6, 0i8..2), 0..14)
}

fn build_events(reg: &SchemaRegistry, raw: &[(u8, u8, i8, i8)]) -> Vec<Event> {
    let names = ["A", "B", "C", "D", "E"];
    let mut t = 0u64;
    raw.iter()
        .map(|(ty, dt, attr, g)| {
            t += *dt as u64; // deltas of 0 exercise same-timestamp handling
            EventBuilder::new(reg, names[*ty as usize])
                .unwrap()
                .at(Time(t))
                .set("attr", *attr as i64)
                .unwrap()
                .set("g", *g as i64)
                .unwrap()
                .build()
        })
        .collect()
}

type Rows = Vec<(u64, Vec<String>, Vec<f64>)>;

fn canon<N: greta::core::TrendNum>(rows: &[greta::core::WindowResult<N>]) -> Rows {
    let mut out: Rows = rows
        .iter()
        .map(|r| {
            (
                r.window,
                r.group
                    .0
                    .iter()
                    .map(|v| v.as_ref().map(|x| x.to_string()).unwrap_or_default())
                    .collect(),
                r.values.iter().map(|v| v.to_f64()).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

fn rows_eq(a: &Rows, b: &Rows, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "row count differs: {}", ctx);
    for (x, y) in a.iter().zip(b.iter()) {
        prop_assert_eq!(x.0, y.0, "window differs: {}", ctx);
        prop_assert_eq!(&x.1, &y.1, "group differs: {}", ctx);
        prop_assert_eq!(x.2.len(), y.2.len());
        for (u, v) in x.2.iter().zip(y.2.iter()) {
            if (u.is_nan() && v.is_nan()) || u == v {
                // Covers exact equality including ±∞ (MIN/MAX over a trend
                // set with no occurrences of the tracked type).
                continue;
            }
            prop_assert!(
                (u - v).abs() <= 1e-6 * u.abs().max(1.0),
                "value {} vs {} in {}",
                u,
                v,
                ctx
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn all_engines_agree(
        pat_idx in 0..PATTERNS.len(),
        where_idx in 0..WHERES.len(),
        agg_idx in 0..AGGS.len(),
        window in prop_oneof![Just((100u64, 100u64)), Just((10, 5)), Just((8, 3))],
        raw in arb_stream(),
    ) {
        let reg = registry();
        let text = format!(
            "RETURN {} PATTERN {}{} WITHIN {} SLIDE {}",
            AGGS[agg_idx], PATTERNS[pat_idx], WHERES[where_idx], window.0, window.1
        );
        let q = match CompiledQuery::parse(&text, &reg) {
            Ok(q) => q,
            Err(_) => return Ok(()), // some combos invalid (e.g. bad names)
        };
        let events = build_events(&reg, &raw);
        let ctx = format!("{text} over {} events", events.len());

        let mut greta_f = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
        let rows_f = canon(&greta_f.run(&events).unwrap());
        let oracle = canon(&oracle_run(&q, &reg, &events));
        rows_eq(&rows_f, &oracle, &format!("GRETA(f64) vs oracle: {ctx}"))?;

        let mut greta_u = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let rows_u = canon(&greta_u.run(&events).unwrap());
        rows_eq(&rows_u, &oracle, &format!("GRETA(u64) vs oracle: {ctx}"))?;

        let mut greta_b = GretaEngine::<BigUint>::new(q.clone(), reg.clone()).unwrap();
        let rows_b = canon(&greta_b.run(&events).unwrap());
        rows_eq(&rows_b, &oracle, &format!("GRETA(BigUint) vs oracle: {ctx}"))?;

        let sase = canon(&SaseEngine::run(&q, &reg, &events, u64::MAX).rows);
        rows_eq(&sase, &oracle, &format!("SASE vs oracle: {ctx}"))?;
        let cet = canon(&CetEngine::run(&q, &reg, &events, u64::MAX).rows);
        rows_eq(&cet, &oracle, &format!("CET vs oracle: {ctx}"))?;
        let flink = canon(&FlinkEngine::run(&q, &reg, &events, u64::MAX).rows);
        rows_eq(&flink, &oracle, &format!("FLINK vs oracle: {ctx}"))?;
    }

    #[test]
    fn range_index_ablation_is_observationally_equal(
        pat_idx in 0..PATTERNS.len(),
        raw in arb_stream(),
    ) {
        let reg = registry();
        let text = format!(
            "RETURN COUNT(*), SUM(A.attr) PATTERN {} \
             WHERE A.attr > NEXT(A).attr WITHIN 20 SLIDE 10",
            PATTERNS[pat_idx]
        );
        let Ok(q) = CompiledQuery::parse(&text, &reg) else { return Ok(()) };
        let events = build_events(&reg, &raw);
        let mut with_idx = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
        let mut without = GretaEngine::<f64>::with_config(
            q,
            reg.clone(),
            EngineConfig { use_range_index: false, ..Default::default() },
        ).unwrap();
        let a = canon(&with_idx.run(&events).unwrap());
        let b = canon(&without.run(&events).unwrap());
        rows_eq(&a, &b, "index vs scan")?;
    }

    #[test]
    fn sharded_executor_matches_sequential(
        raw in arb_stream(),
        shards in 1usize..4,
    ) {
        let reg = registry();
        let q = CompiledQuery::parse(
            "RETURN g, COUNT(*) PATTERN A+ WHERE A.attr > NEXT(A).attr \
             GROUP-BY g WITHIN 50 SLIDE 50",
            &reg,
        ).unwrap();
        let events = build_events(&reg, &raw);
        let mut seq = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
        let a = canon(&seq.run(&events).unwrap());
        // Push-based sharded path: events fed one at a time with
        // intermediate polls, never as a batch.
        let mut exec = greta::core::StreamExecutor::<f64>::new(
            q,
            reg,
            greta::core::ExecutorConfig {
                shards,
                engine: EngineConfig::default(),
                ..Default::default()
            },
        ).unwrap();
        let mut rows = Vec::new();
        for e in &events {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        let b = canon(&rows);
        rows_eq(&a, &b, "sharded executor vs sequential")?;
    }

    #[test]
    fn streaming_equals_batch(raw in arb_stream()) {
        // Processing event-by-event with intermediate polls must equal a
        // single batch run (incremental window lifecycle is transparent).
        let reg = registry();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*), MIN(A.attr) PATTERN (SEQ(A+, B))+ WITHIN 6 SLIDE 2",
            &reg,
        ).unwrap();
        let events = build_events(&reg, &raw);
        let mut batch = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
        let expect = canon(&batch.run(&events).unwrap());
        let mut stream = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
        let mut got = Vec::new();
        for e in &events {
            stream.process(e).unwrap();
            got.extend(stream.poll_results());
        }
        got.extend(stream.finish());
        rows_eq(&canon(&got), &expect, "stream vs batch")?;
    }
}
