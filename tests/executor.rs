//! Integration tests for the push-based sharded `StreamExecutor`:
//! shard-count invariance on the paper's grouped queries, incremental
//! `poll_results` equivalence with batch runs, `ReorderBuffer` late-event
//! policies, and watermark-driven window closing.

use greta::core::{
    EmissionMode, EngineError, ExecutorConfig, GretaEngine, LatePolicy, StreamExecutor,
    WindowResult,
};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};
use greta::workloads::{ClusterConfig, ClusterGen, StockConfig, StockGen};

fn sorted(mut rows: Vec<WindowResult<f64>>) -> Vec<WindowResult<f64>> {
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    rows
}

/// Feed events one by one, polling between pushes (the push-based path).
fn run_executor(
    query: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    config: ExecutorConfig,
) -> (Vec<WindowResult<f64>>, greta::core::ExecutorStats) {
    let mut exec = StreamExecutor::<f64>::new(query.clone(), reg.clone(), config).unwrap();
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().unwrap());
    (sorted(rows), exec.stats())
}

/// Q1 over the stock workload (paper §1) — grouped by sector.
fn stock_setup(n: usize) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: n,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let q = CompiledQuery::parse(
        &format!(
            "RETURN sector, COUNT(*) PATTERN Stock S+ \
             WHERE [company, sector] AND S.price > NEXT(S).price \
             GROUP-BY sector WITHIN {w} SLIDE {s}",
            w = n / 2,
            s = n / 8
        ),
        &reg,
    )
    .unwrap();
    (reg, q, events)
}

#[test]
fn sharded_executor_is_shard_count_invariant_on_q1() {
    // Acceptance criterion: N>1 shards produce byte-identical sorted
    // results to the single-threaded engine while events are pushed one by
    // one, not as a batch.
    let (reg, q, events) = stock_setup(600);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    assert!(!expect.is_empty());
    for shards in [1, 2, 4, 8] {
        let (rows, stats) = run_executor(
            &q,
            &reg,
            &events,
            ExecutorConfig {
                shards,
                ..Default::default()
            },
        );
        assert_eq!(rows, expect, "shards={shards}");
        assert_eq!(stats.engine.events, events.len() as u64);
    }
}

#[test]
fn sharded_executor_is_shard_count_invariant_on_q2() {
    // Q2 (cluster monitoring): SEQ pattern with MID events and SUM.
    let mut reg = SchemaRegistry::new();
    let gen = ClusterGen::new(
        ClusterConfig {
            events: 800,
            mappers: 7,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let q = CompiledQuery::parse(
        "RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E) \
         WHERE [job, mapper] AND M.load < NEXT(M).load \
         GROUP-BY mapper WITHIN 400 SLIDE 400",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    for shards in [2, 5] {
        let (rows, _) = run_executor(
            &q,
            &reg,
            &events,
            ExecutorConfig {
                shards,
                ..Default::default()
            },
        );
        assert_eq!(rows, expect, "shards={shards}");
    }
}

#[test]
fn incremental_polls_equal_finish_only() {
    let (reg, q, events) = stock_setup(400);
    // Path A: poll aggressively while pushing.
    let (polled, _) = run_executor(
        &q,
        &reg,
        &events,
        ExecutorConfig {
            shards: 3,
            ..Default::default()
        },
    );
    // Path B: never poll; collect everything from finish().
    let mut exec = StreamExecutor::<f64>::new(
        q.clone(),
        reg.clone(),
        ExecutorConfig {
            shards: 3,
            ..Default::default()
        },
    )
    .unwrap();
    for e in &events {
        exec.push(e.clone()).unwrap();
    }
    let finished = sorted(exec.finish().unwrap());
    assert_eq!(polled, finished);
}

#[test]
fn results_arrive_before_end_of_stream() {
    let (reg, q, events) = stock_setup(600);
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            shards: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let mut streamed = 0usize;
    for e in &events {
        exec.push(e.clone()).unwrap();
        streamed += exec.poll_results().len();
    }
    // Several windows close mid-stream; allow the workers a brief moment
    // to flush the last of them.
    for _ in 0..200 {
        if streamed > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        streamed += exec.poll_results().len();
    }
    let tail = exec.finish().unwrap().len();
    assert!(
        streamed > 0,
        "no incremental results (tail came all at once: {tail})"
    );
}

fn tick_setup() -> (SchemaRegistry, CompiledQuery) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &[]).unwrap();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
    (reg, q)
}

#[test]
fn late_event_policy_drop_counts_and_excludes() {
    let (reg, q) = tick_setup();
    let tid = reg.type_id("A").unwrap();
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            slack: 3,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        },
    )
    .unwrap();
    for t in [5u64, 4, 6, 20, 2, 21] {
        exec.push(Event::new_unchecked(tid, Time(t), vec![]))
            .unwrap();
    }
    let rows = exec.finish().unwrap();
    // t=2 arrives after the slack released the watermark past it: dropped.
    assert_eq!(exec.stats().late_dropped, 1);
    // Remaining in-order events: 4 5 6 20 21 → 2^5 - 1 trends... but only
    // the 5 surviving events count: 31.
    assert_eq!(rows[0].values[0].to_f64(), 31.0);
}

#[test]
fn late_event_policy_divert_hands_events_back() {
    let (reg, q) = tick_setup();
    let tid = reg.type_id("A").unwrap();
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            slack: 1,
            late_policy: LatePolicy::Divert,
            ..Default::default()
        },
    )
    .unwrap();
    for t in [10u64, 12, 3, 14, 4] {
        exec.push(Event::new_unchecked(tid, Time(t), vec![]))
            .unwrap();
    }
    exec.finish().unwrap();
    let diverted = exec.take_diverted();
    assert_eq!(exec.stats().late_diverted, 2);
    let times: Vec<u64> = diverted.iter().map(|e| e.time.ticks()).collect();
    assert_eq!(times, vec![3, 4]);
    assert!(exec.take_diverted().is_empty()); // drained
}

#[test]
fn late_event_policy_error_fails_the_push() {
    let (reg, q) = tick_setup();
    let tid = reg.type_id("A").unwrap();
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            slack: 1,
            late_policy: LatePolicy::Error,
            ..Default::default()
        },
    )
    .unwrap();
    exec.push(Event::new_unchecked(tid, Time(10), vec![]))
        .unwrap();
    exec.push(Event::new_unchecked(tid, Time(12), vec![]))
        .unwrap();
    let err = exec
        .push(Event::new_unchecked(tid, Time(3), vec![]))
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Late {
                slack: 1,
                got: 3,
                ..
            }
        ),
        "{err}"
    );
    // The executor survives the rejection.
    exec.push(Event::new_unchecked(tid, Time(13), vec![]))
        .unwrap();
    let rows = exec.finish().unwrap();
    assert_eq!(rows[0].values[0].to_f64(), 7.0); // {10,12,13} → 2^3 - 1
}

#[test]
fn slack_repairs_disorder_to_match_the_sorted_run() {
    let (reg, q, mut events) = stock_setup(300);
    let expect = {
        let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
        sorted(engine.run(&events).unwrap())
    };
    // Jitter: swap neighbours up to 6 positions apart (≤ 6 ticks here).
    for i in (0..events.len().saturating_sub(7)).step_by(7) {
        events.swap(i, i + 6);
        events.swap(i + 2, i + 4);
    }
    let (rows, stats) = run_executor(
        &q,
        &reg,
        &events,
        ExecutorConfig {
            shards: 4,
            slack: 8,
            late_policy: LatePolicy::Error,
            ..Default::default()
        },
    );
    assert_eq!(stats.late_dropped + stats.late_diverted, 0);
    assert_eq!(rows, expect);
}

#[test]
fn watermarks_close_windows_on_quiet_shards() {
    // Two groups; one goes quiet. The quiet group's shard must still close
    // its windows because the active group's events advance the watermark.
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp"]).unwrap();
    let q = CompiledQuery::parse(
        "RETURN grp, COUNT(*) PATTERN M+ GROUP-BY grp WITHIN 10 SLIDE 10",
        &reg,
    )
    .unwrap();
    let ev = |t: u64, g: i64| {
        EventBuilder::new(&reg, "M")
            .unwrap()
            .at(Time(t))
            .set("grp", g)
            .unwrap()
            .build()
    };
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg.clone(),
        ExecutorConfig {
            shards: 4,
            ..Default::default()
        },
    )
    .unwrap();
    // Both groups live in window 0; only group 0 continues.
    exec.push(ev(1, 0)).unwrap();
    exec.push(ev(2, 1)).unwrap();
    for t in 11..200u64 {
        exec.push(ev(t, 0)).unwrap();
    }
    // Wait for window 0 of BOTH groups without finishing the stream.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut got = Vec::new();
    while got.len() < 2 && std::time::Instant::now() < deadline {
        got.extend(exec.poll_results().into_iter().filter(|r| r.window == 0));
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(got.len(), 2, "window 0 must close for the quiet group too");
    assert!(exec.stats().watermarks > 0);
    exec.finish().unwrap();
}

#[test]
fn run_parallel_wrapper_still_matches_engine() {
    // The legacy batch API is now a wrapper over the executor; make sure
    // the compatibility contract holds on a paper query.
    let (reg, q, events) = stock_setup(300);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let rows = greta::core::parallel::run_parallel::<f64>(
        &q,
        &reg,
        greta::core::EngineConfig::default(),
        &events,
        4,
    )
    .unwrap();
    assert_eq!(rows, expect);
}

#[test]
fn drain_is_byte_identical_to_finish() {
    // `drain()` is the serving-layer graceful stop; `finish()` the
    // historical end-of-stream call. Two executors over the same input
    // must emit the same rows — the exact sequence under `WindowOrdered`
    // (delivery order is part of that contract), sorted-equal under
    // `Unordered` (cross-shard interleaving between polls is explicitly
    // arbitrary) — and a second `drain()` must be an empty no-op.
    let (reg, q, events) = stock_setup(600);
    for emission in [EmissionMode::Unordered, EmissionMode::WindowOrdered] {
        for shards in [1usize, 4] {
            let config = ExecutorConfig {
                shards,
                emission,
                ..Default::default()
            };
            let mut via_finish =
                StreamExecutor::<f64>::new(q.clone(), reg.clone(), config.clone()).unwrap();
            let mut via_drain = StreamExecutor::<f64>::new(q.clone(), reg.clone(), config).unwrap();
            let mut finish_rows = Vec::new();
            let mut drain_rows = Vec::new();
            for e in &events {
                via_finish.push(e.clone()).unwrap();
                via_drain.push(e.clone()).unwrap();
                finish_rows.extend(via_finish.poll_results());
                drain_rows.extend(via_drain.poll_results());
            }
            finish_rows.extend(via_finish.finish().unwrap());
            drain_rows.extend(via_drain.drain().unwrap());
            assert!(!finish_rows.is_empty());
            if emission == EmissionMode::Unordered && shards > 1 {
                greta::core::sort_canonical(&mut finish_rows);
                greta::core::sort_canonical(&mut drain_rows);
            }
            assert_eq!(
                drain_rows, finish_rows,
                "emission={emission:?} shards={shards}"
            );
            // Idempotent, and the executor stays readable after the stop.
            assert!(via_drain.drain().unwrap().is_empty());
            assert!(via_drain.poll_results().is_empty());
            assert_eq!(via_drain.stats().pushed, events.len() as u64);
        }
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Random in-order stock-like stream for the Q1 shape: (price, company,
    /// sector) with monotone times.
    fn stock_events(reg: &SchemaRegistry, spec: &[(u8, u8, u8)]) -> Vec<Event> {
        let mut t = 0u64;
        spec.iter()
            .map(|(dt, price, company)| {
                t += 1 + *dt as u64 % 3;
                EventBuilder::new(reg, "Stock")
                    .unwrap()
                    .at(Time(t))
                    .set("price", (*price % 16) as f64)
                    .unwrap()
                    .set("company", (*company % 6) as i64)
                    .unwrap()
                    .set("sector", (*company % 3) as i64)
                    .unwrap()
                    .build()
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// The `Arc<Event>` refactor must not change a single output row:
        /// executor output on the Q1 shape is byte-identical to the
        /// sequential engine's, for 1/2/4 shards.
        #[test]
        fn eventref_executor_is_byte_identical_on_q1_shape(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 1..120),
        ) {
            let mut reg = SchemaRegistry::new();
            reg.register_type("Stock", &["price", "company", "sector"]).unwrap();
            let q = CompiledQuery::parse(
                "RETURN sector, COUNT(*) PATTERN Stock S+ \
                 WHERE [company, sector] AND S.price > NEXT(S).price \
                 GROUP-BY sector WITHIN 40 SLIDE 10",
                &reg,
            )
            .unwrap();
            let events = stock_events(&reg, &spec);
            let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
            let expect = sorted(engine.run(&events).unwrap());
            for shards in [1usize, 2, 4] {
                let (rows, _) = run_executor(
                    &q,
                    &reg,
                    &events,
                    ExecutorConfig { shards, ..Default::default() },
                );
                prop_assert_eq!(&rows, &expect, "shards={}", shards);
                // Mid-stream rebalances (aggressive detector) must not
                // change a single output row either.
                let (rows, stats) = run_executor(
                    &q,
                    &reg,
                    &events,
                    ExecutorConfig {
                        shards,
                        rebalance: Some(greta::core::RebalanceConfig {
                            check_every_windows: 1,
                            imbalance_ratio: 1.0,
                            min_moves: 1,
                        }),
                        ..Default::default()
                    },
                );
                prop_assert_eq!(&rows, &expect, "rebalancing, shards={}", shards);
                prop_assert_eq!(stats.routing_epoch, stats.rebalances);
            }
        }

        /// Same on the Q2 shape (SEQ with MID events, SUM aggregate, and a
        /// broadcast-free grouped route).
        #[test]
        fn eventref_executor_is_byte_identical_on_q2_shape(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..120),
        ) {
            let mut reg = SchemaRegistry::new();
            reg.register_type("Start", &["job", "mapper"]).unwrap();
            reg.register_type("Measurement", &["load", "cpu", "job", "mapper"]).unwrap();
            reg.register_type("End", &["job", "mapper"]).unwrap();
            let q = CompiledQuery::parse(
                "RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E) \
                 WHERE [job, mapper] AND M.load < NEXT(M).load \
                 GROUP-BY mapper WITHIN 60 SLIDE 20",
                &reg,
            )
            .unwrap();
            let mut t = 0u64;
            let events: Vec<Event> = spec
                .iter()
                .map(|(dt, kind, v, key)| {
                    t += 1 + *dt as u64 % 3;
                    let (job, mapper) = ((*key % 4) as i64, (*key % 2) as i64);
                    match kind % 4 {
                        0 => EventBuilder::new(&reg, "Start")
                            .unwrap()
                            .at(Time(t))
                            .set("job", job).unwrap()
                            .set("mapper", mapper).unwrap()
                            .build(),
                        3 => EventBuilder::new(&reg, "End")
                            .unwrap()
                            .at(Time(t))
                            .set("job", job).unwrap()
                            .set("mapper", mapper).unwrap()
                            .build(),
                        _ => EventBuilder::new(&reg, "Measurement")
                            .unwrap()
                            .at(Time(t))
                            .set("load", (*v % 8) as f64).unwrap()
                            .set("cpu", (*v % 5) as f64).unwrap()
                            .set("job", job).unwrap()
                            .set("mapper", mapper).unwrap()
                            .build(),
                    }
                })
                .collect();
            let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
            let expect = sorted(engine.run(&events).unwrap());
            for shards in [1usize, 2, 4] {
                let (rows, _) = run_executor(
                    &q,
                    &reg,
                    &events,
                    ExecutorConfig { shards, ..Default::default() },
                );
                prop_assert_eq!(&rows, &expect, "shards={}", shards);
                let (rows, _) = run_executor(
                    &q,
                    &reg,
                    &events,
                    ExecutorConfig {
                        shards,
                        rebalance: Some(greta::core::RebalanceConfig {
                            check_every_windows: 1,
                            imbalance_ratio: 1.0,
                            min_moves: 1,
                        }),
                        ..Default::default()
                    },
                );
                prop_assert_eq!(&rows, &expect, "rebalancing, shards={}", shards);
            }
        }
    }
}
