//! Integration tests for dynamic shard rebalancing (ISSUE 4):
//! hot-key-skewed streams must trigger the executor's skew detector, the
//! barrier migration must keep per-group counters consistent and results
//! byte-identical to the sequential engine, and recovery must be able to
//! repartition a snapshot onto a different shard count.

use greta::core::{
    EngineError, ExecutorConfig, GretaEngine, PartitionKey, RebalanceConfig, StreamExecutor,
    StreamRouting, WindowResult,
};
use greta::durability::DurabilityConfig;
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time, Value};
use std::path::PathBuf;

fn sorted(mut rows: Vec<WindowResult<f64>>) -> Vec<WindowResult<f64>> {
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    rows
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("greta-rebal-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Q1-shaped grouped query over a synthetic `M` stream.
fn setup() -> (SchemaRegistry, CompiledQuery) {
    let mut reg = SchemaRegistry::new();
    reg.register_type("M", &["grp", "load"]).unwrap();
    let q = CompiledQuery::parse(
        "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
         GROUP-BY grp WITHIN 40 SLIDE 20",
        &reg,
    )
    .unwrap();
    (reg, q)
}

/// The first `n` group ids whose static hash lands on shard 0 of `shards`
/// — adversarial hot keys that pin one shard, exactly the workload the
/// paper's uniform-groups assumption (§10.4) cannot absorb.
fn colliding_groups(reg: &SchemaRegistry, q: &CompiledQuery, shards: usize, n: usize) -> Vec<i64> {
    let routing = StreamRouting::new(q, reg);
    (0..10_000i64)
        .filter(|g| {
            routing.shard_of_group_key(&PartitionKey(vec![Some(Value::Int(*g))]), shards) == 0
        })
        .take(n)
        .collect()
}

/// 90/10 hot-key stream: 90% of events round-robin the `hot_ids` groups,
/// the rest spread over a `cold`-group tail. One event per tick.
fn skewed_events(reg: &SchemaRegistry, n: usize, hot_ids: &[i64], cold: i64) -> Vec<Event> {
    (0..n as u64)
        .map(|t| {
            let grp = if t % 10 < 9 {
                hot_ids[(t % hot_ids.len() as u64) as usize]
            } else {
                100_000 + (t % cold as u64) as i64
            };
            EventBuilder::new(reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", grp)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build()
        })
        .collect()
}

fn aggressive() -> RebalanceConfig {
    RebalanceConfig {
        check_every_windows: 2,
        imbalance_ratio: 1.2,
        min_moves: 1,
    }
}

fn run(
    q: &CompiledQuery,
    reg: &SchemaRegistry,
    events: &[Event],
    config: ExecutorConfig,
) -> (Vec<WindowResult<f64>>, greta::core::ExecutorStats) {
    let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), config).unwrap();
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().unwrap());
    (sorted(rows), exec.stats())
}

#[test]
fn hot_key_stream_rebalances_and_matches_sequential_engine() {
    let (reg, q) = setup();
    // Hot ids collide on shard 0 of 4 (hence also shard 0 of 2).
    let hot = colliding_groups(&reg, &q, 4, 3);
    let events = skewed_events(&reg, 600, &hot, 29);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    for shards in [2usize, 4] {
        let (rows, stats) = run(
            &q,
            &reg,
            &events,
            ExecutorConfig {
                shards,
                rebalance: Some(aggressive()),
                ..Default::default()
            },
        );
        assert_eq!(rows, expect, "shards={shards}");
        assert!(stats.rebalances >= 1, "shards={shards}: detector was quiet");
        assert_eq!(stats.routing_epoch, stats.rebalances);
        let counted: u64 = stats.group_stats.iter().map(|(_, s)| s.events).sum();
        assert_eq!(counted, stats.released, "shards={shards}");
        assert_eq!(stats.engine.events, events.len() as u64);
    }
}

#[test]
fn rebalancing_off_and_on_agree_bytewise() {
    let (reg, q) = setup();
    let hot = colliding_groups(&reg, &q, 4, 2);
    let events = skewed_events(&reg, 500, &hot, 17);
    let off = run(
        &q,
        &reg,
        &events,
        ExecutorConfig {
            shards: 4,
            ..Default::default()
        },
    );
    let on = run(
        &q,
        &reg,
        &events,
        ExecutorConfig {
            shards: 4,
            rebalance: Some(aggressive()),
            ..Default::default()
        },
    );
    assert_eq!(off.0, on.0);
    assert_eq!(on.1.rebalances, on.1.routing_epoch);
    assert!(on.1.rebalances >= 1);
    assert_eq!(off.1.rebalances, 0);
}

#[test]
fn late_emerging_skew_is_detected_within_one_check_period() {
    // The detector works on per-interval counts, not lifetime totals: a
    // long balanced prefix must not average away a hot key that appears
    // late. imbalance_ratio 1.5 is chosen so the *cumulative* ratio after
    // the suffix (~1.25) would stay under the bar — only interval counts
    // can fire here.
    let (reg, q) = setup();
    let hot = colliding_groups(&reg, &q, 4, 2);
    let mut events = Vec::new();
    for t in 0..2000u64 {
        events.push(
            EventBuilder::new(&reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", 100_000 + (t % 40) as i64)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build(),
        );
    }
    for t in 2000..2200u64 {
        events.push(
            EventBuilder::new(&reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", hot[(t % 2) as usize])
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build(),
        );
    }
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            shards: 4,
            rebalance: Some(RebalanceConfig {
                check_every_windows: 2,
                imbalance_ratio: 1.5,
                min_moves: 1,
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rows = Vec::new();
    for e in &events[..2000] {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    let before = exec.stats().rebalances;
    for e in &events[2000..] {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().unwrap());
    assert!(
        exec.stats().rebalances > before,
        "hot key appearing after a balanced prefix must still trigger \
         (before={before}, after={})",
        exec.stats().rebalances
    );
    assert_eq!(sorted(rows), expect);
}

#[test]
fn recover_into_wider_and_narrower_executors_is_byte_identical() {
    let (reg, q) = setup();
    let hot = colliding_groups(&reg, &q, 4, 3);
    let events = skewed_events(&reg, 500, &hot, 29);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    for (from, to) in [(2usize, 4usize), (4, 2), (3, 5), (4, 1)] {
        let dir = tmpdir(&format!("reshard-{from}-{to}"));
        let cfg = |shards| ExecutorConfig {
            shards,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let mut committed = Vec::new();
        {
            let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), cfg(from)).unwrap();
            for e in &events[..300] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
            // Log a few more events after the checkpoint so the WAL tail
            // is replayed through the *resharded* routing on recovery.
            for e in &events[300..350] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
        } // crash
        let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), cfg(to)).unwrap();
        assert_eq!(exec.shards(), to, "{from}→{to}");
        assert!(exec.routing_epoch() > 0, "{from}→{to}: epoch must advance");
        for e in &events[350..] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        // Rows emitted between the checkpoint and the crash are re-emitted
        // deterministically; dedup on (window, group) like an idempotent
        // sink would.
        let mut rows = sorted(committed);
        rows.dedup_by(|a, b| a.window == b.window && a.group == b.group);
        assert_eq!(rows, expect, "{from}→{to}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rebalanced_run_recovers_into_different_shard_count() {
    // The hardest composition: skew → live migration (epoch > 0) →
    // checkpoint → crash → recovery onto a different shard count (the
    // pinned table is discarded for a fresh epoch) → identical results.
    let (reg, q) = setup();
    let hot = colliding_groups(&reg, &q, 4, 3);
    let events = skewed_events(&reg, 600, &hot, 29);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let dir = tmpdir("rebal-then-reshard");
    let cfg = |shards| ExecutorConfig {
        shards,
        rebalance: Some(aggressive()),
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let mut committed = Vec::new();
    let epoch_before = {
        let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), cfg(4)).unwrap();
        for e in &events[..400] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        exec.checkpoint().unwrap();
        exec.routing_epoch()
    }; // crash
    assert!(epoch_before >= 1, "prefix must have rebalanced");
    let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), cfg(6)).unwrap();
    assert_eq!(exec.shards(), 6);
    assert!(exec.routing_epoch() > epoch_before);
    for e in &events[400..] {
        exec.push(e.clone()).unwrap();
        committed.extend(exec.poll_results());
    }
    committed.extend(exec.finish().unwrap());
    assert_eq!(sorted(committed), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_with_same_shard_count_still_works_unchanged() {
    // Guard against the resharding path regressing the common case.
    let (reg, q) = setup();
    let hot = colliding_groups(&reg, &q, 4, 2);
    let events = skewed_events(&reg, 300, &hot, 11);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let dir = tmpdir("same-count");
    let cfg = || ExecutorConfig {
        shards: 3,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let mut committed = Vec::new();
    {
        let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), cfg()).unwrap();
        for e in &events[..150] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        exec.checkpoint().unwrap();
    }
    let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), cfg()).unwrap();
    assert_eq!(exec.shards(), 3);
    assert_eq!(exec.routing_epoch(), 0, "no reshard, no epoch bump");
    for e in &events[150..] {
        exec.push(e.clone()).unwrap();
        committed.extend(exec.poll_results());
    }
    committed.extend(exec.finish().unwrap());
    assert_eq!(sorted(committed), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ungrouped_query_ignores_rebalance_config() {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &[]).unwrap();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
    let tid = reg.type_id("A").unwrap();
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            shards: 8, // clamps to 1: nothing to partition
            rebalance: Some(RebalanceConfig {
                check_every_windows: 1,
                imbalance_ratio: 1.0,
                min_moves: 1,
            }),
            ..Default::default()
        },
    )
    .unwrap();
    for t in 0..100u64 {
        exec.push(Event::new_unchecked(tid, Time(t), vec![]))
            .unwrap();
    }
    exec.finish().unwrap();
    let stats = exec.stats();
    assert_eq!(stats.rebalances, 0);
    assert_eq!(stats.routing_epoch, 0);
}

#[test]
fn coinciding_rebalance_and_checkpoint_barriers_are_fused() {
    // Regression (ISSUE 5 satellite): a window close that owes both a
    // migration and a cadence checkpoint used to run two back-to-back
    // barrier snapshots; the coincidence is now detected and served by one
    // fused snapshot. `barrier_snapshots` counts actual worker barriers:
    // each standalone checkpoint and each migration costs one, a fused
    // pair costs one total (the final finish() checkpoint snapshots the
    // workers' own exports — no barrier at all).
    let (reg, q) = setup();
    let hot = colliding_groups(&reg, &q, 4, 3);
    let events = skewed_events(&reg, 600, &hot, 29);
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let expect = sorted(engine.run(&events).unwrap());
    let dir = tmpdir("fused-barrier");
    let mut durability = DurabilityConfig::new(&dir);
    durability.snapshot_every_windows = 2; // same cadence as the detector
    let mut exec = StreamExecutor::<f64>::new(
        q.clone(),
        reg.clone(),
        ExecutorConfig {
            shards: 4,
            rebalance: Some(RebalanceConfig {
                check_every_windows: 2,
                imbalance_ratio: 1.2,
                min_moves: 1,
            }),
            durability: Some(durability),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rows = Vec::new();
    for e in &events {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    let stats = exec.stats(); // before finish: no terminal checkpoint yet
    assert!(stats.rebalances >= 1, "stream must migrate");
    assert!(
        stats.fused_barriers >= 1,
        "coinciding cadences must fuse at least one barrier pair \
         (rebalances={}, checkpoints={})",
        stats.rebalances,
        stats.checkpoints
    );
    assert_eq!(
        stats.barrier_snapshots,
        stats.rebalances + stats.checkpoints - stats.fused_barriers,
        "each fused coincidence must save exactly one barrier snapshot"
    );
    rows.extend(exec.finish().unwrap());
    assert_eq!(sorted(rows), expect);
    // The fused snapshot is a real checkpoint: recovery resumes from it.
    let mut recovered = StreamExecutor::<f64>::recover(
        q,
        reg,
        ExecutorConfig {
            shards: 4,
            rebalance: Some(RebalanceConfig {
                check_every_windows: 2,
                imbalance_ratio: 1.2,
                min_moves: 1,
            }),
            durability: Some({
                let mut d = DurabilityConfig::new(&dir);
                d.snapshot_every_windows = 2;
                d
            }),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(recovered.finish().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_stats_stay_bounded_on_high_cardinality_streams() {
    // Regression (ISSUE 5 satellite): the per-group counters used to grow
    // one map entry per distinct group forever. They are now a top-K +
    // decayed-counter sketch bounded by ExecutorConfig::group_stats_capacity.
    let (reg, q) = setup();
    // 2500 distinct groups, each a handful of events — far past any cap.
    let events: Vec<Event> = (0..5000u64)
        .map(|t| {
            EventBuilder::new(&reg, "M")
                .unwrap()
                .at(Time(t))
                .set("grp", (t % 2500) as i64)
                .unwrap()
                .set("load", ((t * 31) % 17) as f64)
                .unwrap()
                .build()
        })
        .collect();
    for cap in [64usize, 1024] {
        let (rows, stats) = run(
            &q,
            &reg,
            &events,
            ExecutorConfig {
                shards: 2,
                rebalance: Some(aggressive()),
                group_stats_capacity: cap,
                ..Default::default()
            },
        );
        assert!(
            stats.group_stats.len() <= cap,
            "cap {cap}: {} groups reported",
            stats.group_stats.len()
        );
        assert!(!rows.is_empty());
        // Tracked counts never under-estimate (space-saving property), so
        // the reported sum can only meet or exceed an exact per-group
        // count for the tracked survivors.
        assert!(stats.group_stats.iter().all(|(_, s)| s.events >= 1));
    }
    // Results are unaffected by the sketch capacity (it only shapes the
    // detector's signal, never the routing of a already-pinned group).
    let a = run(
        &q,
        &reg,
        &events,
        ExecutorConfig {
            shards: 2,
            group_stats_capacity: 16,
            ..Default::default()
        },
    );
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    assert_eq!(a.0, sorted(engine.run(&events).unwrap()));
}

#[test]
fn late_policy_error_still_surfaces_during_rebalanced_runs() {
    // The rebalance hook in push() must not swallow the Late error path.
    let (reg, q) = setup();
    let tid = reg.type_id("M").unwrap();
    let ev = |t: u64| {
        Event::new_unchecked(
            tid,
            Time(t),
            vec![greta::types::Value::Int(0), greta::types::Value::Float(0.0)],
        )
    };
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg,
        ExecutorConfig {
            shards: 2,
            slack: 1,
            late_policy: greta::core::LatePolicy::Error,
            rebalance: Some(aggressive()),
            ..Default::default()
        },
    )
    .unwrap();
    exec.push(ev(10)).unwrap();
    exec.push(ev(20)).unwrap();
    assert!(matches!(
        exec.push(ev(5)).unwrap_err(),
        EngineError::Late { got: 5, .. }
    ));
    exec.finish().unwrap();
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Satellite acceptance: on randomly generated 90/10 hot-key
        /// streams the detector fires, the per-group event counters stay
        /// consistent across migrations (they sum to the released event
        /// count), and executor output is byte-identical to the 1-shard
        /// sequential engine.
        #[test]
        fn skewed_streams_rebalance_and_stay_byte_identical(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255), 80..200),
            hot in 2usize..5,
        ) {
            let (reg, q) = setup();
            // Hot ids that provably collide on one shard of 4: the stream
            // is skewed no matter how the random bytes fall, so the
            // trigger assertion below cannot flake.
            let hot_ids = colliding_groups(&reg, &q, 4, hot);
            let events: Vec<Event> = spec.iter().enumerate().map(|(i, (skew, load))| {
                let t = i as u64 + 1;
                // Exactly 90% of events round-robin the hot groups, 10%
                // fall in a 23-group cold tail; payloads stay random.
                let grp = if i % 10 < 9 {
                    hot_ids[i % hot]
                } else {
                    100_000 + (*skew as i64) % 23
                };
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", grp).unwrap()
                    .set("load", (*load % 16) as f64).unwrap()
                    .build()
            }).collect();
            let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
            let expect = sorted(engine.run(&events).unwrap());
            let (rows, stats) = run(
                &q,
                &reg,
                &events,
                ExecutorConfig {
                    shards: 4,
                    rebalance: Some(RebalanceConfig {
                        check_every_windows: 1,
                        imbalance_ratio: 1.2,
                        min_moves: 1,
                    }),
                    ..Default::default()
                },
            );
            prop_assert_eq!(&rows, &expect);
            // ≥80 in-order ticks close ≥2 windows (WITHIN 40 SLIDE 20)
            // with ≥90% of mass on ≤4 hot groups: the detector must fire.
            prop_assert!(stats.rebalances >= 1, "detector stayed quiet");
            prop_assert_eq!(stats.routing_epoch, stats.rebalances);
            let counted: u64 = stats.group_stats.iter().map(|(_, s)| s.events).sum();
            prop_assert_eq!(counted, stats.released);
        }

        /// Mid-stream crash + recovery into a random different shard count
        /// on a skewed stream: byte-identical after idempotent-sink dedup.
        #[test]
        fn resharded_recovery_is_byte_identical(
            spec in proptest::collection::vec((0u8..=255, 0u8..=255), 60..140),
            from in 2usize..5,
            to in 1usize..6,
            cut_pct in 20u8..80,
        ) {
            let (reg, q) = setup();
            let mut t = 0u64;
            let events: Vec<Event> = spec.iter().map(|(skew, load)| {
                t += 1;
                let grp = if skew % 10 < 9 { (*skew as i64) % 3 } else { 3 + (*load as i64) % 13 };
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", grp).unwrap()
                    .set("load", (*load % 16) as f64).unwrap()
                    .build()
            }).collect();
            let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
            let expect = sorted(engine.run(&events).unwrap());
            let cut = events.len() * cut_pct as usize / 100;
            let dir = tmpdir(&format!("prop-{from}-{to}-{}", spec.len()));
            let cfg = |shards| ExecutorConfig {
                shards,
                rebalance: Some(aggressive()),
                durability: Some(DurabilityConfig::new(&dir)),
                ..Default::default()
            };
            let mut committed = Vec::new();
            {
                let mut exec = StreamExecutor::<f64>::new(q.clone(), reg.clone(), cfg(from)).unwrap();
                for e in &events[..cut] {
                    exec.push(e.clone()).unwrap();
                    committed.extend(exec.poll_results());
                }
                exec.checkpoint().unwrap();
            } // crash
            let mut exec = StreamExecutor::<f64>::recover(q.clone(), reg.clone(), cfg(to)).unwrap();
            for e in &events[cut..] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            committed.extend(exec.finish().unwrap());
            let mut rows = sorted(committed);
            rows.dedup_by(|a, b| a.window == b.window && a.group == b.group);
            prop_assert_eq!(rows, expect);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
