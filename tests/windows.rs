//! Sliding-window integration tests (experiment E4 of DESIGN.md):
//! Fig. 9's shared sub-graphs between overlapping windows, window close
//! and pane purge behaviour, and the edge-predicate example of Fig. 10 —
//! all cross-validated against the enumeration oracle.

use greta::baselines::oracle_run;
use greta::core::{GretaEngine, MemoryFootprint};
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &["attr"]).unwrap();
    reg.register_type("B", &["attr"]).unwrap();
    reg
}

fn ev(reg: &SchemaRegistry, ty: &str, t: u64, attr: f64) -> Event {
    EventBuilder::new(reg, ty)
        .unwrap()
        .at(Time(t))
        .set("attr", attr)
        .unwrap()
        .build()
}

fn rows_match_oracle(query_text: &str, evs: &[Event], reg: &SchemaRegistry) {
    let q = CompiledQuery::parse(query_text, reg).unwrap();
    let mut engine = GretaEngine::<f64>::new(q.clone(), reg.clone()).unwrap();
    let mut rows = engine.run(evs).unwrap();
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    let oracle = oracle_run(&q, reg, evs);
    assert_eq!(rows.len(), oracle.len(), "row count for {query_text}");
    for (g, o) in rows.iter().zip(&oracle) {
        assert_eq!(g.window, o.window);
        assert_eq!(g.group, o.group);
        for (gv, ov) in g.values.iter().zip(&o.values) {
            let (a, b) = (gv.to_f64(), ov.to_f64());
            if a.is_nan() && b.is_nan() {
                continue;
            }
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{query_text}: window {} {a} vs {b}",
                g.window
            );
        }
    }
}

#[test]
fn figure_9_sliding_window_counts() {
    // WITHIN 10 SLIDE 3 over the Fig. 9 stream (events a1..b9 of Fig. 6).
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 0.0),
        ev(&reg, "B", 2, 0.0),
        ev(&reg, "A", 3, 0.0),
        ev(&reg, "A", 4, 0.0),
        ev(&reg, "B", 7, 0.0),
        ev(&reg, "A", 8, 0.0),
        ev(&reg, "B", 9, 0.0),
    ];
    rows_match_oracle(
        "RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 10 SLIDE 3",
        &evs,
        &reg,
    );
}

#[test]
fn overlapping_windows_share_one_graph() {
    // The shared-graph engine stores each event once regardless of how many
    // windows it falls into (Fig. 9(b)); vertex count == matched events.
    let reg = registry();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 12 SLIDE 3", &reg).unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    for t in 0..12u64 {
        engine.process(&ev(&reg, "A", t, 0.0)).unwrap();
    }
    assert_eq!(engine.stats().vertices, 12); // k=4 windows, still 12 vertices
    engine.finish();
}

#[test]
fn window_results_stream_incrementally() {
    let reg = registry();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 5 SLIDE 5", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    let mut per_poll = Vec::new();
    for t in 0..20u64 {
        engine.process(&ev(&reg, "A", t, 0.0)).unwrap();
        for r in engine.poll_results() {
            per_poll.push((r.window, r.values[0].to_f64()));
        }
    }
    for r in engine.finish() {
        per_poll.push((r.window, r.values[0].to_f64()));
    }
    // Four windows of five events each: 2^5 - 1 = 31 trends apiece.
    assert_eq!(per_poll, vec![(0, 31.0), (1, 31.0), (2, 31.0), (3, 31.0)]);
}

#[test]
fn pane_purge_bounds_memory() {
    // Tumbling windows: memory must not grow with stream length.
    let reg = registry();
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 50 SLIDE 50", &reg).unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    let mut mem_after_each_window = Vec::new();
    for t in 0..500u64 {
        engine.process(&ev(&reg, "A", t, 0.0)).unwrap();
        if t % 50 == 10 && t > 50 {
            mem_after_each_window.push(engine.memory_bytes());
        }
    }
    engine.finish();
    // Memory right after a window close is roughly flat (same ±2x), never
    // cumulative across the 10 windows.
    let first = *mem_after_each_window.first().unwrap() as f64;
    for &m in &mem_after_each_window {
        assert!((m as f64) < first * 2.5, "memory grew: {m} vs {first}");
    }
}

#[test]
fn figure_10_edge_predicate_prunes_edges() {
    // A+ with attr increasing (Fig. 10): only value-increasing edges form.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 5.0),
        ev(&reg, "A", 2, 3.0),
        ev(&reg, "A", 3, 7.0),
        ev(&reg, "A", 4, 4.0),
    ];
    rows_match_oracle(
        "RETURN COUNT(*) PATTERN A S+ WHERE S.attr < NEXT(S).attr WITHIN 100 SLIDE 100",
        &evs,
        &reg,
    );
    // Exact: increasing trends: singletons 4 + (5,7) (3,7) (3,4) = 7.
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN A S+ WHERE S.attr < NEXT(S).attr WITHIN 100 SLIDE 100",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(&evs).unwrap();
    assert_eq!(rows[0].values[0].to_f64(), 7.0);
}

#[test]
fn sliding_windows_with_predicates_and_groups_match_oracle() {
    let reg = {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["attr", "g"]).unwrap();
        reg
    };
    let mk = |t: u64, attr: f64, g: i64| {
        EventBuilder::new(&reg, "A")
            .unwrap()
            .at(Time(t))
            .set("attr", attr)
            .unwrap()
            .set("g", g)
            .unwrap()
            .build()
    };
    let evs: Vec<Event> = (0..40u64)
        .map(|t| mk(t, ((t * 13) % 7) as f64, (t % 3) as i64))
        .collect();
    rows_match_oracle(
        "RETURN g, COUNT(*), SUM(A.attr) PATTERN A S+ \
         WHERE S.attr > NEXT(S).attr GROUP-BY g WITHIN 12 SLIDE 4",
        &evs,
        &reg,
    );
}

#[test]
fn trend_spanning_window_boundary_counts_in_neither() {
    // Events at t=4 and t=6 with WITHIN 5 SLIDE 5: the pair spans the
    // boundary; only the singletons count per window.
    let reg = registry();
    let evs = vec![ev(&reg, "A", 4, 0.0), ev(&reg, "A", 6, 0.0)];
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 5 SLIDE 5", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(&evs).unwrap();
    let counts: Vec<(u64, f64)> = rows
        .iter()
        .map(|r| (r.window, r.values[0].to_f64()))
        .collect();
    assert_eq!(counts, vec![(0, 1.0), (1, 1.0)]);
}

#[test]
fn late_window_gap_is_handled() {
    // A long silent gap: windows in between have no content and emit no rows.
    let reg = registry();
    let evs = vec![ev(&reg, "A", 1, 0.0), ev(&reg, "A", 1000, 0.0)];
    let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(&evs).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].window, 0);
    assert_eq!(rows[1].window, 100);
}
