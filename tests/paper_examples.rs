//! Integration tests reproducing the paper's worked examples exactly
//! (experiments E1, E2, E5 of DESIGN.md):
//!
//! * Example 1 / Fig. 12 — all six aggregates of `(SEQ(A+, B))+`;
//! * Fig. 6(a–c) — graph shapes and counts for `A+`, `SEQ(A+, B)`,
//!   `(SEQ(A+, B))+`;
//! * Fig. 13 — multiple occurrences of an event type in one pattern.

use greta::baselines::oracle_run;
use greta::core::GretaEngine;
use greta::query::CompiledQuery;
use greta::types::{Event, EventBuilder, SchemaRegistry, Time};

fn registry() -> SchemaRegistry {
    let mut reg = SchemaRegistry::new();
    reg.register_type("A", &["attr"]).unwrap();
    reg.register_type("B", &["attr"]).unwrap();
    reg
}

fn ev(reg: &SchemaRegistry, ty: &str, t: u64, attr: f64) -> Event {
    EventBuilder::new(reg, ty)
        .unwrap()
        .at(Time(t))
        .set("attr", attr)
        .unwrap()
        .build()
}

/// Stream of Fig. 12: {a1, b2, a3, a4, b7}, attrs 5/·/6/4/·.
fn figure_12_stream(reg: &SchemaRegistry) -> Vec<Event> {
    vec![
        ev(reg, "A", 1, 5.0),
        ev(reg, "B", 2, 0.0),
        ev(reg, "A", 3, 6.0),
        ev(reg, "A", 4, 4.0),
        ev(reg, "B", 7, 0.0),
    ]
}

/// Stream of Fig. 6: {a1, b2, a3, a4, b7, a8, b9}.
fn figure_6_stream(reg: &SchemaRegistry) -> Vec<Event> {
    let mut evs = figure_12_stream(reg);
    evs.push(ev(reg, "A", 8, 0.0));
    evs.push(ev(reg, "B", 9, 0.0));
    evs
}

fn count_of(pattern: &str, events: &[Event], reg: &SchemaRegistry) -> f64 {
    let q = CompiledQuery::parse(
        &format!("RETURN COUNT(*) PATTERN {pattern} WITHIN 1000 SLIDE 1000"),
        reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(events).unwrap();
    rows.first().map(|r| r.values[0].to_f64()).unwrap_or(0.0)
}

#[test]
fn example_1_figure_12_all_aggregates() {
    let reg = registry();
    let q = CompiledQuery::parse(
        "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) \
         PATTERN (SEQ(A+, B))+ WITHIN 1000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
    let rows = engine.run(&figure_12_stream(&reg)).unwrap();
    let values: Vec<f64> = rows[0].values.iter().map(|v| v.to_f64()).collect();
    assert_eq!(values, vec![11.0, 20.0, 4.0, 6.0, 100.0, 5.0]);

    // The oracle (full enumeration) agrees on every aggregate.
    let oracle = oracle_run(&q, &reg, &figure_12_stream(&reg));
    let ovals: Vec<f64> = oracle[0].values.iter().map(|v| v.to_f64()).collect();
    assert_eq!(values, ovals);
}

#[test]
fn figure_6a_flat_kleene() {
    // A+ over the Fig. 6 stream: b's are irrelevant; 4 a's ⇒ 2^4 − 1 = 15.
    let reg = registry();
    assert_eq!(count_of("A+", &figure_6_stream(&reg), &reg), 15.0);
}

#[test]
fn figure_6b_seq_kleene() {
    // SEQ(A+, B): b's may not precede a's in a trend (no loop back).
    // By Thm 4.3: b2←{a1}:1, b7←{a1,a3,a4}: counts 1,3,6 ⇒ 10... but
    // SEQ(A+,B) has no B→A transition, so a3 = 1 + a1 = 2, a4 = 1+a1+a3 = 4,
    // b7 = a1+a3+a4 = 7, a8 = 1+a1+a3+a4 = 8, b9 = a1+a3+a4+a8 = 15.
    // Final = b2 + b7 + b9 = 1 + 7 + 15 = 23.
    let reg = registry();
    assert_eq!(count_of("SEQ(A+, B)", &figure_6_stream(&reg), &reg), 23.0);
}

#[test]
fn figure_6c_nested_kleene_counts_43() {
    let reg = registry();
    assert_eq!(
        count_of("(SEQ(A+, B))+", &figure_6_stream(&reg), &reg),
        43.0
    );
}

#[test]
fn figure_6_counts_match_oracle() {
    let reg = registry();
    let evs = figure_6_stream(&reg);
    for pattern in ["A+", "SEQ(A+, B)", "(SEQ(A+, B))+", "SEQ(A, B)"] {
        let q = CompiledQuery::parse(
            &format!("RETURN COUNT(*) PATTERN {pattern} WITHIN 1000 SLIDE 1000"),
            &reg,
        )
        .unwrap();
        let greta = count_of(pattern, &evs, &reg);
        let oracle = oracle_run(&q, &reg, &evs)
            .first()
            .map(|r| r.values[0].to_f64())
            .unwrap_or(0.0);
        assert_eq!(greta, oracle, "{pattern}");
    }
}

#[test]
fn figure_13_multiple_type_occurrences() {
    // §9 / Fig. 13: SEQ(A1+, B2, A3, A4+, B5+) over {a1, b2, a3, a4, b5}.
    // Hand-computed per the modified insertion rules:
    //  a1→A1 (start, count 1); b2→B2 (count 1);
    //  a3→A1 (count 2: start + a1), a3→A3 (count 1: via b2);
    //  a4→A1 (count 4), a4→A3 (count 1: b2), a4→A4 (count 1: a3@A3);
    //  b5→B2 (count 6: a1+a3@A1+a4@A1), b5→B5 (count 2: a4@A4 + a4? —
    //  A4+ loop: a4@A4 count includes a3@A3→a4@A4 path).
    // Rather than trusting hand arithmetic, require GRETA == oracle and a
    // positive count.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 0.0),
        ev(&reg, "B", 2, 0.0),
        ev(&reg, "A", 3, 0.0),
        ev(&reg, "A", 4, 0.0),
        ev(&reg, "B", 5, 0.0),
    ];
    let pattern = "SEQ(A A1+, B B2, A A3, A A4+, B B5+)";
    let q = CompiledQuery::parse(
        &format!("RETURN COUNT(*) PATTERN {pattern} WITHIN 1000 SLIDE 1000"),
        &reg,
    )
    .unwrap();
    // The template has five states over two event types.
    assert_eq!(q.alternatives[0].graphs[0].template.states.len(), 5);
    let greta = count_of(pattern, &evs, &reg);
    let oracle = oracle_run(&q, &reg, &evs)
        .first()
        .map(|r| r.values[0].to_f64())
        .unwrap_or(0.0);
    assert_eq!(greta, oracle);
    // Exactly one trend exists: a1 b2 a3 a4 b5 (each state needs ≥1 event).
    assert_eq!(greta, 1.0);
}

#[test]
fn figure_13_multiplicity_with_more_events() {
    // More events make several interleavings; GRETA must match the oracle.
    let reg = registry();
    let evs = vec![
        ev(&reg, "A", 1, 0.0),
        ev(&reg, "A", 2, 0.0),
        ev(&reg, "B", 3, 0.0),
        ev(&reg, "A", 4, 0.0),
        ev(&reg, "A", 5, 0.0),
        ev(&reg, "B", 6, 0.0),
        ev(&reg, "B", 7, 0.0),
    ];
    for pattern in [
        "SEQ(A A1+, B B2, A A3)",
        "SEQ(A A1, B B2, A A3+)",
        "SEQ(A A1+, B B2, A A3, A A4+, B B5+)",
    ] {
        let q = CompiledQuery::parse(
            &format!("RETURN COUNT(*) PATTERN {pattern} WITHIN 1000 SLIDE 1000"),
            &reg,
        )
        .unwrap();
        let greta = count_of(pattern, &evs, &reg);
        let oracle = oracle_run(&q, &reg, &evs)
            .first()
            .map(|r| r.values[0].to_f64())
            .unwrap_or(0.0);
        assert_eq!(greta, oracle, "{pattern}");
    }
}

#[test]
fn skip_till_any_detects_long_downtrend() {
    // §2's motivating stream: {10, 2, 9, 8, 7, 1, 6, 5, 4, 3} — the
    // down-trend (10,9,8,7,6,5,4,3) of length 8 must be among the matches,
    // i.e. the count must include trends that skip the local fluctuations.
    let reg = registry();
    let prices = [10.0, 2.0, 9.0, 8.0, 7.0, 1.0, 6.0, 5.0, 4.0, 3.0];
    let evs: Vec<Event> = prices
        .iter()
        .enumerate()
        .map(|(i, p)| ev(&reg, "A", i as u64 + 1, *p))
        .collect();
    let q = CompiledQuery::parse(
        "RETURN COUNT(*), MIN(A.attr), MAX(A.attr) PATTERN A S+ \
         WHERE S.attr > NEXT(S).attr WITHIN 1000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
    let rows = engine.run(&evs).unwrap();
    let count = rows[0].values[0].to_f64();
    let oracle = oracle_run(&q, &reg, &evs)[0].values[0].to_f64();
    assert_eq!(count, oracle);
    // There are many down-trends; the longest one implies at least 2^8 - 1
    // sub-trends within its 8 events alone.
    assert!(count >= 255.0, "count={count}");
}
