//! End-to-end runs of the three paper queries (Q1/Q2/Q3, §1) on their
//! respective generated workloads (experiments E7/E13 of DESIGN.md), plus
//! distribution sanity checks at the integration level.

use greta::core::{GretaEngine, MemoryFootprint};
use greta::query::CompiledQuery;
use greta::types::SchemaRegistry;
use greta::workloads::{
    ClusterConfig, ClusterGen, LinearRoadConfig, LinearRoadGen, StockConfig, StockGen,
};

#[test]
fn q1_on_stock_workload() {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 2000,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let q = CompiledQuery::parse(
        "RETURN sector, COUNT(*) PATTERN Stock S+ \
         WHERE [company, sector] AND S.price > NEXT(S).price \
         GROUP-BY sector WITHIN 500 SLIDE 250",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(&events).unwrap();
    assert!(!rows.is_empty());
    // 3 sectors × several windows; each row has a positive count.
    let sectors: std::collections::HashSet<String> = rows
        .iter()
        .map(|r| r.group.0[0].as_ref().unwrap().to_string())
        .collect();
    assert_eq!(sectors.len(), 3);
    assert!(rows.iter().all(|r| r.values[0].to_f64() > 0.0));
    assert!(engine.peak_memory_bytes() > 0);
}

#[test]
fn q2_on_cluster_workload() {
    let mut reg = SchemaRegistry::new();
    let gen = ClusterGen::new(
        ClusterConfig {
            events: 4000,
            mappers: 5,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let q = CompiledQuery::parse(
        "RETURN mapper, SUM(M.cpu) \
         PATTERN SEQ(Start S, Measurement M+, End E) \
         WHERE [job, mapper] AND M.load < NEXT(M).load \
         GROUP-BY mapper WITHIN 2000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(&events).unwrap();
    assert!(!rows.is_empty());
    // SUM(M.cpu) over load-increasing trends is positive.
    assert!(rows.iter().all(|r| r.values[0].to_f64() > 0.0));
    // At most 5 mapper groups.
    let mappers: std::collections::HashSet<String> = rows
        .iter()
        .map(|r| r.group.0[0].as_ref().unwrap().to_string())
        .collect();
    assert!(mappers.len() <= 5);
}

#[test]
fn q3_on_linear_road_workload() {
    let mut reg = SchemaRegistry::new();
    let gen = LinearRoadGen::new(
        LinearRoadConfig {
            events: 3000,
            slowdown_bias: 0.6,
            accident_rate: 0.003,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let with_neg = CompiledQuery::parse(
        "RETURN segment, COUNT(*), AVG(P.speed) \
         PATTERN SEQ(NOT Accident A, Position P+) \
         WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
         GROUP-BY segment WITHIN 1000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let without_neg = CompiledQuery::parse(
        "RETURN segment, COUNT(*), AVG(P.speed) \
         PATTERN Position P+ \
         WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
         GROUP-BY segment WITHIN 1000 SLIDE 1000",
        &reg,
    )
    .unwrap();
    let mut e1 = GretaEngine::<f64>::new(with_neg, reg.clone()).unwrap();
    let rows1 = e1.run(&events).unwrap();
    let mut e2 = GretaEngine::<f64>::new(without_neg, reg.clone()).unwrap();
    let rows2 = e2.run(&events).unwrap();
    let total1: f64 = rows1.iter().map(|r| r.values[0].to_f64()).sum();
    let total2: f64 = rows2.iter().map(|r| r.values[0].to_f64()).sum();
    // Accidents can only suppress trends.
    assert!(total1 <= total2, "{total1} > {total2}");
    // AVG speeds are physical.
    for r in rows1.iter().chain(rows2.iter()) {
        let avg = r.values[1].to_f64();
        assert!((1.0..=120.0).contains(&avg), "avg={avg}");
    }
}

#[test]
fn replicated_stock_stream_runs() {
    // The paper replicates the NYSE set 10×; exercise the same path.
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 300,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = StockGen::replicate(&gen.generate(), 10);
    assert_eq!(events.len(), 3000);
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN Stock S+ \
         WHERE [company] AND S.price > NEXT(S).price WITHIN 300 SLIDE 300",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    let rows = engine.run(&events).unwrap();
    assert_eq!(rows.len(), 10); // one row per replica window
}

#[test]
fn memory_stays_bounded_across_many_windows() {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events: 5000,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    let q = CompiledQuery::parse(
        "RETURN COUNT(*) PATTERN Stock S+ \
         WHERE [company] AND S.price > NEXT(S).price WITHIN 200 SLIDE 200",
        &reg,
    )
    .unwrap();
    let mut engine = GretaEngine::<f64>::new(q, reg.clone()).unwrap();
    for e in &events {
        engine.process(e).unwrap();
    }
    engine.finish();
    // Peak should be in the order of a couple of windows, not the stream.
    let peak = engine.peak_memory_bytes();
    let total_event_bytes: usize = events.iter().map(|e| e.heap_size()).sum();
    assert!(
        peak < total_event_bytes,
        "peak {peak} should be far below whole-stream {total_event_bytes}"
    );
}
