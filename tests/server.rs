//! Loopback integration tests for the `greta-server` network front-end:
//! wire ingest (binary and JSON) byte-identical to the in-process
//! executor, ordered subscription monotonicity, backpressure under a
//! slow consumer, graceful-drain-vs-crash recovery, the Prometheus
//! endpoint, malformed-frame handling, and multi-query sessions
//! (runtime register/detach on a shared ingest stream).

use greta::core::{EmissionMode, ExecutorConfig, LatePolicy, StreamExecutor, WindowResult};
use greta::durability::DurabilityConfig;
use greta::query::CompiledQuery;
use greta::server::{Client, GretaServer, SessionOptions};
use greta::types::{Event, SchemaRegistry, Time, TypeId, Value};
use greta::workloads::io::json;
use greta::workloads::{ClusterConfig, ClusterGen, StockConfig, StockGen};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const Q1: &str = "RETURN sector, COUNT(*) PATTERN Stock S+ \
                  WHERE [company, sector] AND S.price > NEXT(S).price \
                  GROUP-BY sector WITHIN 500 SLIDE 250";
const Q2: &str = "RETURN mapper, SUM(M.cpu) \
                  PATTERN SEQ(Start S, Measurement M+, End E) \
                  WHERE [job, mapper] AND M.load < NEXT(M).load \
                  GROUP-BY mapper WITHIN 2000 SLIDE 1000";

fn stock(events: usize) -> (SchemaRegistry, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = StockGen::new(
        StockConfig {
            events,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    (reg, events)
}

fn cluster(events: usize) -> (SchemaRegistry, Vec<Event>) {
    let mut reg = SchemaRegistry::new();
    let gen = ClusterGen::new(
        ClusterConfig {
            events,
            mappers: 5,
            ..Default::default()
        },
        &mut reg,
    )
    .unwrap();
    let events = gen.generate();
    (reg, events)
}

/// The in-process oracle: same query, same shard count, same ordered
/// emission — rows collected across poll_results() + finish().
fn in_process(
    query: &str,
    reg: &SchemaRegistry,
    events: &[Event],
    shards: usize,
) -> Vec<WindowResult<f64>> {
    let q = CompiledQuery::parse(query, reg).unwrap();
    let mut exec = StreamExecutor::<f64>::new(
        q,
        reg.clone(),
        ExecutorConfig {
            shards,
            emission: EmissionMode::WindowOrdered,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone()).unwrap();
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish().unwrap());
    rows
}

fn encode_rows(rows: &[WindowResult<f64>]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in rows {
        r.encode(&mut out);
    }
    out
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("greta-srvtest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn binary_ingest_byte_identical_to_in_process_q1() {
    let (reg, events) = stock(100_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 4,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let collector = std::thread::spawn(move || sub.collect_rows().unwrap());

    for chunk in events.chunks(1024) {
        let ack = client.ingest(session, chunk.to_vec()).unwrap();
        assert!(ack.pushed > 0);
        assert!(ack.durable.is_none()); // no durability configured
    }
    client.drain(session).unwrap();
    let wire_rows = collector.join().unwrap();

    let oracle = in_process(Q1, &reg, &events, 4);
    assert!(!oracle.is_empty());
    assert_eq!(
        encode_rows(&wire_rows),
        encode_rows(&oracle),
        "wire rows must be byte-identical to the in-process executor"
    );
    server.shutdown().unwrap();
}

#[test]
fn json_ingest_byte_identical_to_in_process_q2() {
    let (reg, events) = cluster(4000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Submit + ingest over the JSON line protocol.
    let stream = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;
    let mut line = String::new();

    let schemas: Vec<String> = reg
        .iter()
        .map(|(_, s)| {
            format!(
                "{{\"name\":{},\"attributes\":[{}]}}",
                json::str_lit(&s.name),
                s.attributes
                    .iter()
                    .map(|a| json::str_lit(a))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    writeln!(
        w,
        "{{\"submit\":{{\"query\":{},\"schemas\":[{}],\"options\":{{\"shards\":2}}}}}}",
        json::str_lit(Q2),
        schemas.join(",")
    )
    .unwrap();
    r.read_line(&mut line).unwrap();
    let session = json::parse(line.trim())
        .unwrap()
        .get("submitted")
        .and_then(|s| s.get("session"))
        .and_then(json::Json::as_u64)
        .unwrap_or_else(|| panic!("bad submit reply: {line}"));

    // Binary subscriber on the same session: protocols share sessions.
    let sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let collector = std::thread::spawn(move || sub.collect_rows().unwrap());

    for chunk in events.chunks(512) {
        let evs: Vec<String> = chunk.iter().map(json::encode_event).collect();
        writeln!(
            w,
            "{{\"ingest\":{{\"session\":{session},\"events\":[{}]}}}}",
            evs.join(",")
        )
        .unwrap();
        line.clear();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("\"ack\""), "bad ack: {line}");
    }
    writeln!(w, "{{\"drain\":{{\"session\":{session}}}}}").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("\"drained\""), "bad drain reply: {line}");

    let wire_rows = collector.join().unwrap();
    let oracle = in_process(Q2, &reg, &events, 2);
    assert!(!oracle.is_empty());
    assert_eq!(encode_rows(&wire_rows), encode_rows(&oracle));
    server.shutdown().unwrap();
}

#[test]
fn ordered_subscription_is_monotonic_across_batches() {
    let (reg, events) = stock(20_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 4,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let mut sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let collector = std::thread::spawn(move || {
        let mut batches = Vec::new();
        while let Some(batch) = sub.next_rows().unwrap() {
            batches.push(batch);
        }
        batches
    });
    for chunk in events.chunks(256) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }
    client.drain(session).unwrap();
    let batches = collector.join().unwrap();
    assert!(batches.len() > 1, "want streaming, not one final batch");
    let rows: Vec<WindowResult<f64>> = batches.into_iter().flatten().collect();
    assert!(!rows.is_empty());
    for pair in rows.windows(2) {
        let a = (pair[0].window, pair[0].group.clone());
        let b = (pair[1].window, pair[1].group.clone());
        assert!(a < b, "rows out of canonical order: {a:?} !< {b:?}");
    }
    server.shutdown().unwrap();
}

#[test]
fn slow_consumer_trips_the_busy_signal() {
    let (reg, events) = stock(30_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Tiny result channel, a row-dense query (per-company groups over
    // short windows), and a subscriber that never reads: pending rows
    // hit the session's high-water mark and the executor's result
    // channel backs up, so acks must start carrying busy=true.
    let dense = "RETURN company, COUNT(*) PATTERN Stock S+ \
                 WHERE [company] AND S.price > NEXT(S).price \
                 GROUP-BY company WITHIN 50 SLIDE 25";
    let session = client
        .submit(
            dense,
            &reg,
            SessionOptions {
                shards: 2,
                result_capacity: 16,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let _stalled = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let mut saw_busy = false;
    for chunk in events.chunks(512) {
        if client.ingest(session, chunk.to_vec()).unwrap().busy {
            saw_busy = true;
            break;
        }
    }
    assert!(saw_busy, "backpressure signal never tripped");
    // The server survives: a fresh consumer can still make progress.
    server.abort();
}

#[test]
fn graceful_drain_leaves_recoverable_checkpoint() {
    let (reg, events) = stock(8_000);
    let dir = tmpdir("graceful");
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 2,
                durability_dir: Some(dir.to_string_lossy().into_owned()),
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let collector = std::thread::spawn(move || sub.collect_rows().unwrap());
    for chunk in events.chunks(1024) {
        let ack = client.ingest(session, chunk.to_vec()).unwrap();
        assert!(ack.durable.is_some(), "durable watermark missing from ack");
    }
    client.drain(session).unwrap();
    let wire_rows = collector.join().unwrap();
    server.shutdown().unwrap();

    // The terminal checkpoint is recoverable and complete: recovery
    // resumes an empty stream tail (every row was already emitted).
    let q = CompiledQuery::parse(Q1, &reg).unwrap();
    let mut recovered = StreamExecutor::<f64>::recover(
        q,
        reg.clone(),
        ExecutorConfig {
            shards: 2,
            emission: EmissionMode::WindowOrdered,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        },
    )
    .unwrap();
    let tail = recovered.finish().unwrap();
    assert!(
        tail.is_empty(),
        "graceful drain checkpointed everything; recovery re-emitted {} rows",
        tail.len()
    );
    let oracle = in_process(Q1, &reg, &events, 2);
    assert_eq!(encode_rows(&wire_rows), encode_rows(&oracle));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_without_drain_recovers_from_wal() {
    let (reg, events) = stock(8_000);
    let dir = tmpdir("crash");
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Defer every checkpoint to the terminal one (which the crash then
    // skips): recovery must replay the entire WAL and re-emit all rows.
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 2,
                durability_dir: Some(dir.to_string_lossy().into_owned()),
                snapshot_every_windows: u64::MAX,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let mut last_durable = 0;
    for chunk in events.chunks(1024) {
        let ack = client.ingest(session, chunk.to_vec()).unwrap();
        last_durable = ack.durable.expect("durable watermark");
    }
    assert_eq!(last_durable, events.len() as u64);
    // Kill the server without draining: no terminal checkpoint, the WAL
    // holds the whole stream.
    server.abort();

    let q = CompiledQuery::parse(Q1, &reg).unwrap();
    let mut recovered = StreamExecutor::<f64>::recover(
        q,
        reg.clone(),
        ExecutorConfig {
            shards: 2,
            emission: EmissionMode::WindowOrdered,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rows = recovered.poll_results();
    rows.extend(recovered.finish().unwrap());
    let oracle = in_process(Q1, &reg, &events, 2);
    assert_eq!(
        encode_rows(&rows),
        encode_rows(&oracle),
        "crash recovery must replay the WAL to the same rows"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let (reg, events) = stock(5_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 2,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    for chunk in events.chunks(1024) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }

    let mut http = TcpStream::connect(addr).unwrap();
    write!(http, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    let text = body.split("\r\n\r\n").nth(1).unwrap();

    // Valid exposition format: every series line's name has HELP + TYPE.
    let mut typed = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split(' ').next().unwrap().to_string());
        } else if !line.starts_with('#') && !line.is_empty() {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(typed.contains(name), "series {name} lacks a TYPE header");
            let value = line.rsplit(' ').next().unwrap();
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("series {name} has non-numeric value {value}"));
        }
    }
    // ≥ 12 distinct ExecutorStats-backed families with a session label.
    let executor_families = text
        .lines()
        .filter(|l| l.starts_with("# TYPE greta_") && !l.starts_with("# TYPE greta_server_"))
        .count();
    assert!(
        executor_families >= 12,
        "only {executor_families} executor stat families"
    );
    assert!(text.contains("greta_events_pushed_total{session=\"1\"} 5000"));
    assert!(text.contains("greta_merge_released_watermark"));
    assert!(text.contains("greta_merge_frontier_lag_windows"));

    let mut http = TcpStream::connect(addr).unwrap();
    write!(http, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"));
    assert!(body.ends_with("ok\n"));

    // The binary Stats frame serves the same document.
    let stats = client.stats().unwrap();
    assert!(stats.contains("greta_events_pushed_total"));
    server.shutdown().unwrap();
}

/// Read until EOF, tolerating a reset (the peer may close hard after an
/// error) — returns whatever arrived first.
fn read_all_tolerant(s: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
}

#[test]
fn malformed_and_oversized_frames_are_rejected() {
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Oversized length prefix after a valid preamble: Error frame, no
    // 4 GiB allocation, connection closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GRTA\x02\x00").unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.flush().unwrap();
    let reply = read_all_tolerant(&mut s);
    let text = String::from_utf8_lossy(&reply);
    assert!(text.contains("exceeds limit"), "got: {text}");

    // Garbage payload under a sane length: decode error reported.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GRTA\x02\x00").unwrap();
    s.write_all(&8u32.to_le_bytes()).unwrap();
    s.write_all(&[0xFFu8; 8]).unwrap();
    s.flush().unwrap();
    let reply = read_all_tolerant(&mut s);
    assert!(!reply.is_empty(), "server must answer before closing");

    // A wrong protocol version is refused at the preamble.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GRTA\x63\x00").unwrap();
    s.flush().unwrap();
    read_all_tolerant(&mut s); // connection just closes

    // Unknown first bytes (neither GRTA, HTTP, nor '{'): closed cleanly
    // with nothing sent back.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"\x00\x01\x02\x03").unwrap();
    s.flush().unwrap();
    assert!(read_all_tolerant(&mut s).is_empty());

    // The server is still healthy afterwards.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn recoverable_ingest_errors_do_not_kill_the_session() {
    let (reg, events) = stock(10_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 2,
                late_policy: LatePolicy::Error,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let collector = std::thread::spawn(move || sub.collect_rows().unwrap());

    let (first, second) = events.split_at(events.len() / 2);
    for chunk in first.chunks(1024) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }

    // A malformed event (unknown type id) is rejected with an Error
    // frame, not by tearing the session down.
    let bad = Event::new_unchecked(TypeId(99), Time(0), vec![]);
    let err = client.ingest(session, vec![bad]).unwrap_err();
    assert!(err.to_string().contains("unknown event type"), "{err}");

    // So is a late event under LatePolicy::Error: it poisons its batch
    // but the executor stays usable.
    let err = client.ingest(session, vec![first[0].clone()]).unwrap_err();
    assert!(err.to_string().contains("late"), "{err}");

    // The session keeps serving: the rest of the stream flows, drain
    // works, and the results match the clean in-process run.
    for chunk in second.chunks(1024) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }
    client.drain(session).unwrap();
    let wire_rows = collector.join().unwrap();
    let oracle = in_process(Q1, &reg, &events, 2);
    assert!(!oracle.is_empty());
    assert_eq!(encode_rows(&wire_rows), encode_rows(&oracle));
    server.shutdown().unwrap();
}

#[test]
fn unequal_subscribers_each_get_every_row_exactly_once() {
    let (reg, events) = stock(20_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Row-dense query so the fan-out runs far ahead of a slow reader.
    let dense = "RETURN company, COUNT(*) PATTERN Stock S+ \
                 WHERE [company] AND S.price > NEXT(S).price \
                 GROUP-BY company WITHIN 50 SLIDE 25";
    let session = client
        .submit(
            dense,
            &reg,
            SessionOptions {
                shards: 2,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let fast = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let fast_t = std::thread::spawn(move || fast.collect_rows().unwrap());
    let mut slow = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let slow_t = std::thread::spawn(move || {
        let mut all = Vec::new();
        while let Some(batch) = slow.next_rows().unwrap() {
            all.extend(batch);
            std::thread::sleep(Duration::from_millis(1));
        }
        all
    });
    for chunk in events.chunks(256) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }
    client.drain(session).unwrap();
    let fast_rows = fast_t.join().unwrap();
    let slow_rows = slow_t.join().unwrap();
    let oracle = in_process(dense, &reg, &events, 2);
    assert!(!oracle.is_empty());
    assert_eq!(
        encode_rows(&fast_rows),
        encode_rows(&oracle),
        "fast subscriber must see every row exactly once, no duplicates"
    );
    assert_eq!(
        encode_rows(&slow_rows),
        encode_rows(&oracle),
        "slow subscriber must see every row exactly once"
    );
    server.shutdown().unwrap();
}

#[test]
fn oversized_ingest_batch_is_split_by_the_client() {
    // Same schema shape the stock generator registers; the blob rides in
    // the `kind` attribute Q1 never touches.
    let mut reg = SchemaRegistry::new();
    let stock_tid = reg
        .register_type(
            "Stock",
            &["price", "volume", "company", "sector", "kind", "txn"],
        )
        .unwrap();
    let events: Vec<Event> = (0..9u64)
        .map(|i| {
            Event::new_unchecked(
                stock_tid,
                Time(i + 1),
                vec![
                    Value::Float(i as f64),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Str("x".repeat(3 << 20).into()),
                    Value::Int(i as i64),
                ],
            )
        })
        .collect();

    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client.submit(Q1, &reg, SessionOptions::default()).unwrap();
    // ~27 MiB encoded, beyond the 16 MiB frame cap: one ingest call must
    // arrive as multiple frames, not a wrapped/oversized one.
    let ack = client.ingest(session, events).unwrap();
    assert_eq!(ack.pushed, 9);
    client.drain(session).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn stalled_preamble_is_disconnected_at_the_sniff_deadline() {
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GR").unwrap(); // 2 of the 4 sniff bytes, then stall
    s.flush().unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 16];
    match s.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("unexpected {n} bytes from a stalled connection"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "server held a stalled connection past the sniff deadline"
    );
    // The server is healthy afterwards.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn drained_sessions_age_out_of_the_registry() {
    let (reg, events) = stock(100);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..18 {
        let s = client.submit(Q1, &reg, SessionOptions::default()).unwrap();
        client.ingest(s, events.clone()).unwrap();
        client.drain(s).unwrap();
    }
    let stats = client.stats().unwrap();
    // Recently drained sessions stay observable (bounded tail)...
    assert!(stats.contains("drained=\"true\""), "{stats}");
    assert!(stats.contains("session=\"18\"}"));
    assert!(stats.contains("session=\"3\"}"));
    // ...but the oldest are gone, so the page cannot grow forever.
    assert!(
        !stats.contains("session=\"1\"}"),
        "session 1 should have been evicted from the drained tail"
    );
    assert!(!stats.contains("session=\"2\"}"));
    let err = client.ingest(1, events).unwrap_err();
    assert!(err.to_string().contains("unknown session"), "{err}");
    server.shutdown().unwrap();
}

/// A second query registered on a live session shares its ingest
/// stream: both queries' wire output is byte-identical to an in-process
/// executor running the same register/detach sequence, and the detach
/// reply completes the subscribed stream exactly once.
#[test]
fn registered_query_shares_the_session_stream_and_detaches_cleanly() {
    let (reg, events) = stock(20_000);
    let dense = "RETURN company, COUNT(*) PATTERN Stock S+ \
                 WHERE [company] AND S.price > NEXT(S).price \
                 GROUP-BY company WITHIN 200 SLIDE 100";
    let half = events.len() / 2;

    // In-process oracle running the identical sequence: register before
    // the first event, deregister after `half` events.
    let q = CompiledQuery::parse(Q1, &reg).unwrap();
    let mut oracle = StreamExecutor::<f64>::new(
        q,
        reg.clone(),
        ExecutorConfig {
            shards: 2,
            emission: EmissionMode::WindowOrdered,
            ..Default::default()
        },
    )
    .unwrap();
    let oq = oracle
        .register_query(dense, EmissionMode::WindowOrdered)
        .unwrap();
    let mut oracle_dense = Vec::new();
    let mut oracle_primary = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if i == half {
            oracle_dense.extend(oracle.deregister_query(oq).unwrap());
        }
        oracle.push(e.clone()).unwrap();
        oracle_primary.extend(oracle.poll_results());
        if i < half {
            oracle_dense.extend(oracle.poll_results_of(oq).unwrap());
        }
    }
    oracle_primary.extend(oracle.finish().unwrap());
    assert!(!oracle_primary.is_empty());
    assert!(!oracle_dense.is_empty());

    // The same sequence over the wire.
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client
        .submit(
            Q1,
            &reg,
            SessionOptions {
                shards: 2,
                ..SessionOptions::default()
            },
        )
        .unwrap();
    let dense_q = client
        .register(session, dense, EmissionMode::WindowOrdered)
        .unwrap();
    assert_eq!(dense_q, 1, "first registered query gets id 1");
    let primary_sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    let primary_t = std::thread::spawn(move || primary_sub.collect_rows().unwrap());
    let dense_sub = Client::connect(addr)
        .unwrap()
        .subscribe_query(session, dense_q)
        .unwrap();
    let dense_t = std::thread::spawn(move || dense_sub.collect_rows().unwrap());

    for chunk in events[..half].chunks(512) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }
    // Mid-stream detach: subscribers got everything polled so far, the
    // reply carries the barrier remainder — disjoint, exactly-once.
    let detach_rows = client.detach(session, dense_q).unwrap();
    let dense_streamed = dense_t.join().unwrap();
    let mut dense_rows = dense_streamed;
    dense_rows.extend(detach_rows);

    for chunk in events[half..].chunks(512) {
        client.ingest(session, chunk.to_vec()).unwrap();
    }

    // Per-query metrics are live before the drain.
    let stats = client.stats().unwrap();
    assert!(
        stats.contains("greta_query_rows_total{session=\"1\",query=\"1\"}"),
        "{stats}"
    );
    assert!(
        stats.contains("greta_query_epoch{session=\"1\"} 2"),
        "{stats}"
    );
    assert!(
        stats.contains("greta_query_active{session=\"1\",query=\"1\"} 0"),
        "{stats}"
    );

    client.drain(session).unwrap();
    let primary_rows = primary_t.join().unwrap();

    assert_eq!(
        encode_rows(&primary_rows),
        encode_rows(&oracle_primary),
        "primary query must be unaffected by the registered query"
    );
    assert_eq!(
        encode_rows(&dense_rows),
        encode_rows(&oracle_dense),
        "streamed + detach rows must equal the in-process register/deregister run"
    );

    // A subscription to the detached query ends immediately.
    let late = Client::connect(addr)
        .unwrap()
        .subscribe_query(session, dense_q)
        .unwrap();
    assert!(late.collect_rows().unwrap().is_empty());
    server.shutdown().unwrap();
}

/// The JSON-line protocol speaks register/detach too, and the primary
/// query 0 refuses to detach.
#[test]
fn jsonl_register_and_detach_roundtrip() {
    let (reg, events) = stock(2_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client.submit(Q1, &reg, SessionOptions::default()).unwrap();
    client.ingest(session, events).unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;
    let mut line = String::new();

    let dense = "RETURN company, COUNT(*) PATTERN Stock S+ \
                 WHERE [company] AND S.price > NEXT(S).price \
                 GROUP-BY company WITHIN 200 SLIDE 100";
    writeln!(
        w,
        "{{\"register\":{{\"session\":{session},\"query\":{},\"emission\":\"ordered\"}}}}",
        json::str_lit(dense)
    )
    .unwrap();
    r.read_line(&mut line).unwrap();
    assert!(
        line.contains(&format!(
            "\"submitted\":{{\"session\":{session},\"query\":1}}"
        )),
        "bad register reply: {line}"
    );

    writeln!(w, "{{\"detach\":{{\"session\":{session},\"query\":1}}}}").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("\"detached\""), "bad detach reply: {line}");
    assert!(
        line.contains("\"rows\":["),
        "detach reply lacks rows: {line}"
    );

    // The primary query refuses to detach — drain the session instead.
    writeln!(w, "{{\"detach\":{{\"session\":{session},\"query\":0}}}}").unwrap();
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(
        line.contains("error") && line.contains("primary"),
        "detaching query 0 must fail: {line}"
    );

    client.drain(session).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn drain_is_idempotent_and_refuses_post_drain_ingest() {
    let (reg, events) = stock(2_000);
    let server = GretaServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client.submit(Q1, &reg, SessionOptions::default()).unwrap();
    client.ingest(session, events.clone()).unwrap();
    client.drain(session).unwrap();
    client.drain(session).unwrap(); // second drain: still DrainOk
    let err = client.ingest(session, events).unwrap_err();
    assert!(err.to_string().contains("drained"), "{err}");
    // A late subscriber gets an immediate, clean end-of-stream.
    let sub = Client::connect(addr).unwrap().subscribe(session).unwrap();
    assert!(sub.collect_rows().unwrap().is_empty());
    server.shutdown().unwrap();
}
