//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this crate implements
//! the API subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, range / tuple /
//! [`collection::vec`] / [`Just`] / [`any`] strategies, the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` / [`prop_assume!`]
//! macros, and [`ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs verbatim;
//! * **deterministic seeding** — the RNG seed derives from the test name,
//!   so every run explores the same cases (CI-stable);
//! * `prop_assume!` skips the case instead of resampling.

#![forbid(unsafe_code)]

use std::fmt;
use std::rc::Rc;

pub mod test_runner {
    //! Test-case runner plumbing: RNG and configuration.

    /// Deterministic RNG (xoshiro256++ seeded by splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG seeded from a 64-bit value.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// RNG seeded from a test name (stable across runs).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::from_seed(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }

        /// Uniform value in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runner configuration (field subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// A rejected case (treated like a failure message here).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self.boxed();
        BoxedStrategy(Rc::new(move |rng| f(inner.sample(rng))))
    }

    /// Type-erase the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// sub-structure and returns the composite strategy. `depth` bounds the
    /// recursion; the remaining parameters (desired size / expected branch
    /// size) are accepted for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let leaf = leaf.clone();
            // Two-thirds recursion bias: enough nesting to be interesting,
            // always depth-bounded by construction.
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.below(3) < 2 {
                    deeper.sample(rng)
                } else {
                    leaf.sample(rng)
                }
            }));
        }
        strat
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let raw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + raw as i128) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let raw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + raw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given (non-empty) alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical full-range strategy (backs [`any`]).
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full-range for integers).
pub fn any<T: Arbitrary + 'static>() -> impl Strategy<Value = T> + Clone + 'static {
    AnyStrategy::<T>(std::marker::PhantomData).boxed()
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`", left, right
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{} (`{:?}` != `{:?}`)", format!($($fmt)+), left, right
                    )));
                }
            }
        }
    };
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
}

/// Skip the current case unless `cond` holds (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests: each function runs `config.cases` times with
/// freshly sampled inputs; `prop_assert*` failures report the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, config.cases, err, inputs
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        let s = (0u8..4, 1u8..3);
        for _ in 0..200 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 4 && (1..3).contains(&b));
        }
        let v = prop::collection::vec(0u8..4, 2..5);
        for _ in 0..100 {
            let xs = v.sample(&mut rng);
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut rng = crate::test_runner::TestRng::deterministic("o");
        let s = prop_oneof![Just(1u32), Just(2), (5u32..7).prop_map(|x| x * 10)];
        for _ in 0..100 {
            let x = s.sample(&mut rng);
            assert!(matches!(x, 1 | 2 | 50 | 60), "{x}");
        }
    }

    #[test]
    fn recursive_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..4).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 12, 3, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::deterministic("r");
        for _ in 0..200 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_cases(x in 0u64..100, v in prop::collection::vec(0u8..10, 0..5)) {
            prop_assume!(x != 99);
            prop_assert!(x < 100, "x out of range: {}", x);
            prop_assert_eq!(v.len(), v.len());
            if x > 1000 {
                return Ok(());
            }
        }

        #[test]
        fn any_covers_wide_values(a in any::<u128>(), b in any::<u64>()) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
            let _ = b;
        }
    }
}
