//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate: the `channel` module subset this workspace uses — multi-producer
//! multi-consumer bounded and unbounded channels with blocking `send`/`recv`,
//! non-blocking `try_recv`, and iterator-style draining.
//!
//! Built on `Mutex` + `Condvar`; correct and dependency-free rather than
//! lock-free. Throughput is adequate for the event batches this workspace
//! routes (hundreds of events per send on the hot paths).

#![forbid(unsafe_code)]

/// MPMC channels (stand-in for `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be delivered: all receivers were dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders were dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Reasons a non-blocking send did not deliver.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// All receivers were dropped; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "channel full"),
                TrySendError::Disconnected(_) => write!(f, "channel disconnected"),
            }
        }
    }

    /// Reasons a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and all senders were dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    /// A bounded channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    /// An unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Deliver `msg`, blocking while the channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.capacity {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued (like `crossbeam`'s
        /// `Sender::len`; used for backpressure metrics).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// waiting when the channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = inner.capacity {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Take the next message, blocking while the channel is empty.
        /// Fails once the channel is empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued (like `crossbeam`'s
        /// `Receiver::len`; used for backpressure metrics).
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_one_producer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_applies_backpressure_and_drains() {
        let (tx, rx) = channel::bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        producer.join().unwrap();
        assert_eq!(sum, 1000 * 999 / 2);
    }

    #[test]
    fn disconnect_is_observable_on_both_ends() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert!(matches!(rx.try_recv(), Err(channel::TryRecvError::Empty)));
        drop(tx);
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn multiple_producers_and_consumers() {
        let (tx, rx) = channel::bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
