//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no registry access, so this crate provides the
//! API subset the workspace's benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the two macros) with
//! a plain wall-clock measurement loop: per sample, the closure is run in a
//! calibrated batch and the per-iteration mean is reported; the printed
//! summary shows the median / min / max across samples.
//!
//! Besides the API subset, the stand-in understands the criterion CLI
//! conventions CI relies on:
//!
//! * positional arguments are substring **filters** — only benchmarks whose
//!   label contains one of them run (`cargo bench --bench x -- group_a`);
//! * `--quick` (or env `GRETA_BENCH_QUICK=1`) caps samples and shrinks the
//!   per-bench time budget, so "do the benches still run" CI steps stop
//!   scaling with the number of bench groups;
//! * `--sample-size N` overrides the per-bench sample count;
//! * env `GRETA_BENCH_JSON=path` appends one JSON line per benchmark
//!   (`{"id":…,"median_ns":…,"min_ns":…,"max_ns":…,"samples":…}`) — the
//!   `bench_gate` regression gate consumes this.
//!
//! No statistical analysis, no HTML reports — but the same source compiles
//! against real criterion unchanged if the dependency is ever swapped back.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (calibration + samples).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(120);

/// Target wall time per benchmark under `--quick`.
const QUICK_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// Sample cap under `--quick`.
const QUICK_SAMPLES: usize = 5;

/// Benchmark driver. Created by [`criterion_group!`]'s generated code.
pub struct Criterion {
    default_sample_size: usize,
    /// Substring filters from the CLI; empty = run everything.
    filters: Vec<String>,
    /// Shrunken time budget + sample cap (CI smoke runs).
    quick: bool,
    /// `--sample-size` override, applied over group/default sizes.
    sample_size_override: Option<usize>,
    /// Append one JSON line per benchmark to this file.
    json_path: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut c = Criterion {
            default_sample_size: 10,
            filters: Vec::new(),
            quick: std::env::var("GRETA_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()),
            sample_size_override: None,
            json_path: std::env::var_os("GRETA_BENCH_JSON").map(Into::into),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => c.quick = true,
                "--sample-size" => {
                    c.sample_size_override = args.next().and_then(|v| v.parse().ok());
                }
                "--save-json" => c.json_path = args.next().map(Into::into),
                // Flags cargo/real-criterion pass that we can ignore.
                _ if a.starts_with('-') => {}
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, self.default_sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            criterion: self,
        }
    }

    fn matches(&self, label: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| label.contains(f))
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &label, self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(self.criterion, &label, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the hot loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration of each sample.
    samples_ns: Vec<f64>,
    sample_size: usize,
    sample_time: Duration,
}

impl Bencher {
    /// Measure `f`, running it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the per-sample budget?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = self.sample_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    label: &str,
    sample_size: usize,
    mut f: F,
) {
    if !criterion.matches(label) {
        return;
    }
    let explicit = criterion.sample_size_override;
    let sample_size = explicit.unwrap_or(sample_size);
    let (sample_size, sample_time) = if criterion.quick {
        // --quick shrinks the time budget; it only caps the sample count
        // when none was requested explicitly (`--sample-size` wins, so CI
        // can buy median stability without the full budget).
        let n = if explicit.is_some() {
            sample_size.max(2)
        } else {
            sample_size.clamp(2, QUICK_SAMPLES)
        };
        (n, QUICK_SAMPLE_TIME)
    } else {
        (sample_size.max(2), TARGET_SAMPLE_TIME)
    };
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_size,
        sample_time,
    };
    let t0 = Instant::now();
    f(&mut bencher);
    let wall = t0.elapsed();
    if bencher.samples_ns.is_empty() {
        println!("{label:<50} (no measurement)");
        return;
    }
    bencher
        .samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    let min = bencher.samples_ns.first().copied().unwrap_or(0.0);
    let max = bencher.samples_ns.last().copied().unwrap_or(0.0);
    println!(
        "{label:<50} time: [{} {} {}]   ({} samples, {:.2?} total)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        bencher.samples_ns.len(),
        wall,
    );
    if let Some(path) = &criterion.json_path {
        if let Err(e) = append_json_line(path, label, median, min, max, bencher.samples_ns.len()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// One machine-readable result line for the bench-gate tool.
fn append_json_line(
    path: &std::path::Path,
    label: &str,
    median: f64,
    min: f64,
    max: f64,
    samples: usize,
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"id\":\"{}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{samples}}}",
        label.replace('\\', "\\\\").replace('"', "\\\""),
    )
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declare a group of benchmark functions (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI filters / --quick / --sample-size are parsed by
            // `Criterion::default()` inside each group.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain() -> Criterion {
        // Bypass Default: unit tests must not pick up the harness argv.
        Criterion {
            default_sample_size: 10,
            filters: Vec::new(),
            quick: false,
            sample_size_override: None,
            json_path: None,
        }
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = plain();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = plain();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 42), &42u64, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn filters_skip_nonmatching_benches() {
        let mut c = plain();
        c.filters = vec!["wanted".into()];
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("wanted/one", |b| b.iter(|| 1));
            ran.push("probe"); // group API still usable after a skip
            g.bench_function("other/two", |b| {
                b.iter(|| 2);
            });
            g.finish();
        }
        // Only the matching label produced measurements: exercise via a
        // counter captured by the closures.
        let mut c = plain();
        c.filters = vec!["wanted".into()];
        let mut hits = 0u32;
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("wanted/one", |b| {
            hits += 1;
            b.iter(|| 1)
        });
        g.bench_function("other/two", |b| {
            hits += 100;
            b.iter(|| 2)
        });
        g.finish();
        assert_eq!(hits, 1, "only the filtered-in bench may run");
    }

    #[test]
    fn quick_mode_caps_samples() {
        let mut c = plain();
        c.quick = true;
        let mut g = c.benchmark_group("grp");
        g.sample_size(50);
        let mut iters = 0u64;
        g.bench_function("q", |b| b.iter(|| iters += 1));
        g.finish();
        assert!(iters > 0);
    }

    #[test]
    fn json_lines_are_appended() {
        let path = std::env::temp_dir().join(format!("greta-crit-json-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = plain();
        c.json_path = Some(path.clone());
        c.bench_function("jsontest/\"quoted\"", |b| b.iter(|| 1));
        c.bench_function("jsontest/b", |b| b.iter(|| 2));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":\"jsontest/\\\"quoted\\\"\""));
        assert!(lines[0].contains("\"median_ns\":"));
        assert!(lines[1].contains("\"samples\":"));
        let _ = std::fs::remove_file(&path);
    }
}
