//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no registry access, so this crate provides the
//! API subset the workspace's benches use (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the two macros) with
//! a plain wall-clock measurement loop: per sample, the closure is run in a
//! calibrated batch and the per-iteration mean is reported; the printed
//! summary shows the median / min / max across samples.
//!
//! No statistical analysis, no HTML reports — but the same source compiles
//! against real criterion unchanged if the dependency is ever swapped back.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (calibration + samples).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(120);

/// Benchmark driver. Created by [`criterion_group!`]'s generated code.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.default_sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the hot loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration of each sample.
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, running it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in the per-sample budget?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = TARGET_SAMPLE_TIME.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    let t0 = Instant::now();
    f(&mut bencher);
    let wall = t0.elapsed();
    if bencher.samples_ns.is_empty() {
        println!("{label:<50} (no measurement)");
        return;
    }
    bencher
        .samples_ns
        .sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = bencher.samples_ns[bencher.samples_ns.len() / 2];
    let min = bencher.samples_ns.first().copied().unwrap_or(0.0);
    let max = bencher.samples_ns.last().copied().unwrap_or(0.0);
    println!(
        "{label:<50} time: [{} {} {}]   ({} samples, {:.2?} total)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        bencher.samples_ns.len(),
        wall,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declare a group of benchmark functions (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); ignore them —
            // this stand-in always runs every benchmark.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 42), &42u64, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
