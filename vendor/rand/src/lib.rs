//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *API subset* it actually uses: a seedable deterministic generator
//! ([`rngs::StdRng`]) and the [`Rng`] extension methods `gen`, `gen_bool`
//! and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — high quality for
//! workload synthesis, deterministic per seed, but **not** the same stream
//! as the real `rand::StdRng` (callers only rely on per-seed determinism,
//! never on specific values).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Uniform in `[0, 1)` from 53 random mantissa bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, per the xoshiro reference seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-1.5..=2.5);
            assert!((-1.5..=2.5).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
