//! Network load-test client: replay `greta-workloads` generators over
//! the binary wire protocol with N concurrent connections and report
//! achieved events/sec.
//!
//! ```text
//! load_client [--addr HOST:PORT | --spawn] [--workload stock|linear-road]
//!             [--events N] [--connections N] [--batch N] [--shards N]
//!             [--slack N] [--emission ordered|unordered] [--subscribe]
//! ```
//!
//! With `--spawn` the tool starts an in-process [`GretaServer`] on a
//! loopback port, so a single command exercises the full network stack.
//! Each connection attaches to one shared session and pushes its slice
//! of the stream in batches, honouring the backpressure contract: when
//! an ack carries `busy`, the connection pauses before its next batch.

use greta_server::{Client, GretaServer, SessionOptions};
use greta_types::{Event, SchemaRegistry};
use greta_workloads::{LinearRoadConfig, LinearRoadGen, StockConfig, StockGen};
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, PartialEq)]
struct Args {
    addr: Option<String>,
    spawn: bool,
    workload: Workload,
    events: usize,
    connections: usize,
    batch: usize,
    shards: u32,
    slack: u64,
    ordered: bool,
    subscribe: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Stock,
    LinearRoad,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            spawn: false,
            workload: Workload::Stock,
            events: 100_000,
            connections: 4,
            batch: 512,
            shards: 4,
            slack: 4096,
            ordered: true,
            subscribe: false,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--spawn" => args.spawn = true,
            "--workload" => {
                args.workload = match value("--workload")?.as_str() {
                    "stock" => Workload::Stock,
                    "linear-road" => Workload::LinearRoad,
                    w => return Err(format!("unknown workload `{w}`")),
                }
            }
            "--events" => args.events = value("--events")?.parse().map_err(|e| format!("{e}"))?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--batch" => args.batch = value("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--slack" => args.slack = value("--slack")?.parse().map_err(|e| format!("{e}"))?,
            "--emission" => {
                args.ordered = match value("--emission")?.as_str() {
                    "ordered" => true,
                    "unordered" => false,
                    e => return Err(format!("unknown emission `{e}`")),
                }
            }
            "--subscribe" => args.subscribe = true,
            "--help" | "-h" => return Err("help".into()),
            f => return Err(format!("unknown flag `{f}`")),
        }
    }
    if args.addr.is_none() && !args.spawn {
        return Err("need --addr HOST:PORT or --spawn".into());
    }
    if args.connections == 0 || args.batch == 0 || args.events == 0 {
        return Err("--events, --connections, and --batch must be positive".into());
    }
    Ok(args)
}

fn generate(
    workload: Workload,
    events: usize,
) -> Result<(SchemaRegistry, Vec<Event>, &'static str), String> {
    let mut reg = SchemaRegistry::new();
    match workload {
        Workload::Stock => {
            let gen = StockGen::new(
                StockConfig {
                    events,
                    ..Default::default()
                },
                &mut reg,
            )
            .map_err(|e| format!("stock generator: {e}"))?;
            Ok((
                reg,
                gen.generate(),
                "RETURN sector, COUNT(*) PATTERN Stock S+ \
                 WHERE [company, sector] AND S.price > NEXT(S).price \
                 GROUP-BY sector WITHIN 500 SLIDE 250",
            ))
        }
        Workload::LinearRoad => {
            let gen = LinearRoadGen::new(
                LinearRoadConfig {
                    events,
                    ..Default::default()
                },
                &mut reg,
            )
            .map_err(|e| format!("linear road generator: {e}"))?;
            Ok((
                reg,
                gen.generate(),
                "RETURN segment, COUNT(*), AVG(P.speed) \
                 PATTERN Position P+ \
                 WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed \
                 GROUP-BY segment WITHIN 1000 SLIDE 1000",
            ))
        }
    }
}

struct ConnReport {
    sent: u64,
    busy_acks: u64,
}

fn run(args: &Args) -> Result<(), String> {
    let server = if args.spawn {
        Some(GretaServer::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?)
    } else {
        None
    };
    let addr = match (&server, &args.addr) {
        (Some(s), _) => s.local_addr().to_string(),
        (None, Some(a)) => a.clone(),
        // parse_args rejects this combination; keep the arm typed so a
        // future refactor of the validation cannot introduce a panic.
        (None, None) => return Err("need --addr HOST:PORT or --spawn".into()),
    };

    let (reg, events, query) = generate(args.workload, args.events)?;
    eprintln!(
        "workload {:?}: {} events, {} connections to {addr}",
        args.workload,
        events.len(),
        args.connections
    );

    let options = SessionOptions {
        shards: args.shards,
        slack: args.slack,
        emission: if args.ordered {
            greta_core::EmissionMode::WindowOrdered
        } else {
            greta_core::EmissionMode::Unordered
        },
        ..SessionOptions::default()
    };
    let mut control = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let session = control
        .submit(query, &reg, options)
        .map_err(|e| format!("submit: {e}"))?;

    // Row-draining subscriber, so result channels never become the
    // bottleneck we are not measuring.
    let sub_handle = if args.subscribe {
        let sub = Client::connect(&addr)
            .map_err(|e| format!("connect: {e}"))?
            .subscribe(session)
            .map_err(|e| format!("subscribe: {e}"))?;
        Some(std::thread::spawn(move || {
            sub.collect_rows().map(|rows| rows.len()).unwrap_or(0)
        }))
    } else {
        None
    };

    // Interleave the stream round-robin across connections in batch-sized
    // chunks; with reorder slack the executor restores time order.
    let chunks: Vec<Vec<Event>> = events.chunks(args.batch).map(|c| c.to_vec()).collect();
    let started = Instant::now();
    let mut workers = Vec::new();
    for conn in 0..args.connections {
        let my_chunks: Vec<Vec<Event>> = chunks
            .iter()
            .skip(conn)
            .step_by(args.connections)
            .cloned()
            .collect();
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || -> Result<ConnReport, String> {
            let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
            client.attach(session).map_err(|e| format!("attach: {e}"))?;
            let mut report = ConnReport {
                sent: 0,
                busy_acks: 0,
            };
            for chunk in my_chunks {
                let n = chunk.len() as u64;
                let ack = client
                    .ingest(session, chunk)
                    .map_err(|e| format!("ingest: {e}"))?;
                report.sent += n;
                if ack.busy {
                    report.busy_acks += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Ok(report)
        }));
    }

    let mut sent = 0u64;
    let mut busy_acks = 0u64;
    for w in workers {
        let report = w.join().map_err(|_| "worker panicked".to_string())??;
        sent += report.sent;
        busy_acks += report.busy_acks;
    }
    let ingest_secs = started.elapsed().as_secs_f64();

    control.drain(session).map_err(|e| format!("drain: {e}"))?;
    let rows = match sub_handle {
        Some(h) => h.join().map_err(|_| "subscriber panicked".to_string())?,
        None => 0,
    };
    let total_secs = started.elapsed().as_secs_f64();

    let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
    let late = prom_value(&stats, "greta_events_late_dropped_total").unwrap_or(0.0);

    println!(
        "sent {sent} events over {} connections in {ingest_secs:.3}s = {:.0} events/sec",
        args.connections,
        sent as f64 / ingest_secs.max(1e-9)
    );
    println!(
        "busy acks: {busy_acks}; late dropped: {late}; rows received: {rows}; \
         total (incl. drain): {total_secs:.3}s"
    );
    if let Some(s) = server {
        s.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    }
    Ok(())
}

/// Extract the (summed) value of a Prometheus series by metric name.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    let mut sum = None;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (metric, value) = line.rsplit_once(' ')?;
        let metric_name = metric.split('{').next().unwrap_or(metric);
        if metric_name == name {
            if let Ok(v) = value.parse::<f64>() {
                *sum.get_or_insert(0.0) += v;
            }
        }
    }
    sum
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) if e == "help" => {
            eprintln!(
                "usage: load_client [--addr HOST:PORT | --spawn] \
                 [--workload stock|linear-road] [--events N] [--connections N] \
                 [--batch N] [--shards N] [--slack N] \
                 [--emission ordered|unordered] [--subscribe]"
            );
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, String> {
        parse_args(&s.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_full_flag_set() {
        let args = parse(&[
            "--addr",
            "127.0.0.1:9999",
            "--workload",
            "linear-road",
            "--events",
            "5000",
            "--connections",
            "8",
            "--batch",
            "128",
            "--shards",
            "2",
            "--slack",
            "64",
            "--emission",
            "unordered",
            "--subscribe",
        ])
        .unwrap();
        assert_eq!(args.addr.as_deref(), Some("127.0.0.1:9999"));
        assert_eq!(args.workload, Workload::LinearRoad);
        assert_eq!(args.events, 5000);
        assert_eq!(args.connections, 8);
        assert_eq!(args.batch, 128);
        assert_eq!(args.shards, 2);
        assert_eq!(args.slack, 64);
        assert!(!args.ordered);
        assert!(args.subscribe);
    }

    #[test]
    fn requires_a_target() {
        assert!(parse(&["--events", "10"]).is_err());
        assert!(parse(&["--spawn"]).is_ok());
    }

    #[test]
    fn rejects_unknown_flags_and_zero_counts() {
        assert!(parse(&["--spawn", "--bogus"]).is_err());
        assert!(parse(&["--spawn", "--connections", "0"]).is_err());
    }

    #[test]
    fn prom_value_sums_labelled_series() {
        let text = "# HELP x y\nfoo{a=\"1\"} 2\nfoo{a=\"2\"} 3\nbar 7\n";
        assert_eq!(prom_value(text, "foo"), Some(5.0));
        assert_eq!(prom_value(text, "bar"), Some(7.0));
        assert_eq!(prom_value(text, "baz"), None);
    }
}
