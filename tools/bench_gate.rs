//! CI bench-regression gate (ISSUE 4 satellite).
//!
//! Compares fresh quick-mode bench medians (JSONL emitted by the vendored
//! criterion via `GRETA_BENCH_JSON`) against the committed baselines in
//! `BENCH_executor.json`, and fails (exit 1) when any matched benchmark is
//! more than `--max-regression-pct` slower in ns/event. Usage:
//!
//! ```text
//! GRETA_BENCH_JSON=fresh.jsonl cargo bench -p greta-bench \
//!     --bench executor_throughput -- --quick executor_throughput broadcast_heavy
//! cargo run --release -p greta-bench --bin bench_gate -- \
//!     --baseline BENCH_executor.json --fresh fresh.jsonl --out gate_report.json
//! ```
//!
//! `--inject-slowdown-pct N` inflates every fresh measurement by N% — CI's
//! red-path self-test ("the gate must go red on an injected 15% slowdown")
//! without having to pessimize real code.
//!
//! Only benchmark ids present in **both** files are compared (the baseline
//! also carries the per-iteration event count used to turn a median into
//! ns/event); zero matches is itself an error, so a renamed bench cannot
//! silently disarm the gate.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

// ---------------------------------------------------------------------
// Minimal JSON value parser (the workspace is offline: no serde).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.s.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != want {
            return Err(format!(
                "expected '{}' at offset {}, found '{}'",
                want as char, self.i, got as char
            ));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        let rest = self.s.get(self.i..).unwrap_or_default();
        if rest.starts_with(text.as_bytes()) {
            self.i += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.s.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        self.s
            .get(start..self.i)
            .and_then(|digits| std::str::from_utf8(digits).ok())
            .and_then(|t| t.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(c) => {
                            // \uXXXX and friends: keep the raw escape —
                            // bench ids never need it.
                            out.push('\\');
                            out.push(c as char);
                        }
                        None => return Err("unterminated escape".into()),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let tail = self.s.get(self.i..).unwrap_or_default();
                    let rest =
                        std::str::from_utf8(tail).map_err(|e| format!("invalid UTF-8: {e}"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| format!("unexpected end of string at offset {}", self.i))?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                c => return Err(format!("expected ',' or ']' , found '{}'", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Gate logic
// ---------------------------------------------------------------------

/// One committed baseline: per-iteration event count + ns/event median.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Baseline {
    events: f64,
    ns_per_event: f64,
}

/// Parse `BENCH_executor.json`: `benches[].id`, `events`, and the newest
/// recorded median (`current.ns_per_event`, falling back to
/// `post_eventref.ns_per_event`).
fn parse_baselines(text: &str) -> Result<BTreeMap<String, Baseline>, String> {
    let root = Parser::parse(text)?;
    let benches = root
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("baseline file has no \"benches\" array")?;
    let mut out = BTreeMap::new();
    for b in benches {
        let id = b
            .get("id")
            .and_then(Json::as_str)
            .ok_or("bench entry without id")?;
        let events = b
            .get("events")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{id}: no events count"))?;
        let ns = b
            .get("current")
            .or_else(|| b.get("post_eventref"))
            .and_then(|m| m.get("ns_per_event"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{id}: no current/post_eventref ns_per_event"))?;
        out.insert(
            id.to_string(),
            Baseline {
                events,
                ns_per_event: ns,
            },
        );
    }
    Ok(out)
}

/// One fresh measurement: median and min ns per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fresh {
    median_ns: f64,
    min_ns: f64,
}

/// Parse criterion's JSONL (`{"id":…,"median_ns":…,"min_ns":…}` per line)
/// into id → measurement. Later lines win (re-runs supersede).
fn parse_fresh(text: &str) -> Result<BTreeMap<String, Fresh>, String> {
    let mut out = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Parser::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: no id", ln + 1))?;
        let median_ns = v
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: no median_ns", ln + 1))?;
        let min_ns = v.get("min_ns").and_then(Json::as_f64).unwrap_or(median_ns);
        out.insert(id.to_string(), Fresh { median_ns, min_ns });
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
struct Verdict {
    id: String,
    base_ns_per_event: f64,
    fresh_ns_per_event: f64,
    delta_pct: f64,
    /// Delta computed from the fastest sample instead of the median.
    min_delta_pct: f64,
    regressed: bool,
}

/// Compare fresh medians against baselines; `inject_pct` inflates fresh
/// values (red-path self-test), `max_regression_pct` is the gate.
///
/// A benchmark only counts as regressed when **both** the median and the
/// minimum sample are past the threshold: scheduler noise inflates medians
/// on loaded CI runners but can only ever slow samples down, so a clean
/// minimum with a spiked median is noise, while a real slowdown moves the
/// whole distribution including the floor.
fn compare(
    baselines: &BTreeMap<String, Baseline>,
    fresh: &BTreeMap<String, Fresh>,
    inject_pct: f64,
    max_regression_pct: f64,
) -> Vec<Verdict> {
    let mut out = Vec::new();
    let inflate = 1.0 + inject_pct / 100.0;
    for (id, base) in baselines {
        let Some(f) = fresh.get(id) else {
            continue;
        };
        let per_event = |ns: f64| ns / base.events.max(1.0) * inflate;
        let delta = |ns: f64| (per_event(ns) - base.ns_per_event) / base.ns_per_event * 100.0;
        let delta_pct = delta(f.median_ns);
        let min_delta_pct = delta(f.min_ns);
        // Epsilon so "exactly the threshold" reliably trips despite
        // floating-point representation (1.15 is not representable).
        let past = |d: f64| d > max_regression_pct - 1e-6;
        out.push(Verdict {
            id: id.clone(),
            base_ns_per_event: base.ns_per_event,
            fresh_ns_per_event: per_event(f.median_ns),
            delta_pct,
            min_delta_pct,
            regressed: past(delta_pct) && past(min_delta_pct),
        });
    }
    out
}

fn render_report(verdicts: &[Verdict], max_regression_pct: f64, inject_pct: f64) -> String {
    let mut out = String::from("{\n  \"gate\": \"bench_gate\",\n");
    let _ = writeln!(out, "  \"max_regression_pct\": {max_regression_pct},");
    let _ = writeln!(out, "  \"injected_slowdown_pct\": {inject_pct},");
    let _ = writeln!(
        out,
        "  \"regressed\": {},",
        verdicts.iter().any(|v| v.regressed)
    );
    out.push_str("  \"benches\": [\n");
    for (i, v) in verdicts.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"baseline_ns_per_event\": {:.1}, \
             \"fresh_ns_per_event\": {:.1}, \"delta_pct\": {:.1}, \
             \"min_delta_pct\": {:.1}, \"regressed\": {}}}",
            v.id,
            v.base_ns_per_event,
            v.fresh_ns_per_event,
            v.delta_pct,
            v.min_delta_pct,
            v.regressed
        );
        out.push_str(if i + 1 < verdicts.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<bool, String> {
    let mut baseline_path = String::from("BENCH_executor.json");
    let mut fresh_paths: Vec<String> = Vec::new();
    let mut fresh_from_baseline = false;
    let mut out_path: Option<String> = None;
    let mut max_regression_pct = 15.0f64;
    let mut inject_pct = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--baseline" => baseline_path = take("--baseline")?,
            "--fresh" => fresh_paths.push(take("--fresh")?),
            // Hermetic self-test: synthesize fresh medians from the
            // baseline itself, so (with --inject-slowdown-pct) the red
            // path can be exercised independent of machine speed.
            "--fresh-from-baseline" => fresh_from_baseline = true,
            "--out" => out_path = Some(take("--out")?),
            "--max-regression-pct" => {
                max_regression_pct = take("--max-regression-pct")?
                    .parse()
                    .map_err(|e| format!("bad --max-regression-pct: {e}"))?
            }
            "--inject-slowdown-pct" => {
                inject_pct = take("--inject-slowdown-pct")?
                    .parse()
                    .map_err(|e| format!("bad --inject-slowdown-pct: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if fresh_paths.is_empty() && !fresh_from_baseline {
        return Err("no --fresh file given (or --fresh-from-baseline)".into());
    }

    let baseline_text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baselines = parse_baselines(&baseline_text)?;
    let mut fresh = BTreeMap::new();
    if fresh_from_baseline {
        for (id, b) in &baselines {
            let ns = b.ns_per_event * b.events;
            fresh.insert(
                id.clone(),
                Fresh {
                    median_ns: ns,
                    min_ns: ns,
                },
            );
        }
    }
    for p in &fresh_paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        fresh.extend(parse_fresh(&text)?);
    }

    let verdicts = compare(&baselines, &fresh, inject_pct, max_regression_pct);
    if verdicts.is_empty() {
        return Err(format!(
            "no benchmark id matched between {baseline_path} and {fresh_paths:?} — \
             the gate would be vacuous",
        ));
    }
    println!(
        "{:<45} {:>12} {:>12} {:>8} {:>9}",
        "benchmark", "base ns/ev", "fresh ns/ev", "delta", "min-delta"
    );
    for v in &verdicts {
        println!(
            "{:<45} {:>12.1} {:>12.1} {:>+7.1}% {:>+8.1}%{}",
            v.id,
            v.base_ns_per_event,
            v.fresh_ns_per_event,
            v.delta_pct,
            v.min_delta_pct,
            if v.regressed { "  ← REGRESSION" } else { "" }
        );
    }
    if let Some(p) = out_path {
        std::fs::write(&p, render_report(&verdicts, max_regression_pct, inject_pct))
            .map_err(|e| format!("write {p}: {e}"))?;
        println!("report written to {p}");
    }
    let regressed = verdicts.iter().any(|v| v.regressed);
    if regressed {
        eprintln!(
            "bench gate FAILED: at least one benchmark is >{max_regression_pct}% \
             slower than the committed baseline"
        );
    } else {
        println!(
            "bench gate passed ({} benches within {max_regression_pct}% of baseline)",
            verdicts.len()
        );
    }
    Ok(!regressed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "benches": [
        {"id": "a/1", "events": 2000, "post_eventref": {"ns_per_event": 1000.0}},
        {"id": "a/2", "events": 2000,
         "post_eventref": {"ns_per_event": 900.0},
         "current": {"ns_per_event": 800.0}},
        {"id": "unmatched", "events": 10, "current": {"ns_per_event": 5.0}}
      ]
    }"#;

    #[test]
    fn parses_baselines_preferring_current() {
        let b = parse_baselines(BASELINE).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b["a/1"].ns_per_event, 1000.0);
        assert_eq!(b["a/2"].ns_per_event, 800.0); // current wins
        assert_eq!(b["a/1"].events, 2000.0);
    }

    #[test]
    fn parses_fresh_jsonl_last_line_wins() {
        let fresh = parse_fresh(
            "{\"id\":\"a/1\",\"median_ns\":1.0,\"samples\":3}\n\
             \n\
             {\"id\":\"a/1\",\"median_ns\":2.0,\"min_ns\":1.5,\"samples\":3}\n",
        )
        .unwrap();
        assert_eq!(fresh["a/1"].median_ns, 2.0);
        assert_eq!(fresh["a/1"].min_ns, 1.5);
        // Without min_ns the median doubles as the floor.
        let nomin = parse_fresh("{\"id\":\"b\",\"median_ns\":3.0}\n").unwrap();
        assert_eq!(nomin["b"].min_ns, 3.0);
    }

    #[test]
    fn green_within_threshold_red_beyond() {
        let b = parse_baselines(BASELINE).unwrap();
        let at = |ns: f64| Fresh {
            median_ns: ns,
            min_ns: ns,
        };
        let mut fresh = BTreeMap::new();
        // a/1: 1000 ns/event baseline × 2000 events → 2.0 ms median is par.
        fresh.insert("a/1".to_string(), at(2_000_000.0 * 1.10)); // +10%: ok
        fresh.insert("a/2".to_string(), at(1_600_000.0 * 1.20)); // +20%: red
        let v = compare(&b, &fresh, 0.0, 15.0);
        assert_eq!(v.len(), 2, "unmatched baseline must be skipped");
        assert!(!v[0].regressed, "{v:?}");
        assert!(v[1].regressed, "{v:?}");
        assert!((v[0].delta_pct - 10.0).abs() < 0.5);
        assert!((v[1].delta_pct - 20.0).abs() < 0.5);
    }

    #[test]
    fn injected_slowdown_flips_the_gate_red() {
        let b = parse_baselines(BASELINE).unwrap();
        let mut fresh = BTreeMap::new();
        fresh.insert(
            "a/1".to_string(),
            Fresh {
                median_ns: 2_000_000.0,
                min_ns: 2_000_000.0,
            },
        ); // exactly at baseline
        let ok = compare(&b, &fresh, 0.0, 15.0);
        assert!(!ok[0].regressed);
        assert!(!compare(&b, &fresh, 14.9, 15.0)[0].regressed);
        // Exactly the threshold trips too (epsilon guards the CI
        // self-test `--fresh-from-baseline --inject-slowdown-pct 15`).
        assert!(compare(&b, &fresh, 15.0, 15.0)[0].regressed);
        let red = compare(&b, &fresh, 16.0, 15.0);
        assert!(red[0].regressed, "16% injected slowdown must trip the gate");
    }

    #[test]
    fn report_is_parseable_json() {
        let b = parse_baselines(BASELINE).unwrap();
        let mut fresh = BTreeMap::new();
        fresh.insert(
            "a/1".to_string(),
            Fresh {
                median_ns: 2_000_000.0,
                min_ns: 1_900_000.0,
            },
        );
        let v = compare(&b, &fresh, 0.0, 15.0);
        let report = render_report(&v, 15.0, 0.0);
        let parsed = Parser::parse(&report).unwrap();
        assert_eq!(parsed.get("regressed"), Some(&Json::Bool(false)));
        assert_eq!(
            parsed.get("benches").and_then(Json::as_arr).unwrap().len(),
            1
        );
    }

    #[test]
    fn json_parser_handles_nesting_escapes_and_garbage() {
        let v = Parser::parse(r#"{"a": [1, -2.5e3, "x\"y", null, true], "b": {}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).unwrap()[2],
            Json::Str("x\"y".into())
        );
        assert!(Parser::parse("{\"a\": }").is_err());
        assert!(Parser::parse("[1, 2").is_err());
        assert!(Parser::parse("{} trailing").is_err());
    }
}
