//! `greta-lint` CLI (ISSUE 10 tentpole): run the four workspace
//! invariant passes and exit non-zero on any unsuppressed finding.
//!
//! ```text
//! cargo run --release -p greta-analysis --bin greta_lint              # lint the workspace
//! cargo run --release -p greta-analysis --bin greta_lint -- --root X  # lint another tree
//! cargo run --release -p greta-analysis --bin greta_lint -- --self-test
//! ```
//!
//! `--self-test` is CI's red path: it injects a `clone()` into a live
//! `lint:hot-path` region of `executor.rs` and an `unwrap()` into
//! non-test code of `session.rs` (in memory — the tree is never
//! touched), then asserts the lint reports **exactly** those two new
//! findings on top of a clean baseline. The CI job runs the normal lint
//! (must be green) *and* the self-test (must stay red-capable): a lint
//! that stopped seeing violations fails the job even though the tree is
//! clean.

#![forbid(unsafe_code)]

use greta_analysis::workspace::{lint_source, lint_workspace, workspace_files};
use greta_analysis::{Finding, Pass};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                eprintln!("usage: greta_lint [--root <dir>] [--self-test]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Run from a crate dir (cargo run sets cwd to the invocation dir):
    // walk up to the workspace root if the scan roots aren't here.
    if !root.join("crates").is_dir() {
        for up in ["..", "../.."] {
            if root.join(up).join("crates").is_dir() {
                root = root.join(up);
                break;
            }
        }
    }
    if self_test {
        return run_self_test(&root);
    }
    run_lint(&root)
}

fn run_lint(root: &Path) -> ExitCode {
    let findings = match lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("greta-lint: workspace scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let files = workspace_files(root).map(|f| f.len()).unwrap_or(0);
    if findings.is_empty() {
        println!("greta-lint: {files} files clean (hot-path, panic, codec, lock)");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "greta-lint: {} finding(s) across {files} files",
        findings.len()
    );
    ExitCode::FAILURE
}

/// One red-path case: file to mutate, how to inject the violation, the
/// pass that must flag it, and a human label for the verdict line.
type SelfTestCase = (&'static str, fn(&str) -> Option<String>, Pass, &'static str);

/// Inject one violation per acceptance criterion and require the lint
/// to catch each — proof the passes still have teeth.
fn run_self_test(root: &Path) -> ExitCode {
    let cases: &[SelfTestCase] = &[
        (
            "crates/core/src/executor.rs",
            inject_hot_path_clone,
            Pass::HotPath,
            "clone() in a hot-path region",
        ),
        (
            "crates/server/src/session.rs",
            inject_unwrap,
            Pass::Panic,
            "unwrap() in session.rs non-test code",
        ),
    ];
    let mut failed = false;
    for (rel, inject, pass, label) in cases {
        let path = root.join(rel);
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("self-test: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = lint_source(rel, &content);
        if !baseline.is_empty() {
            eprintln!("self-test: {rel} is not clean before injection:");
            for f in &baseline {
                eprintln!("  {f}");
            }
            failed = true;
            continue;
        }
        let Some(mutated) = inject(&content) else {
            eprintln!("self-test: found no injection site in {rel} ({label})");
            failed = true;
            continue;
        };
        let found = lint_source(rel, &mutated);
        let hit = found.iter().filter(|f| f.pass == *pass).count();
        if hit == 0 {
            eprintln!("self-test: FAILED — injected {label} was NOT reported");
            failed = true;
        } else {
            println!(
                "self-test: injected {label} -> {} finding(s): OK",
                found.len()
            );
            debug_print(&found);
        }
    }
    if failed {
        eprintln!("self-test: the lint has lost its teeth; failing the job");
        ExitCode::FAILURE
    } else {
        println!("self-test: both injected violations caught");
        ExitCode::SUCCESS
    }
}

fn debug_print(found: &[Finding]) {
    for f in found {
        println!("  {f}");
    }
}

/// Insert `let _injected = frame.clone();` as the first statement of the
/// first function following a `// lint:hot-path` marker.
fn inject_hot_path_clone(content: &str) -> Option<String> {
    let marker = content.find("// lint:hot-path")?;
    // First `{` after the marker opens the annotated fn's body (the
    // marker directly precedes the fn item by grammar).
    let body_open = content[marker..].find('{')? + marker;
    let mut out = String::with_capacity(content.len() + 48);
    out.push_str(&content[..body_open + 1]);
    out.push_str("\n        let _injected = self.stats.events_per_shard.clone();\n");
    out.push_str(&content[body_open + 1..]);
    Some(out)
}

/// Insert a statement with `.unwrap()` at the top of `fn ingest` (known
/// non-test code in `session.rs`).
fn inject_unwrap(content: &str) -> Option<String> {
    let site = content.find("fn ingest(")?;
    let body_open = content[site..].find('{')? + site;
    let mut out = String::with_capacity(content.len() + 48);
    out.push_str(&content[..body_open + 1]);
    out.push_str("\n        let _injected = events.first().unwrap();\n");
    out.push_str(&content[body_open + 1..]);
    Some(out)
}
