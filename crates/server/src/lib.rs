//! GRETA network front-end: serve the [`greta_core::StreamExecutor`]
//! over TCP.
//!
//! One [`GretaServer`] listens on a single port and speaks three
//! protocols, sniffed from each connection's first bytes:
//!
//! - **Binary** (preamble `b"GRTA"` + version): length-prefixed frames
//!   over [`greta_types::codec`] — submit a query, ingest events with
//!   explicit backpressure acks (WAL-durable watermark + `busy` credit
//!   signal), subscribe to streaming results (window-ordered by
//!   default), drain, shut down. See [`protocol`].
//! - **JSON lines** (first byte `{`): the same operations as
//!   newline-delimited JSON objects, events encoded exactly as
//!   `greta_workloads::io::json` does.
//! - **HTTP** (`GET /metrics`, `GET /healthz`): every
//!   [`greta_core::ExecutorStats`] counter in Prometheus text format.
//!
//! Threading model: no async runtime — one thread per connection, one
//! executor-owning thread per session, `std::net` throughout (the
//! workspace is offline and vendored-deps-only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod http;
mod jsonl;
mod metrics;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, ClientError, Subscription};
pub use protocol::{IngestAck, ProtoError, Request, Response, SessionOptions};
pub use server::GretaServer;
