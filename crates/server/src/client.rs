//! Blocking binary-protocol client: the counterpart of the server's
//! connection loop, used by the integration tests, the load-test
//! binary, and any embedding that wants to talk to a remote executor.

use crate::protocol::{self, IngestAck, ProtoError, Request, Response, SessionOptions};
use greta_core::{EmissionMode, WindowResult};
use greta_types::{Event, SchemaRegistry};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures: transport/protocol errors or an `Error` frame
/// from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Wire-level failure.
    Proto(ProtoError),
    /// The server answered with an `Error` frame.
    Server(String),
    /// The server answered with a frame the request does not expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Proto(ProtoError::from(e))
    }
}

/// One binary-protocol connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and send the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        protocol::write_preamble(&mut stream).map_err(ProtoError::from)?;
        Ok(Client { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        protocol::write_request(&mut self.stream, req)?;
        let resp = protocol::read_response(&mut self.stream)?;
        if let Response::Error { msg } = resp {
            return Err(ClientError::Server(msg));
        }
        Ok(resp)
    }

    /// Submit a query; returns the new session id (its primary query has
    /// id `0`).
    pub fn submit(
        &mut self,
        query: &str,
        registry: &SchemaRegistry,
        options: SessionOptions,
    ) -> Result<u64, ClientError> {
        match self.call(&Request::Submit {
            query: query.to_string(),
            registry: registry.clone(),
            options,
            attach_to: None,
        })? {
            Response::SubmitOk { session, .. } => Ok(session),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Register an additional query on an existing session's shared
    /// ingest stream (compiled server-side against the session's
    /// registry); returns the assigned query id for `subscribe_query` /
    /// `detach`.
    pub fn register(
        &mut self,
        session: u64,
        query: &str,
        emission: EmissionMode,
    ) -> Result<u32, ClientError> {
        match self.call(&Request::Submit {
            query: query.to_string(),
            registry: SchemaRegistry::new(),
            options: SessionOptions {
                emission,
                ..SessionOptions::default()
            },
            attach_to: Some(session),
        })? {
            Response::SubmitOk { query, .. } => Ok(query),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Deregister a query from a session mid-stream; returns its
    /// undelivered remainder (rows its subscribers had not received —
    /// disjoint from, and completing, the subscribed stream).
    pub fn detach(
        &mut self,
        session: u64,
        query: u32,
    ) -> Result<Vec<WindowResult<f64>>, ClientError> {
        match self.call(&Request::Detach { session, query })? {
            Response::DetachOk { rows, .. } => Ok(rows),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Bind this connection to an existing session.
    pub fn attach(&mut self, session: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Attach { session })? {
            Response::SubmitOk { session, .. } => Ok(session),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Push one batch of events; the ack carries the backpressure
    /// signal — callers should pause when [`IngestAck::busy`] is set.
    ///
    /// A batch that would encode past the protocol's frame cap is split
    /// in half and sent as multiple frames (nothing reaches the socket
    /// before the size check, so the split is safe); the returned ack is
    /// the last sub-batch's, whose counters cover the whole batch.
    pub fn ingest(&mut self, session: u64, events: Vec<Event>) -> Result<IngestAck, ClientError> {
        let req = Request::Ingest { session, events };
        let res = self.call(&req);
        // Take the batch back out of `req` (constructed as `Ingest` just
        // above) so the frame-split path below can halve it without a
        // clone; the fallback arm exists only to keep this panic-free.
        let Request::Ingest { events, .. } = req else {
            return Err(ClientError::Unexpected(
                "ingest request changed shape mid-call".into(),
            ));
        };
        match res {
            Ok(Response::Ack(a)) => Ok(a),
            Ok(other) => Err(ClientError::Unexpected(format!("{other:?}"))),
            Err(ClientError::Proto(ProtoError::FrameTooLarge(n))) => {
                if events.len() <= 1 {
                    // A single event that cannot fit in a frame.
                    return Err(ClientError::Proto(ProtoError::FrameTooLarge(n)));
                }
                let mut right = events;
                let left: Vec<Event> = right.drain(..right.len() / 2).collect();
                self.ingest(session, left)?;
                self.ingest(session, right)
            }
            Err(e) => Err(e),
        }
    }

    /// Gracefully drain a session (terminal checkpoint, subscriptions
    /// ended).
    pub fn drain(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Drain { session })? {
            Response::DrainOk { .. } => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drain every session and stop the server accepting new work.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the Prometheus metrics text over the binary protocol.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsText { text } => Ok(text),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Turn this connection into a result subscription on the session's
    /// primary query. Rows stream in wire order (canonical
    /// `(window, group)` order under the default `WindowOrdered`
    /// emission) until the session drains.
    pub fn subscribe(self, session: u64) -> Result<Subscription, ClientError> {
        self.subscribe_query(session, 0)
    }

    /// Turn this connection into a result subscription on one query of a
    /// multi-query session (`0` = primary; registered queries use the id
    /// from [`register`](Self::register)). The stream ends when the
    /// query detaches or the session drains.
    pub fn subscribe_query(
        mut self,
        session: u64,
        query: u32,
    ) -> Result<Subscription, ClientError> {
        protocol::write_request(&mut self.stream, &Request::Subscribe { session, query })?;
        Ok(Subscription {
            stream: self.stream,
            done: false,
        })
    }
}

/// A streaming result subscription (see [`Client::subscribe`]).
pub struct Subscription {
    stream: TcpStream,
    done: bool,
}

impl Subscription {
    /// Receive the next batch of rows; `Ok(None)` once the session has
    /// drained and the stream ended.
    pub fn next_rows(&mut self) -> Result<Option<Vec<WindowResult<f64>>>, ClientError> {
        if self.done {
            return Ok(None);
        }
        match protocol::read_response(&mut self.stream)? {
            Response::Rows { rows, .. } => Ok(Some(rows)),
            Response::End { .. } => {
                self.done = true;
                Ok(None)
            }
            Response::Error { msg } => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Collect every remaining row until the stream ends.
    pub fn collect_rows(mut self) -> Result<Vec<WindowResult<f64>>, ClientError> {
        let mut all = Vec::new();
        while let Some(batch) = self.next_rows()? {
            all.extend(batch);
        }
        Ok(all)
    }
}
