//! Newline-delimited JSON mode: one request object per line in, one
//! response object per line out. Reuses `greta_workloads::io::json` for
//! event/schema/value encoding so a JSON client and a JSONL file replay
//! produce byte-identical events.
//!
//! Requests:
//! `{"submit":{"query":…,"schemas":[…],"options":{…}}}` ·
//! `{"register":{"session":N,"query":…,"emission":…}}` ·
//! `{"attach":{"session":N}}` · `{"ingest":{"session":N,"events":[…]}}` ·
//! `{"subscribe":{"session":N,"query":Q}}` (`query` optional, default
//! the primary query 0) · `{"detach":{"session":N,"query":Q}}` ·
//! `{"drain":{"session":N}}` · `{"stats":{}}` · `{"shutdown":{}}` ·
//! `{"ping":{}}`
//!
//! Responses: `{"submitted":{"session":N,"query":Q}}` · `{"ack":{…}}` ·
//! a stream of `{"rows":{…}}` then `{"end":{…}}` for subscriptions ·
//! `{"detached":{"session":N,"query":Q,"rows":[…]}}` ·
//! `{"drained":{…}}` · `{"stats":{"text":…}}` · `{"shutdown":"ok"}` ·
//! `{"pong":{}}` · `{"error":"…"}`.

use crate::protocol::{IngestAck, SessionOptions};
use crate::server::Shared;
use crate::session::SubMsg;
use greta_core::{EmissionMode, LatePolicy, OutValue, WindowResult};
use greta_types::{Event, Schema, SchemaRegistry, Value};
use greta_workloads::io::json::{self, Json};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Serve a JSON-line connection until it closes.
pub(crate) fn handle(stream: TcpStream, shared: &Arc<Shared>) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.frames.fetch_add(1, Ordering::Relaxed);
        let reply = match serve_line(&mut writer, shared, &line) {
            Ok(reply) => reply,
            Err(msg) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                format!("{{\"error\":{}}}", json::str_lit(&msg))
            }
        };
        if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Handle one request line; subscription row streaming writes directly
/// to `writer`, everything else returns the reply line.
fn serve_line(writer: &mut TcpStream, shared: &Arc<Shared>, line: &str) -> Result<String, String> {
    let req = json::parse(line)?;
    let obj = req.as_object().ok_or("request must be an object")?;
    let (verb, body) = obj.first().ok_or("empty request object")?;
    match verb.as_str() {
        "submit" => {
            let query = body
                .get("query")
                .and_then(Json::as_str)
                .ok_or("submit lacks `query`")?;
            let schemas = body
                .get("schemas")
                .and_then(Json::as_array)
                .ok_or("submit lacks `schemas`")?;
            let mut reg = SchemaRegistry::new();
            for s in schemas {
                let schema: Schema = json::schema_from_json(s)?;
                reg.register(schema).map_err(|e| e.to_string())?;
            }
            let options = match body.get("options") {
                None => SessionOptions::default(),
                Some(o) => options_from_json(o)?,
            };
            let (session, query) = shared.submit(query, reg, options, None)?;
            Ok(format!(
                "{{\"submitted\":{{\"session\":{session},\"query\":{query}}}}}"
            ))
        }
        "register" => {
            let session = session_of(body)?;
            let query = body
                .get("query")
                .and_then(Json::as_str)
                .ok_or("register lacks `query`")?;
            let mut options = SessionOptions::default();
            if let Some(e) = body.get("emission").and_then(Json::as_str) {
                options.emission = match e {
                    "unordered" => EmissionMode::Unordered,
                    "ordered" => EmissionMode::WindowOrdered,
                    e => return Err(format!("unknown emission `{e}`")),
                };
            }
            let (session, query) =
                shared.submit(query, SchemaRegistry::new(), options, Some(session))?;
            Ok(format!(
                "{{\"submitted\":{{\"session\":{session},\"query\":{query}}}}}"
            ))
        }
        "attach" => {
            let session = session_of(body)?;
            let session = shared.attach(session)?;
            Ok(format!(
                "{{\"submitted\":{{\"session\":{session},\"query\":0}}}}"
            ))
        }
        "ingest" => {
            let session = session_of(body)?;
            let events = body
                .get("events")
                .and_then(Json::as_array)
                .ok_or("ingest lacks `events`")?;
            let events: Vec<Event> = events
                .iter()
                .map(json::event_from_json)
                .collect::<Result<_, _>>()?;
            let ack = shared.ingest(session, events)?;
            Ok(encode_ack(&ack))
        }
        "subscribe" => {
            let session = session_of(body)?;
            let query = query_of(body)?;
            match shared.subscribe(session, query)? {
                None => Ok(format!(
                    "{{\"end\":{{\"session\":{session},\"query\":{query}}}}}"
                )),
                Some(rx) => {
                    while let Ok(SubMsg::Rows(rows)) = rx.recv() {
                        let line = encode_rows(session, query, &rows);
                        writeln!(writer, "{line}").map_err(|e| e.to_string())?;
                        writer.flush().map_err(|e| e.to_string())?;
                    }
                    Ok(format!(
                        "{{\"end\":{{\"session\":{session},\"query\":{query}}}}}"
                    ))
                }
            }
        }
        "detach" => {
            let session = session_of(body)?;
            let query = body
                .get("query")
                .and_then(Json::as_u64)
                .ok_or("detach lacks a numeric `query`")?;
            let query = u32::try_from(query).map_err(|_| "query id out of range")?;
            let rows = shared.detach(session, query)?;
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"detached\":{{\"session\":{session},\"query\":{query},\"rows\":"
            );
            push_rows_array(&mut out, &rows);
            out.push_str("}}");
            Ok(out)
        }
        "drain" => {
            let session = session_of(body)?;
            shared.drain_session(session)?;
            Ok(format!("{{\"drained\":{{\"session\":{session}}}}}"))
        }
        "stats" => Ok(format!(
            "{{\"stats\":{{\"text\":{}}}}}",
            json::str_lit(&shared.metrics_text())
        )),
        "shutdown" => {
            shared.drain_all()?;
            Ok("{\"shutdown\":\"ok\"}".to_string())
        }
        "ping" => Ok("{\"pong\":{}}".to_string()),
        v => Err(format!("unknown request `{v}`")),
    }
}

fn session_of(body: &Json) -> Result<u64, String> {
    body.get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| "request lacks a numeric `session`".to_string())
}

/// Optional `query` field, defaulting to the primary query 0.
fn query_of(body: &Json) -> Result<u32, String> {
    match body.get("query") {
        None => Ok(0),
        Some(q) => q
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| "`query` must be a query id".to_string()),
    }
}

fn options_from_json(o: &Json) -> Result<SessionOptions, String> {
    let mut opts = SessionOptions::default();
    if let Some(n) = o.get("shards").and_then(Json::as_u64) {
        opts.shards = u32::try_from(n).map_err(|_| "shards out of range")?;
    }
    if let Some(n) = o.get("slack").and_then(Json::as_u64) {
        opts.slack = n;
    }
    if let Some(p) = o.get("late_policy").and_then(Json::as_str) {
        opts.late_policy = match p {
            "drop" => LatePolicy::Drop,
            "divert" => LatePolicy::Divert,
            "error" => LatePolicy::Error,
            p => return Err(format!("unknown late_policy `{p}`")),
        };
    }
    if let Some(e) = o.get("emission").and_then(Json::as_str) {
        opts.emission = match e {
            "unordered" => EmissionMode::Unordered,
            "ordered" => EmissionMode::WindowOrdered,
            e => return Err(format!("unknown emission `{e}`")),
        };
    }
    if let Some(n) = o.get("batch_size").and_then(Json::as_u64) {
        opts.batch_size = u32::try_from(n).map_err(|_| "batch_size out of range")?;
    }
    if let Some(n) = o.get("channel_capacity").and_then(Json::as_u64) {
        opts.channel_capacity = u32::try_from(n).map_err(|_| "channel_capacity out of range")?;
    }
    if let Some(n) = o.get("result_capacity").and_then(Json::as_u64) {
        opts.result_capacity = u32::try_from(n).map_err(|_| "result_capacity out of range")?;
    }
    if let Some(d) = o.get("durability_dir").and_then(Json::as_str) {
        opts.durability_dir = Some(d.to_string());
    }
    if let Some(b) = o.get("recover").and_then(Json::as_bool) {
        opts.recover = b;
    }
    if let Some(n) = o.get("snapshot_every_windows").and_then(Json::as_u64) {
        opts.snapshot_every_windows = n;
    }
    Ok(opts)
}

fn encode_ack(a: &IngestAck) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"ack\":{{\"session\":{},\"pushed\":{}",
        a.session, a.pushed
    );
    match a.durable {
        Some(d) => {
            let _ = write!(out, ",\"durable\":{d}");
        }
        None => out.push_str(",\"durable\":null"),
    }
    match a.watermark {
        Some(w) => {
            let _ = write!(out, ",\"watermark\":{w}");
        }
        None => out.push_str(",\"watermark\":null"),
    }
    let _ = write!(out, ",\"busy\":{}}}}}", a.busy);
    out
}

/// `{"rows":{"session":N,"query":Q,"rows":[{"window":…,"group":[…],"values":[…]},…]}}`
pub(crate) fn encode_rows(session: u64, query: u32, rows: &[WindowResult<f64>]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"rows\":{{\"session\":{session},\"query\":{query},\"rows\":"
    );
    push_rows_array(&mut out, rows);
    out.push_str("}}");
    out
}

/// `[{"window":…,"group":[…],"values":[…]},…]`
fn push_rows_array(out: &mut String, rows: &[WindowResult<f64>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"window\":{},\"group\":[", row.window);
        for (j, g) in row.group.0.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match g {
                None => out.push_str("null"),
                Some(v) => push_wire_value(out, v),
            }
        }
        out.push_str("],\"values\":[");
        for (j, v) in row.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                OutValue::Count(n) => push_num_field(out, "Count", *n),
                OutValue::Float(x) => push_num_field(out, "Float", *x),
            }
        }
        out.push_str("]}");
    }
    out.push(']');
}

fn push_wire_value(out: &mut String, v: &Value) {
    json::push_value(out, v);
}

fn push_num_field(out: &mut String, tag: &str, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{{\"{tag}\":{x}}}");
    } else {
        let _ = write!(out, "{{\"{tag}\":null}}");
    }
}
