//! One session = one query = one [`StreamExecutor`] owned by a dedicated
//! thread. Connections talk to it through a bounded command channel;
//! subscribers get result rows fanned out over bounded channels.
//!
//! Backpressure is layered: the command channel bounds in-flight ingest
//! batches, the session stops polling `poll_results()` once its pending
//! buffer hits the high-water mark (so the executor's result channel
//! fills and `result_occupancy` rises), and every ingest ack carries a
//! `busy` bit computed from those occupancies — the credit signal the
//! wire protocol's backpressure contract is built on.

use crate::protocol::{IngestAck, SessionOptions};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use greta_core::{ExecutorConfig, ExecutorStats, StreamExecutor, WindowResult};
use greta_durability::DurabilityConfig;
use greta_query::compile::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How many in-flight ingest batches the command channel admits before
/// connection threads block — the outermost backpressure layer.
const CMD_CHANNEL_CAPACITY: usize = 16;
/// Capacity of each subscriber's row channel, in row batches.
const SUB_CHANNEL_CAPACITY: usize = 64;
/// Rows per `Rows` frame handed to a subscriber.
const SUB_BATCH_ROWS: usize = 256;

/// Commands a connection thread can send to a session thread.
pub(crate) enum SessionCmd {
    /// Push events; reply with the ack (or a fatal error message).
    Ingest {
        /// Events in stream order.
        events: Vec<Event>,
        /// Ack channel (capacity 1).
        reply: Sender<Result<IngestAck, String>>,
    },
    /// Register a subscriber for result rows.
    Subscribe {
        /// Row fan-out channel owned by the subscribing connection.
        tx: Sender<SubMsg>,
    },
    /// Graceful drain; reply once the terminal checkpoint is on disk.
    Drain {
        /// Completion channel (capacity 1).
        reply: Sender<Result<(), String>>,
    },
}

/// Messages delivered to a subscriber.
pub(crate) enum SubMsg {
    /// A batch of result rows (canonically ordered under
    /// [`EmissionMode::WindowOrdered`]).
    Rows(Vec<WindowResult<f64>>),
    /// The session drained; no more rows will follow.
    End,
}

/// How an ingest batch failed.
///
/// A recoverable failure rejects the batch but leaves the executor
/// intact — the session keeps serving and the client gets an `Error`
/// frame. A fatal failure (I/O, WAL sync, internal engine error) means
/// the executor can no longer uphold its guarantees, so the session
/// thread ends all subscriptions and exits.
pub(crate) enum IngestError {
    /// The batch was rejected; the session stays usable.
    Recoverable(String),
    /// The executor is wedged; the session must stop.
    Fatal(String),
}

impl IngestError {
    fn into_msg(self) -> String {
        match self {
            IngestError::Recoverable(m) | IngestError::Fatal(m) => m,
        }
    }
}

/// Server-side handle to a running session.
pub(crate) struct SessionHandle {
    pub(crate) id: u64,
    pub(crate) query_text: String,
    pub(crate) cmd_tx: Sender<SessionCmd>,
    /// Stats snapshot refreshed by the session thread after every command
    /// burst, so `/metrics` never blocks on a busy executor.
    pub(crate) last_stats: Arc<Mutex<ExecutorStats>>,
    /// Set once the session has drained (terminal checkpoint taken).
    pub(crate) drained: Arc<AtomicBool>,
    pub(crate) join: Mutex<Option<JoinHandle<()>>>,
}

/// Build the [`ExecutorConfig`] a [`SessionOptions`] describes.
pub(crate) fn executor_config(opts: &SessionOptions) -> ExecutorConfig {
    ExecutorConfig {
        shards: (opts.shards.max(1)) as usize,
        slack: opts.slack,
        late_policy: opts.late_policy,
        emission: opts.emission,
        batch_size: (opts.batch_size.max(1)) as usize,
        channel_capacity: (opts.channel_capacity.max(1)) as usize,
        result_capacity: (opts.result_capacity.max(1)) as usize,
        durability: opts.durability_dir.as_ref().map(|d| {
            let mut dcfg = DurabilityConfig::new(d);
            if opts.snapshot_every_windows > 0 {
                dcfg.snapshot_every_windows = opts.snapshot_every_windows;
            }
            dcfg
        }),
        ..ExecutorConfig::default()
    }
}

/// Start a session: compile nothing here — the caller already compiled
/// `query` — just spawn the owning thread and hand back the handle.
pub(crate) fn spawn_session(
    id: u64,
    query_text: String,
    query: CompiledQuery,
    registry: SchemaRegistry,
    opts: SessionOptions,
) -> Result<SessionHandle, String> {
    let config = executor_config(&opts);
    let exec = if opts.recover {
        StreamExecutor::<f64>::recover(query, registry.clone(), config)
    } else {
        StreamExecutor::<f64>::new(query, registry.clone(), config)
    }
    .map_err(|e| e.to_string())?;

    let (cmd_tx, cmd_rx) = bounded(CMD_CHANNEL_CAPACITY);
    let last_stats = Arc::new(Mutex::new(exec.stats()));
    let drained = Arc::new(AtomicBool::new(false));
    let thread_stats = Arc::clone(&last_stats);
    let thread_drained = Arc::clone(&drained);
    let join = std::thread::Builder::new()
        .name(format!("greta-session-{id}"))
        .spawn(move || {
            run_session(
                id,
                exec,
                registry,
                opts,
                cmd_rx,
                thread_stats,
                thread_drained,
            )
        })
        .map_err(|e| format!("failed to spawn session thread: {e}"))?;

    Ok(SessionHandle {
        id,
        query_text,
        cmd_tx,
        last_stats,
        drained,
        join: Mutex::new(Some(join)),
    })
}

/// One result subscriber with its own delivery cursor, so subscribers
/// of unequal speed each receive every row exactly once.
struct Subscriber {
    tx: Sender<SubMsg>,
    /// Absolute index (rows ever polled from the executor) of the next
    /// row this subscriber has not yet been sent.
    next: u64,
}

struct SessionLoop {
    id: u64,
    exec: StreamExecutor<f64>,
    registry: SchemaRegistry,
    subs: Vec<Subscriber>,
    /// Rows polled from the executor but not yet accepted by every
    /// subscriber (or never subscribed for — they also feed the final
    /// drain flush).
    pending: VecDeque<WindowResult<f64>>,
    /// Absolute index of `pending[0]`: the head advances only past rows
    /// the slowest subscriber has already received.
    pending_base: u64,
    /// Stop polling `poll_results` past this many pending rows so the
    /// executor's result channel backs up and `busy` trips.
    pending_high: usize,
    channel_capacity: usize,
    result_capacity: usize,
}

fn run_session(
    id: u64,
    exec: StreamExecutor<f64>,
    registry: SchemaRegistry,
    opts: SessionOptions,
    cmd_rx: Receiver<SessionCmd>,
    last_stats: Arc<Mutex<ExecutorStats>>,
    drained: Arc<AtomicBool>,
) {
    let mut s = SessionLoop {
        id,
        exec,
        registry,
        subs: Vec::new(),
        pending: VecDeque::new(),
        pending_base: 0,
        pending_high: (opts.result_capacity.max(1)) as usize,
        channel_capacity: (opts.channel_capacity.max(1)) as usize,
        result_capacity: (opts.result_capacity.max(1)) as usize,
    };
    loop {
        let mut worked = false;
        loop {
            match cmd_rx.try_recv() {
                Ok(SessionCmd::Ingest { events, reply }) => {
                    worked = true;
                    let ack = s.ingest(events);
                    let fatal = matches!(ack, Err(IngestError::Fatal(_)));
                    // Publish before acking so a metrics scrape issued
                    // right after the ack sees the events it covers.
                    s.publish_stats(&last_stats);
                    let _ = reply.send(ack.map_err(IngestError::into_msg));
                    if fatal {
                        // The executor is wedged (I/O or internal error):
                        // end subscriptions and stop serving commands.
                        // Recoverable rejections (validation, late events
                        // under LatePolicy::Error) already replied with an
                        // error and the session keeps serving.
                        s.broadcast_end();
                        return;
                    }
                }
                Ok(SessionCmd::Subscribe { tx }) => {
                    worked = true;
                    // A new subscriber starts at the head of the retained
                    // backlog, like every subscriber before it.
                    s.subs.push(Subscriber {
                        tx,
                        next: s.pending_base,
                    });
                }
                Ok(SessionCmd::Drain { reply }) => {
                    let res = s.drain();
                    s.publish_stats(&last_stats);
                    drained.store(true, Ordering::SeqCst);
                    let _ = reply.send(res);
                    return;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // Server dropped the handle without draining (abort /
                    // crash path): drop the executor as-is. With
                    // durability the WAL stays on disk for recovery.
                    return;
                }
            }
        }
        if s.pump() {
            worked = true;
        }
        if !worked {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl SessionLoop {
    /// Validate and push one batch, then build the ack.
    fn ingest(&mut self, events: Vec<Event>) -> Result<IngestAck, IngestError> {
        for e in events {
            self.validate(&e).map_err(IngestError::Recoverable)?;
            match self.exec.push(e) {
                Ok(()) => {}
                // Per-event admission rejections poison the batch but not
                // the session: the executor stays usable, so report the
                // failure and keep serving.
                Err(greta_core::EngineError::Late { .. }) => {
                    return Err(IngestError::Recoverable(
                        "late event rejected (LatePolicy::Error)".into(),
                    ))
                }
                Err(e @ greta_core::EngineError::OutOfOrder { .. }) => {
                    return Err(IngestError::Recoverable(format!("ingest rejected: {e}")))
                }
                Err(e) => return Err(IngestError::Fatal(format!("ingest failed: {e}"))),
            }
        }
        self.pump();
        // Group commit: one WAL sync per acknowledged batch, so the
        // `durable` watermark in the ack is true even across a crash.
        let durable = self
            .exec
            .sync_wal()
            .map_err(|e| IngestError::Fatal(format!("wal sync failed: {e}")))?;
        let stats = self.exec.stats();
        Ok(IngestAck {
            session: self.id,
            pushed: stats.pushed,
            durable,
            watermark: self.exec.watermark().map(|t| t.0),
            busy: self.busy(&stats),
        })
    }

    /// Arity/type checks the engine's compiled accessors rely on: a frame
    /// from the network is untrusted even when it decoded cleanly.
    fn validate(&self, e: &Event) -> Result<(), String> {
        if (e.type_id.0 as usize) >= self.registry.len() {
            return Err(format!("unknown event type id {}", e.type_id.0));
        }
        let arity = self.registry.schema(e.type_id).attributes.len();
        if e.attrs.len() != arity {
            return Err(format!(
                "event of type {} has {} attributes, schema expects {arity}",
                self.registry.schema(e.type_id).name,
                e.attrs.len()
            ));
        }
        Ok(())
    }

    /// The credit signal: busy when any executor channel (or this
    /// session's own pending buffer) is at least half full.
    fn busy(&self, stats: &ExecutorStats) -> bool {
        stats.result_occupancy * 2 >= self.result_capacity
            || self.pending.len() * 2 >= self.pending_high
            || stats
                .channel_occupancy
                .iter()
                .any(|&o| o * 2 >= self.channel_capacity)
    }

    /// Poll results (up to the high-water mark) and fan batches out to
    /// subscribers. Returns true if anything moved.
    fn pump(&mut self) -> bool {
        let mut moved = false;
        if self.pending.len() < self.pending_high {
            let polled = self.exec.poll_results();
            if !polled.is_empty() {
                moved = true;
                self.pending.extend(polled);
            }
        }
        moved |= self.flush_subs(false);
        moved
    }

    /// Push pending rows to every subscriber, each from its own cursor,
    /// so a fast subscriber never sees a row twice while a slow one
    /// catches up. With `block` the sends wait for room (drain path);
    /// otherwise a full subscriber just stops advancing its cursor
    /// (slow-consumer backpressure propagates to the `busy` bit instead
    /// of dropping rows). Rows leave `pending` only once the slowest
    /// subscriber has received them.
    fn flush_subs(&mut self, block: bool) -> bool {
        if self.subs.is_empty() {
            return false;
        }
        let mut moved = false;
        let base = self.pending_base;
        let end = base + self.pending.len() as u64;
        let mut alive = Vec::with_capacity(self.subs.len());
        for mut sub in self.subs.drain(..) {
            let mut dead = false;
            while sub.next < end {
                let start = (sub.next - base) as usize;
                let n = (self.pending.len() - start).min(SUB_BATCH_ROWS);
                let batch: Vec<WindowResult<f64>> =
                    self.pending.iter().skip(start).take(n).cloned().collect();
                let sent = if block {
                    sub.tx.send(SubMsg::Rows(batch)).map_err(|_| true)
                } else {
                    sub.tx
                        .try_send(SubMsg::Rows(batch))
                        .map_err(|e| matches!(e, crossbeam::channel::TrySendError::Disconnected(_)))
                };
                match sent {
                    Ok(()) => {
                        sub.next += n as u64;
                        moved = true;
                    }
                    Err(disconnected) => {
                        dead = disconnected;
                        break;
                    }
                }
            }
            if !dead {
                alive.push(sub);
            }
        }
        self.subs = alive;
        // Advance the shared head past everything the slowest live
        // subscriber has received. With no subscribers left, the backlog
        // stays for late subscribers and the final drain flush.
        if let Some(min_next) = self.subs.iter().map(|s| s.next).min() {
            let consumed = (min_next - base) as usize;
            if consumed > 0 {
                self.pending.drain(..consumed);
                self.pending_base = min_next;
            }
        }
        moved
    }

    /// Graceful drain: flush ordered output, take the terminal
    /// checkpoint, deliver every remaining row, end subscriptions.
    fn drain(&mut self) -> Result<(), String> {
        match self.exec.drain() {
            Ok(rows) => {
                self.pending.extend(rows);
                self.flush_subs(true);
                self.broadcast_end();
                Ok(())
            }
            Err(e) => {
                self.broadcast_end();
                Err(format!("drain failed: {e}"))
            }
        }
    }

    fn broadcast_end(&mut self) {
        for sub in self.subs.drain(..) {
            let _ = sub.tx.send(SubMsg::End);
        }
    }

    fn publish_stats(&self, last_stats: &Mutex<ExecutorStats>) {
        if let Ok(mut g) = last_stats.lock() {
            *g = self.exec.stats();
        }
    }
}

impl SessionHandle {
    /// Subscriber channel factory (bounded: slow consumers backpressure).
    pub(crate) fn subscriber_channel() -> (Sender<SubMsg>, Receiver<SubMsg>) {
        bounded(SUB_CHANNEL_CAPACITY)
    }

    /// Send a drain command and wait for the terminal checkpoint. A
    /// second drain of an already-drained session succeeds immediately.
    pub(crate) fn drain_blocking(&self) -> Result<(), String> {
        let (reply_tx, reply_rx) = bounded(1);
        if self
            .cmd_tx
            .send(SessionCmd::Drain { reply: reply_tx })
            .is_err()
        {
            return if self.drained.load(Ordering::SeqCst) {
                Ok(())
            } else {
                Err("session thread is gone without draining".into())
            };
        }
        match reply_rx.recv() {
            Ok(res) => {
                if let Some(j) = self.join.lock().ok().and_then(|mut g| g.take()) {
                    let _ = j.join();
                }
                res
            }
            Err(_) => {
                if self.drained.load(Ordering::SeqCst) {
                    Ok(())
                } else {
                    Err("session thread died during drain".into())
                }
            }
        }
    }
}
