//! One session = one shared ingest stream = one [`StreamExecutor`] owned
//! by a dedicated thread, hosting the primary query plus any number of
//! queries registered at runtime. Connections talk to it through a
//! bounded command channel; each query's subscribers get its result rows
//! fanned out over bounded channels.
//!
//! Backpressure is layered: the command channel bounds in-flight ingest
//! batches, the session stops polling `poll_results()` once its pending
//! buffer hits the high-water mark (so the executor's result channel
//! fills and `result_occupancy` rises), and every ingest ack carries a
//! `busy` bit computed from those occupancies — the credit signal the
//! wire protocol's backpressure contract is built on.
//!
//! Lock discipline (checked by `greta-lint`): the handle's locks follow
//! the same global order as `server.rs` and are never held across a
//! socket write.

// lint:lock-order: sessions < drained_tail < last_stats < query_texts < join

use crate::protocol::{IngestAck, SessionOptions};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use greta_core::{
    EmissionMode, ExecutorConfig, ExecutorStats, QueryId, StreamExecutor, WindowResult,
};
use greta_durability::DurabilityConfig;
use greta_query::compile::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How many in-flight ingest batches the command channel admits before
/// connection threads block — the outermost backpressure layer.
const CMD_CHANNEL_CAPACITY: usize = 16;
/// Capacity of each subscriber's row channel, in row batches.
const SUB_CHANNEL_CAPACITY: usize = 64;
/// Rows per `Rows` frame handed to a subscriber.
const SUB_BATCH_ROWS: usize = 256;

/// Commands a connection thread can send to a session thread.
pub(crate) enum SessionCmd {
    /// Push events; reply with the ack (or a fatal error message).
    Ingest {
        /// Events in stream order.
        events: Vec<Event>,
        /// Ack channel (capacity 1).
        reply: Sender<Result<IngestAck, String>>,
    },
    /// Register a subscriber for one query's result rows. An unknown
    /// query id gets an immediate `End`.
    Subscribe {
        /// Query within the session (`0` = primary).
        query: u32,
        /// Row fan-out channel owned by the subscribing connection.
        tx: Sender<SubMsg>,
    },
    /// Register an additional query on the shared ingest stream
    /// (barrier cut); reply with its assigned query id.
    Register {
        /// Query-language text, compiled against the session's registry.
        text: String,
        /// Result emission mode for the new query's stream.
        emission: EmissionMode,
        /// Reply channel (capacity 1).
        reply: Sender<Result<u32, String>>,
    },
    /// Deregister a query (barrier cut); reply with its undelivered
    /// remainder after its subscribers received everything pending.
    Deregister {
        /// Query to remove (`0` is refused — drain the session).
        query: u32,
        /// Reply channel (capacity 1).
        reply: Sender<Result<Vec<WindowResult<f64>>, String>>,
    },
    /// Graceful drain; reply once the terminal checkpoint is on disk.
    Drain {
        /// Completion channel (capacity 1).
        reply: Sender<Result<(), String>>,
    },
}

/// Messages delivered to a subscriber.
pub(crate) enum SubMsg {
    /// A batch of result rows (canonically ordered under
    /// [`EmissionMode::WindowOrdered`]).
    Rows(Vec<WindowResult<f64>>),
    /// The session drained; no more rows will follow.
    End,
}

/// How an ingest batch failed.
///
/// A recoverable failure rejects the batch but leaves the executor
/// intact — the session keeps serving and the client gets an `Error`
/// frame. A fatal failure (I/O, WAL sync, internal engine error) means
/// the executor can no longer uphold its guarantees, so the session
/// thread ends all subscriptions and exits.
pub(crate) enum IngestError {
    /// The batch was rejected; the session stays usable.
    Recoverable(String),
    /// The executor is wedged; the session must stop.
    Fatal(String),
}

impl IngestError {
    fn into_msg(self) -> String {
        match self {
            IngestError::Recoverable(m) | IngestError::Fatal(m) => m,
        }
    }
}

/// Server-side handle to a running session.
pub(crate) struct SessionHandle {
    pub(crate) id: u64,
    pub(crate) query_text: String,
    pub(crate) cmd_tx: Sender<SessionCmd>,
    /// Stats snapshot refreshed by the session thread after every command
    /// burst, so `/metrics` never blocks on a busy executor.
    pub(crate) last_stats: Arc<Mutex<ExecutorStats>>,
    /// Query texts by id, ascending — the primary plus every query ever
    /// registered (deregistered ones stay for metrics continuity;
    /// `ExecutorStats::queries` marks them inactive).
    pub(crate) query_texts: Arc<Mutex<Vec<(u32, String)>>>,
    /// Set once the session has drained (terminal checkpoint taken).
    pub(crate) drained: Arc<AtomicBool>,
    pub(crate) join: Mutex<Option<JoinHandle<()>>>,
}

/// Build the [`ExecutorConfig`] a [`SessionOptions`] describes.
pub(crate) fn executor_config(opts: &SessionOptions) -> ExecutorConfig {
    ExecutorConfig {
        shards: (opts.shards.max(1)) as usize,
        slack: opts.slack,
        late_policy: opts.late_policy,
        emission: opts.emission,
        batch_size: (opts.batch_size.max(1)) as usize,
        channel_capacity: (opts.channel_capacity.max(1)) as usize,
        result_capacity: (opts.result_capacity.max(1)) as usize,
        durability: opts.durability_dir.as_ref().map(|d| {
            let mut dcfg = DurabilityConfig::new(d);
            if opts.snapshot_every_windows > 0 {
                dcfg.snapshot_every_windows = opts.snapshot_every_windows;
            }
            dcfg
        }),
        ..ExecutorConfig::default()
    }
}

/// Start a session: compile nothing here — the caller already compiled
/// `query` — just spawn the owning thread and hand back the handle.
pub(crate) fn spawn_session(
    id: u64,
    query_text: String,
    query: CompiledQuery,
    registry: SchemaRegistry,
    opts: SessionOptions,
) -> Result<SessionHandle, String> {
    let config = executor_config(&opts);
    let exec = if opts.recover {
        StreamExecutor::<f64>::recover(query, registry.clone(), config)
    } else {
        StreamExecutor::<f64>::new(query, registry.clone(), config)
    }
    .map_err(|e| e.to_string())?;

    let (cmd_tx, cmd_rx) = bounded(CMD_CHANNEL_CAPACITY);
    let last_stats = Arc::new(Mutex::new(exec.stats()));
    // A recovered executor may come back hosting queries registered in a
    // previous run; seed the text table from its registry.
    let mut texts: Vec<(u32, String)> = exec
        .query_ids()
        .iter()
        .map(|q| (q.0, exec.query_text(*q).unwrap_or(&query_text).to_string()))
        .collect();
    if texts.is_empty() {
        texts.push((0, query_text.clone()));
    }
    let query_texts = Arc::new(Mutex::new(texts));
    let drained = Arc::new(AtomicBool::new(false));
    let thread_stats = Arc::clone(&last_stats);
    let thread_texts = Arc::clone(&query_texts);
    let thread_drained = Arc::clone(&drained);
    let join = std::thread::Builder::new()
        .name(format!("greta-session-{id}"))
        .spawn(move || {
            run_session(
                id,
                exec,
                registry,
                opts,
                cmd_rx,
                thread_stats,
                thread_texts,
                thread_drained,
            )
        })
        .map_err(|e| format!("failed to spawn session thread: {e}"))?;

    Ok(SessionHandle {
        id,
        query_text,
        cmd_tx,
        last_stats,
        query_texts,
        drained,
        join: Mutex::new(Some(join)),
    })
}

/// One result subscriber with its own delivery cursor, so subscribers
/// of unequal speed each receive every row exactly once.
struct Subscriber {
    tx: Sender<SubMsg>,
    /// Absolute index (rows ever polled from the executor) of the next
    /// row this subscriber has not yet been sent.
    next: u64,
}

/// One hosted query's result stream: its own pending backlog and its
/// own subscribers, fed from `poll_results_of(query)`.
struct QueryStream {
    /// Query id within the session's executor (`0` = primary).
    query: u32,
    subs: Vec<Subscriber>,
    /// Rows polled from the executor but not yet accepted by every
    /// subscriber (or never subscribed for — they also feed the final
    /// drain flush and the detach reply).
    pending: VecDeque<WindowResult<f64>>,
    /// Absolute index of `pending[0]`: the head advances only past rows
    /// the slowest subscriber has already received.
    pending_base: u64,
}

impl QueryStream {
    fn new(query: u32) -> QueryStream {
        QueryStream {
            query,
            subs: Vec::new(),
            pending: VecDeque::new(),
            pending_base: 0,
        }
    }
}

struct SessionLoop {
    id: u64,
    exec: StreamExecutor<f64>,
    registry: SchemaRegistry,
    /// One stream per hosted query, ascending by query id.
    streams: Vec<QueryStream>,
    /// Stop polling results past this many pending rows (per query) so
    /// the executor's result channel backs up and `busy` trips.
    pending_high: usize,
    channel_capacity: usize,
    result_capacity: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    id: u64,
    exec: StreamExecutor<f64>,
    registry: SchemaRegistry,
    opts: SessionOptions,
    cmd_rx: Receiver<SessionCmd>,
    last_stats: Arc<Mutex<ExecutorStats>>,
    query_texts: Arc<Mutex<Vec<(u32, String)>>>,
    drained: Arc<AtomicBool>,
) {
    // One stream per query the executor hosts at start — just the
    // primary on a fresh session, more after a multi-query recovery.
    let streams: Vec<QueryStream> = {
        let ids = exec.query_ids();
        if ids.is_empty() {
            vec![QueryStream::new(0)]
        } else {
            ids.iter().map(|q| QueryStream::new(q.0)).collect()
        }
    };
    let mut s = SessionLoop {
        id,
        exec,
        registry,
        streams,
        pending_high: (opts.result_capacity.max(1)) as usize,
        channel_capacity: (opts.channel_capacity.max(1)) as usize,
        result_capacity: (opts.result_capacity.max(1)) as usize,
    };
    loop {
        let mut worked = false;
        loop {
            match cmd_rx.try_recv() {
                Ok(SessionCmd::Ingest { events, reply }) => {
                    worked = true;
                    let ack = s.ingest(events);
                    let fatal = matches!(ack, Err(IngestError::Fatal(_)));
                    // Publish before acking so a metrics scrape issued
                    // right after the ack sees the events it covers.
                    s.publish_stats(&last_stats);
                    let _ = reply.send(ack.map_err(IngestError::into_msg));
                    if fatal {
                        // The executor is wedged (I/O or internal error):
                        // end subscriptions and stop serving commands.
                        // Recoverable rejections (validation, late events
                        // under LatePolicy::Error) already replied with an
                        // error and the session keeps serving.
                        s.broadcast_end();
                        return;
                    }
                }
                Ok(SessionCmd::Subscribe { query, tx }) => {
                    worked = true;
                    match s.streams.iter_mut().find(|st| st.query == query) {
                        // A new subscriber starts at the head of the
                        // retained backlog, like every one before it.
                        Some(st) => st.subs.push(Subscriber {
                            tx,
                            next: st.pending_base,
                        }),
                        // Unknown (or already-detached) query: nothing
                        // will ever arrive.
                        None => {
                            let _ = tx.send(SubMsg::End);
                        }
                    }
                }
                Ok(SessionCmd::Register {
                    text,
                    emission,
                    reply,
                }) => {
                    worked = true;
                    let res = s.register(&text, emission);
                    if let Ok(q) = &res {
                        // Poison recovery: the list only ever grows by
                        // whole tuples, so state after a writer panic is
                        // still well-formed.
                        query_texts
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((*q, text));
                    }
                    s.publish_stats(&last_stats);
                    let _ = reply.send(res);
                }
                Ok(SessionCmd::Deregister { query, reply }) => {
                    worked = true;
                    let res = s.deregister(query);
                    s.publish_stats(&last_stats);
                    let _ = reply.send(res);
                }
                Ok(SessionCmd::Drain { reply }) => {
                    let res = s.drain();
                    s.publish_stats(&last_stats);
                    drained.store(true, Ordering::SeqCst);
                    let _ = reply.send(res);
                    return;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // Server dropped the handle without draining (abort /
                    // crash path): drop the executor as-is. With
                    // durability the WAL stays on disk for recovery.
                    return;
                }
            }
        }
        if s.pump() {
            worked = true;
        }
        if !worked {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl SessionLoop {
    /// Validate and push one batch, then build the ack.
    fn ingest(&mut self, events: Vec<Event>) -> Result<IngestAck, IngestError> {
        for e in events {
            self.validate(&e).map_err(IngestError::Recoverable)?;
            match self.exec.push(e) {
                Ok(()) => {}
                // Per-event admission rejections poison the batch but not
                // the session: the executor stays usable, so report the
                // failure and keep serving.
                Err(greta_core::EngineError::Late { .. }) => {
                    return Err(IngestError::Recoverable(
                        "late event rejected (LatePolicy::Error)".into(),
                    ))
                }
                Err(e @ greta_core::EngineError::OutOfOrder { .. }) => {
                    return Err(IngestError::Recoverable(format!("ingest rejected: {e}")))
                }
                Err(e) => return Err(IngestError::Fatal(format!("ingest failed: {e}"))),
            }
        }
        self.pump();
        // Group commit: one WAL sync per acknowledged batch, so the
        // `durable` watermark in the ack is true even across a crash.
        let durable = self
            .exec
            .sync_wal()
            .map_err(|e| IngestError::Fatal(format!("wal sync failed: {e}")))?;
        let stats = self.exec.stats();
        Ok(IngestAck {
            session: self.id,
            pushed: stats.pushed,
            durable,
            watermark: self.exec.watermark().map(|t| t.0),
            busy: self.busy(&stats),
        })
    }

    /// Arity/type checks the engine's compiled accessors rely on: a frame
    /// from the network is untrusted even when it decoded cleanly.
    fn validate(&self, e: &Event) -> Result<(), String> {
        if (e.type_id.0 as usize) >= self.registry.len() {
            return Err(format!("unknown event type id {}", e.type_id.0));
        }
        let arity = self.registry.schema(e.type_id).attributes.len();
        if e.attrs.len() != arity {
            return Err(format!(
                "event of type {} has {} attributes, schema expects {arity}",
                self.registry.schema(e.type_id).name,
                e.attrs.len()
            ));
        }
        Ok(())
    }

    /// The credit signal: busy when any executor channel (or any
    /// query stream's own pending buffer) is at least half full.
    fn busy(&self, stats: &ExecutorStats) -> bool {
        stats.result_occupancy * 2 >= self.result_capacity
            || self
                .streams
                .iter()
                .any(|st| st.pending.len() * 2 >= self.pending_high)
            || stats
                .channel_occupancy
                .iter()
                .any(|&o| o * 2 >= self.channel_capacity)
    }

    /// Poll every query's results (up to the per-query high-water mark)
    /// and fan batches out to its subscribers. Returns true if anything
    /// moved.
    fn pump(&mut self) -> bool {
        let mut moved = false;
        for st in &mut self.streams {
            if st.pending.len() < self.pending_high {
                if let Ok(polled) = self.exec.poll_results_of(QueryId(st.query)) {
                    if !polled.is_empty() {
                        moved = true;
                        st.pending.extend(polled);
                    }
                }
            }
            moved |= flush_stream(st, false);
        }
        moved
    }

    /// Register a new query on the shared stream (barrier cut at the
    /// current release frontier).
    fn register(&mut self, text: &str, emission: EmissionMode) -> Result<u32, String> {
        let q = self
            .exec
            .register_query(text, emission)
            .map_err(|e| e.to_string())?;
        self.streams.push(QueryStream::new(q.0));
        Ok(q.0)
    }

    /// Deregister a query: catch its subscribers up (blocking), end
    /// their streams, and return the undelivered remainder — rows the
    /// detach barrier released, plus the whole backlog when nothing ever
    /// subscribed. Streamed rows and returned rows are disjoint: their
    /// union is the query's exactly-once output.
    fn deregister(&mut self, query: u32) -> Result<Vec<WindowResult<f64>>, String> {
        if query == 0 {
            return Err("the primary query cannot detach; drain the session".into());
        }
        let pos = self
            .streams
            .iter()
            .position(|st| st.query == query)
            .ok_or_else(|| format!("unknown query {query}"))?;
        let barrier_rows = self
            .exec
            .deregister_query(QueryId(query))
            .map_err(|e| e.to_string())?;
        let mut st = self.streams.remove(pos);
        flush_stream(&mut st, true);
        for sub in st.subs.drain(..) {
            let _ = sub.tx.send(SubMsg::End);
        }
        // After the blocking flush anything still pending was not
        // delivered to any live subscriber (no subscribers, or they all
        // disconnected) — it belongs in the reply.
        let mut rows: Vec<WindowResult<f64>> = st.pending.drain(..).collect();
        rows.extend(barrier_rows);
        Ok(rows)
    }

    /// Graceful drain: flush ordered output of every hosted query, take
    /// the terminal checkpoint, deliver every remaining row, end all
    /// subscriptions.
    fn drain(&mut self) -> Result<(), String> {
        match self.exec.drain() {
            Ok(rows) => {
                // drain() returns the primary remainder; registered
                // queries' remainders stay pollable afterwards.
                let mut primary_rows = Some(rows);
                for st in &mut self.streams {
                    if st.query == 0 {
                        if let Some(rows) = primary_rows.take() {
                            st.pending.extend(rows);
                        }
                    } else if let Ok(polled) = self.exec.poll_results_of(QueryId(st.query)) {
                        st.pending.extend(polled);
                    }
                    flush_stream(st, true);
                }
                self.broadcast_end();
                Ok(())
            }
            Err(e) => {
                self.broadcast_end();
                Err(format!("drain failed: {e}"))
            }
        }
    }

    fn broadcast_end(&mut self) {
        for st in &mut self.streams {
            for sub in st.subs.drain(..) {
                let _ = sub.tx.send(SubMsg::End);
            }
        }
    }

    fn publish_stats(&self, last_stats: &Mutex<ExecutorStats>) {
        // Recover from a poisoned mutex: the stored stats are replaced
        // wholesale, so a writer that panicked mid-update cannot leave
        // torn state behind — and stats must not silently freeze for
        // the rest of the session's life.
        let mut g = last_stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = self.exec.stats();
    }
}

/// Push one stream's pending rows to every one of its subscribers, each
/// from its own cursor, so a fast subscriber never sees a row twice
/// while a slow one catches up. With `block` the sends wait for room
/// (drain/detach path); otherwise a full subscriber just stops advancing
/// its cursor (slow-consumer backpressure propagates to the `busy` bit
/// instead of dropping rows). Rows leave `pending` only once the slowest
/// subscriber has received them.
fn flush_stream(st: &mut QueryStream, block: bool) -> bool {
    if st.subs.is_empty() {
        return false;
    }
    let mut moved = false;
    let base = st.pending_base;
    let end = base + st.pending.len() as u64;
    let mut alive = Vec::with_capacity(st.subs.len());
    for mut sub in st.subs.drain(..) {
        let mut dead = false;
        while sub.next < end {
            let start = (sub.next - base) as usize;
            let n = (st.pending.len() - start).min(SUB_BATCH_ROWS);
            let batch: Vec<WindowResult<f64>> =
                st.pending.iter().skip(start).take(n).cloned().collect();
            let sent = if block {
                sub.tx.send(SubMsg::Rows(batch)).map_err(|_| true)
            } else {
                sub.tx
                    .try_send(SubMsg::Rows(batch))
                    .map_err(|e| matches!(e, crossbeam::channel::TrySendError::Disconnected(_)))
            };
            match sent {
                Ok(()) => {
                    sub.next += n as u64;
                    moved = true;
                }
                Err(disconnected) => {
                    dead = disconnected;
                    break;
                }
            }
        }
        if !dead {
            alive.push(sub);
        }
    }
    st.subs = alive;
    // Advance the shared head past everything the slowest live
    // subscriber has received. With no subscribers left, the backlog
    // stays for late subscribers, the final drain flush, and the
    // detach reply.
    if let Some(min_next) = st.subs.iter().map(|s| s.next).min() {
        let consumed = (min_next - base) as usize;
        if consumed > 0 {
            st.pending.drain(..consumed);
            st.pending_base = min_next;
        }
    }
    moved
}

impl SessionHandle {
    /// Subscriber channel factory (bounded: slow consumers backpressure).
    pub(crate) fn subscriber_channel() -> (Sender<SubMsg>, Receiver<SubMsg>) {
        bounded(SUB_CHANNEL_CAPACITY)
    }

    /// Send a drain command and wait for the terminal checkpoint. A
    /// second drain of an already-drained session succeeds immediately.
    pub(crate) fn drain_blocking(&self) -> Result<(), String> {
        let (reply_tx, reply_rx) = bounded(1);
        if self
            .cmd_tx
            .send(SessionCmd::Drain { reply: reply_tx })
            .is_err()
        {
            return if self.drained.load(Ordering::SeqCst) {
                Ok(())
            } else {
                Err("session thread is gone without draining".into())
            };
        }
        match reply_rx.recv() {
            Ok(res) => {
                // Poison recovery: the slot holds only an Option —
                // taking it after a panic elsewhere is always sound,
                // and skipping the join would leak the thread.
                let join = self
                    .join
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                if let Some(j) = join {
                    let _ = j.join();
                }
                res
            }
            Err(_) => {
                if self.drained.load(Ordering::SeqCst) {
                    Ok(())
                } else {
                    Err("session thread died during drain".into())
                }
            }
        }
    }
}
