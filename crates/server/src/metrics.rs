//! Prometheus text-format rendering of server and session metrics.
//!
//! Output follows the exposition format: one `# HELP` + `# TYPE` pair
//! per metric name, then the series. Every [`ExecutorStats`] counter is
//! exported; per-shard vectors become series with a `shard` label and
//! every session series carries a `session` label.

use greta_core::ExecutorStats;
use std::fmt::Write as _;

/// Escape a label value per the exposition format (`\\`, `\"`, `\n`).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One metric family: header emitted once, then any number of series.
pub(crate) struct Renderer {
    out: String,
}

impl Renderer {
    pub(crate) fn new() -> Renderer {
        Renderer { out: String::new() }
    }

    pub(crate) fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    pub(crate) fn series(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {value}");
        } else {
            let rendered: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect();
            let _ = writeln!(self.out, "{name}{{{}}} {value}", rendered.join(","));
        }
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }
}

/// A session's identity as the metrics page shows it.
pub(crate) struct SessionMetrics<'a> {
    /// Session id (the `session` label).
    pub id: u64,
    /// Query text (the `query` label on `greta_session_info`).
    pub query: &'a str,
    /// Whether the session has drained.
    pub drained: bool,
    /// Latest stats snapshot.
    pub stats: ExecutorStats,
    /// Query texts by id (the primary plus every registered query),
    /// joined with [`ExecutorStats::queries`] for the per-query series.
    pub queries: &'a [(u32, String)],
}

/// Server-level counters for the page header.
pub(crate) struct ServerMetrics {
    pub connections: u64,
    pub frames: u64,
    pub protocol_errors: u64,
    pub http_requests: u64,
    pub sessions: usize,
    pub draining: bool,
}

/// Render the whole `/metrics` document.
pub(crate) fn render(server: &ServerMetrics, sessions: &[SessionMetrics<'_>]) -> String {
    let mut r = Renderer::new();

    r.family(
        "greta_server_connections_total",
        "counter",
        "TCP connections accepted since start.",
    );
    r.series(
        "greta_server_connections_total",
        &[],
        server.connections as f64,
    );
    r.family(
        "greta_server_frames_total",
        "counter",
        "Binary protocol frames processed.",
    );
    r.series("greta_server_frames_total", &[], server.frames as f64);
    r.family(
        "greta_server_protocol_errors_total",
        "counter",
        "Malformed, oversized, or undecodable frames.",
    );
    r.series(
        "greta_server_protocol_errors_total",
        &[],
        server.protocol_errors as f64,
    );
    r.family(
        "greta_server_http_requests_total",
        "counter",
        "HTTP requests served (/metrics, /healthz).",
    );
    r.series(
        "greta_server_http_requests_total",
        &[],
        server.http_requests as f64,
    );
    r.family("greta_server_sessions", "gauge", "Live sessions.");
    r.series("greta_server_sessions", &[], server.sessions as f64);
    r.family(
        "greta_server_draining",
        "gauge",
        "1 while a server-wide shutdown drain is in progress.",
    );
    r.series("greta_server_draining", &[], server.draining as u8 as f64);

    r.family(
        "greta_session_info",
        "gauge",
        "Session identity: query text and drain state as labels, value 1.",
    );
    for s in sessions {
        let id = s.id.to_string();
        let drained = if s.drained { "true" } else { "false" };
        r.series(
            "greta_session_info",
            &[("session", &id), ("query", s.query), ("drained", drained)],
            1.0,
        );
    }

    // Scalar ExecutorStats counters/gauges, one family each, one series
    // per session: (family, type, help, getter).
    type StatGetter = fn(&ExecutorStats) -> f64;
    type ScalarFamily = (&'static str, &'static str, &'static str, StatGetter);
    let scalar: &[ScalarFamily] = &[
        (
            "greta_events_pushed_total",
            "counter",
            "Events accepted by push().",
            |s| s.pushed as f64,
        ),
        (
            "greta_events_released_total",
            "counter",
            "Events released from the reorder buffer to the shards.",
            |s| s.released as f64,
        ),
        (
            "greta_events_late_dropped_total",
            "counter",
            "Late events dropped under LatePolicy::Drop.",
            |s| s.late_dropped as f64,
        ),
        (
            "greta_events_late_diverted_total",
            "counter",
            "Late events diverted under LatePolicy::Divert.",
            |s| s.late_diverted as f64,
        ),
        (
            "greta_broadcast_events_total",
            "counter",
            "Events broadcast to every shard (no partition key).",
            |s| s.broadcasts as f64,
        ),
        (
            "greta_watermarks_total",
            "counter",
            "Watermark advances propagated to the shards.",
            |s| s.watermarks as f64,
        ),
        (
            "greta_frames_sent_total",
            "counter",
            "Event frames sent over shard channels.",
            |s| s.frames as f64,
        ),
        (
            "greta_checkpoints_total",
            "counter",
            "Durability checkpoints taken.",
            |s| s.checkpoints as f64,
        ),
        (
            "greta_barrier_snapshots_total",
            "counter",
            "Checkpoints taken via barrier snapshot.",
            |s| s.barrier_snapshots as f64,
        ),
        (
            "greta_fused_barriers_total",
            "counter",
            "Barriers fused with rebalance pauses.",
            |s| s.fused_barriers as f64,
        ),
        (
            "greta_rebalances_total",
            "counter",
            "Shard rebalance operations.",
            |s| s.rebalances as f64,
        ),
        (
            "greta_groups_moved_total",
            "counter",
            "Groups moved between shards by rebalancing.",
            |s| s.groups_moved as f64,
        ),
        (
            "greta_routing_epoch",
            "gauge",
            "Current routing epoch (bumps on every rebalance).",
            |s| s.routing_epoch as f64,
        ),
        (
            "greta_result_occupancy_rows",
            "gauge",
            "Rows waiting in the bounded result channel.",
            |s| s.result_occupancy as f64,
        ),
        (
            "greta_max_channel_occupancy_frames",
            "gauge",
            "High-water mark of shard input channel occupancy.",
            |s| s.max_channel_occupancy as f64,
        ),
        (
            "greta_merge_released_watermark",
            "gauge",
            "Windows at or below this id have been released by the ordered merge.",
            |s| s.merge_released_to as f64,
        ),
        (
            "greta_merge_buffered_rows",
            "gauge",
            "Rows parked in the ordered merge awaiting slower shards.",
            |s| s.merge_buffered_rows as f64,
        ),
        (
            "greta_peak_memory_bytes",
            "gauge",
            "Peak engine memory footprint.",
            |s| s.peak_memory_bytes as f64,
        ),
    ];
    for (name, kind, help, get) in scalar {
        r.family(name, kind, help);
        for s in sessions {
            let id = s.id.to_string();
            r.series(name, &[("session", &id)], get(&s.stats));
        }
    }

    // Per-query stream families: one series per (session, query), from
    // ExecutorStats::queries joined with the handle's query texts.
    r.family(
        "greta_query_epoch",
        "gauge",
        "Version of the session's query registry (bumps on every register/deregister barrier).",
    );
    for s in sessions {
        let id = s.id.to_string();
        r.series(
            "greta_query_epoch",
            &[("session", &id)],
            s.stats.query_epoch as f64,
        );
    }
    r.family(
        "greta_query_info",
        "gauge",
        "Hosted query identity: text and routing sharing as labels, value 1.",
    );
    for s in sessions {
        let id = s.id.to_string();
        for q in &s.stats.queries {
            let qid = q.id.0.to_string();
            let text = s
                .queries
                .iter()
                .find(|(i, _)| *i == q.id.0)
                .map(|(_, t)| t.as_str())
                .unwrap_or("");
            let shares = if q.shares_primary_routing {
                "true"
            } else {
                "false"
            };
            let active = if q.active { "true" } else { "false" };
            r.series(
                "greta_query_info",
                &[
                    ("session", &id),
                    ("query", &qid),
                    ("text", text),
                    ("shares_primary_routing", shares),
                    ("active", active),
                ],
                1.0,
            );
        }
    }
    type QueryGetter = fn(&greta_core::QueryStreamStats) -> f64;
    type QueryFamily = (&'static str, &'static str, &'static str, QueryGetter);
    let per_query: &[QueryFamily] = &[
        (
            "greta_query_rows_total",
            "counter",
            "Result rows produced for this query (delivered or pending).",
            |q| q.rows as f64,
        ),
        (
            "greta_query_pending_rows",
            "gauge",
            "Rows buffered for this query awaiting poll.",
            |q| q.pending_rows as f64,
        ),
        (
            "greta_query_released_watermark",
            "gauge",
            "Windows below this id are fully released in canonical order (0 when unordered).",
            |q| q.released_to as f64,
        ),
        (
            "greta_query_min_frontier",
            "gauge",
            "Minimum cross-shard emission frontier: the window id every shard has passed.",
            |q| q.min_frontier as f64,
        ),
        (
            "greta_query_active",
            "gauge",
            "1 while the query is registered, 0 after it detached.",
            |q| q.active as u8 as f64,
        ),
    ];
    for (name, kind, help, get) in per_query {
        r.family(name, kind, help);
        for s in sessions {
            let id = s.id.to_string();
            for q in &s.stats.queries {
                let qid = q.id.0.to_string();
                r.series(name, &[("session", &id), ("query", &qid)], get(q));
            }
        }
    }

    // Per-shard vectors: one series per (session, shard).
    r.family(
        "greta_shard_events_total",
        "counter",
        "Events routed to each shard.",
    );
    for s in sessions {
        let id = s.id.to_string();
        for (shard, &n) in s.stats.events_per_shard.iter().enumerate() {
            let shard = shard.to_string();
            r.series(
                "greta_shard_events_total",
                &[("session", &id), ("shard", &shard)],
                n as f64,
            );
        }
    }
    r.family(
        "greta_shard_channel_occupancy_frames",
        "gauge",
        "Frames queued in each shard's input channel.",
    );
    for s in sessions {
        let id = s.id.to_string();
        for (shard, &n) in s.stats.channel_occupancy.iter().enumerate() {
            let shard = shard.to_string();
            r.series(
                "greta_shard_channel_occupancy_frames",
                &[("session", &id), ("shard", &shard)],
                n as f64,
            );
        }
    }
    r.family(
        "greta_merge_frontier_lag_windows",
        "gauge",
        "Windows each shard's merge frontier lags behind the most advanced shard.",
    );
    for s in sessions {
        let id = s.id.to_string();
        for (shard, &lag) in s.stats.merge_frontier_lag.iter().enumerate() {
            let shard = shard.to_string();
            r.series(
                "greta_merge_frontier_lag_windows",
                &[("session", &id), ("shard", &shard)],
                lag as f64,
            );
        }
    }

    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(sessions: &[SessionMetrics<'_>]) -> String {
        render(
            &ServerMetrics {
                connections: 3,
                frames: 10,
                protocol_errors: 1,
                http_requests: 2,
                sessions: sessions.len(),
                draining: false,
            },
            sessions,
        )
    }

    #[test]
    fn renders_all_families_with_help_and_type() {
        let stats = ExecutorStats {
            pushed: 5,
            query_epoch: 2,
            queries: vec![
                greta_core::QueryStreamStats {
                    id: greta_core::QueryId(0),
                    rows: 7,
                    shares_primary_routing: true,
                    active: true,
                    ..Default::default()
                },
                greta_core::QueryStreamStats {
                    id: greta_core::QueryId(1),
                    rows: 3,
                    pending_rows: 1,
                    active: true,
                    ..Default::default()
                },
            ],
            events_per_shard: vec![3, 2],
            channel_occupancy: vec![0, 1],
            merge_frontier_lag: vec![0, 4],
            ..Default::default()
        };
        let queries = vec![
            (0u32, "RETURN COUNT(*) PATTERN SEQ(A a)".to_string()),
            (1u32, "RETURN COUNT(*) PATTERN SEQ(B b)".to_string()),
        ];
        let text = page(&[SessionMetrics {
            id: 1,
            query: "RETURN COUNT(*) PATTERN SEQ(A a)",
            drained: false,
            stats,
            queries: &queries,
        }]);
        // Valid exposition format: every series line's metric name has a
        // preceding HELP/TYPE header.
        assert!(text.contains("# HELP greta_events_pushed_total"));
        assert!(text.contains("# TYPE greta_events_pushed_total counter"));
        assert!(text.contains("greta_events_pushed_total{session=\"1\"} 5"));
        assert!(text.contains("greta_shard_events_total{session=\"1\",shard=\"0\"} 3"));
        assert!(text.contains("greta_merge_frontier_lag_windows{session=\"1\",shard=\"1\"} 4"));
        assert!(text.contains("greta_session_info{session=\"1\",query="));
        // Per-query families: one series per (session, query).
        assert!(text.contains("greta_query_epoch{session=\"1\"} 2"));
        assert!(text.contains("greta_query_rows_total{session=\"1\",query=\"0\"} 7"));
        assert!(text.contains("greta_query_rows_total{session=\"1\",query=\"1\"} 3"));
        assert!(text.contains("greta_query_pending_rows{session=\"1\",query=\"1\"} 1"));
        assert!(text.contains(
            "greta_query_info{session=\"1\",query=\"1\",text=\"RETURN COUNT(*) PATTERN SEQ(B b)\""
        ));
        assert!(text.contains("shares_primary_routing=\"true\""));
        // At least 12 distinct ExecutorStats-backed families.
        let families = text
            .lines()
            .filter(|l| l.starts_with("# TYPE greta_"))
            .count();
        assert!(families >= 12, "only {families} families");
    }

    #[test]
    fn label_values_are_escaped() {
        let text = page(&[SessionMetrics {
            id: 2,
            query: "line1\nline2 \"quoted\" back\\slash",
            drained: true,
            stats: ExecutorStats::default(),
            queries: &[],
        }]);
        assert!(text.contains("line1\\nline2 \\\"quoted\\\" back\\\\slash"));
    }
}
