//! The TCP front-end: a nonblocking accept loop, protocol sniffing, and
//! the binary request/response connection loop.
//!
//! One port serves three protocols, told apart by peeking the first
//! bytes of each connection: the 6-byte `GRTA` preamble selects the
//! binary protocol, an HTTP verb selects the metrics endpoint, and `{`
//! selects newline-delimited JSON. Each connection gets its own thread
//! (the workspace is offline/vendored-deps-only, so no async runtime);
//! each session gets its own executor-owning thread (see
//! [`crate::session`]).
//!
//! Lock discipline (checked by `greta-lint`): registry locks are
//! acquired in the declared order below and never held across a socket
//! write — a stalled peer must not be able to freeze the registry.

// lint:lock-order: sessions < drained_tail < last_stats < query_texts < join

use crate::metrics::{self, ServerMetrics, SessionMetrics};
use crate::protocol::{self, ProtoError, Request, Response, SessionOptions};
use crate::session::{spawn_session, SessionCmd, SessionHandle, SubMsg};
use crate::{http, jsonl};
use crossbeam::channel::bounded;
use greta_query::compile::CompiledQuery;
use greta_types::{Event, SchemaRegistry};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Drained sessions kept findable (idempotent drain, post-drain error
/// messages, `/metrics` observability) before the oldest is forgotten —
/// bounds the registry and the metrics page on a long-running server.
const DRAINED_TAIL_MAX: usize = 16;
/// A fresh connection must present a recognizable protocol (4 sniffable
/// bytes) within this deadline or it is closed — no thread is pinned by
/// a peer that connects and stalls.
const SNIFF_DEADLINE: Duration = Duration::from_secs(2);
/// Per-read timeout on established connections: a peer that stalls
/// mid-frame (or idles this long between requests) is disconnected.
const READ_IDLE_TIMEOUT: Duration = Duration::from_secs(600);

/// Shared server state: the session registry and page-level counters.
pub(crate) struct Shared {
    sessions: Mutex<HashMap<u64, Arc<SessionHandle>>>,
    /// Most recent drained sessions, oldest first (see
    /// [`DRAINED_TAIL_MAX`]).
    drained_tail: Mutex<VecDeque<Arc<SessionHandle>>>,
    next_session: AtomicU64,
    /// Stops the accept loop.
    stop: AtomicBool,
    /// Refuses new sessions and ingest while a shutdown drain runs.
    draining: AtomicBool,
    pub(crate) connections: AtomicU64,
    pub(crate) frames: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) http_requests: AtomicU64,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            sessions: Mutex::new(HashMap::new()),
            drained_tail: Mutex::new(VecDeque::new()),
            next_session: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
        }
    }

    fn session(&self, id: u64) -> Result<Arc<SessionHandle>, String> {
        if let Some(h) = self
            .sessions
            .lock()
            .map_err(|_| "session registry poisoned".to_string())?
            .get(&id)
        {
            return Ok(Arc::clone(h));
        }
        self.drained_tail
            .lock()
            .ok()
            .and_then(|g| g.iter().find(|h| h.id == id).cloned())
            .ok_or_else(|| format!("unknown session {id}"))
    }

    /// Move a session whose thread has ended out of the live registry
    /// into the bounded drained tail, evicting the oldest entry. Without
    /// this a long-running server would leak one handle (query text,
    /// stats, metrics series) per session forever.
    fn retire(&self, id: u64) {
        let Some(h) = self.sessions.lock().ok().and_then(|mut g| g.remove(&id)) else {
            return;
        };
        if let Ok(mut tail) = self.drained_tail.lock() {
            tail.push_back(h);
            while tail.len() > DRAINED_TAIL_MAX {
                tail.pop_front();
            }
        }
    }

    /// Compile the query and start a session — or, with `attach_to`,
    /// register it as an additional query on an existing session's
    /// shared ingest stream. Returns `(session, query)`; the query id is
    /// `0` for a new session. Refused while draining.
    pub(crate) fn submit(
        &self,
        query_text: &str,
        registry: SchemaRegistry,
        options: SessionOptions,
        attach_to: Option<u64>,
    ) -> Result<(u64, u32), String> {
        if self.draining.load(Ordering::SeqCst) {
            return Err("server is draining; no new sessions".into());
        }
        if let Some(sid) = attach_to {
            let h = self.session(sid)?;
            if h.drained.load(Ordering::SeqCst) {
                return Err(format!("session {sid} is drained"));
            }
            // The session thread compiles against its own registry — one
            // stream, one schema set — and runs the register barrier.
            let (reply_tx, reply_rx) = bounded(1);
            h.cmd_tx
                .send(SessionCmd::Register {
                    text: query_text.to_string(),
                    emission: options.emission,
                    reply: reply_tx,
                })
                .map_err(|_| format!("session {sid} is gone"))?;
            let q = reply_rx
                .recv()
                .map_err(|_| format!("session {sid} died during register"))??;
            return Ok((sid, q));
        }
        let compiled =
            CompiledQuery::parse(query_text, &registry).map_err(|e| format!("query error: {e}"))?;
        let id = self.next_session.fetch_add(1, Ordering::SeqCst);
        let handle = spawn_session(id, query_text.to_string(), compiled, registry, options)?;
        self.sessions
            .lock()
            .map_err(|_| "session registry poisoned".to_string())?
            .insert(id, Arc::new(handle));
        Ok((id, 0))
    }

    /// Deregister a query from a live session; returns its undelivered
    /// remainder (see [`SessionCmd::Deregister`]).
    pub(crate) fn detach(
        &self,
        id: u64,
        query: u32,
    ) -> Result<Vec<greta_core::WindowResult<f64>>, String> {
        let h = self.session(id)?;
        if h.drained.load(Ordering::SeqCst) {
            return Err(format!("session {id} is drained"));
        }
        let (reply_tx, reply_rx) = bounded(1);
        h.cmd_tx
            .send(SessionCmd::Deregister {
                query,
                reply: reply_tx,
            })
            .map_err(|_| format!("session {id} is gone"))?;
        reply_rx
            .recv()
            .map_err(|_| format!("session {id} died during detach"))?
    }

    /// Check a session id exists (the `Attach` frame).
    pub(crate) fn attach(&self, id: u64) -> Result<u64, String> {
        self.session(id).map(|h| h.id)
    }

    /// Forward one ingest batch and wait for the ack.
    pub(crate) fn ingest(
        &self,
        id: u64,
        events: Vec<Event>,
    ) -> Result<protocol::IngestAck, String> {
        if self.draining.load(Ordering::SeqCst) {
            return Err("server is draining; ingest refused".into());
        }
        let h = self.session(id)?;
        if h.drained.load(Ordering::SeqCst) {
            return Err(format!("session {id} is drained"));
        }
        let (reply_tx, reply_rx) = bounded(1);
        h.cmd_tx
            .send(SessionCmd::Ingest {
                events,
                reply: reply_tx,
            })
            .map_err(|_| format!("session {id} is gone"))?;
        reply_rx
            .recv()
            .map_err(|_| format!("session {id} died during ingest"))?
    }

    /// Register a subscriber channel on one query of a session. Returns
    /// `None` when the session already drained (the caller should send
    /// `End`). An unknown query id yields a live channel that receives
    /// an immediate `End` from the session thread.
    pub(crate) fn subscribe(
        &self,
        id: u64,
        query: u32,
    ) -> Result<Option<crossbeam::channel::Receiver<SubMsg>>, String> {
        let h = self.session(id)?;
        let (tx, rx) = SessionHandle::subscriber_channel();
        if h.drained.load(Ordering::SeqCst)
            || h.cmd_tx.send(SessionCmd::Subscribe { query, tx }).is_err()
        {
            return Ok(None);
        }
        Ok(Some(rx))
    }

    /// Drain one session (idempotent), then retire it to the bounded
    /// drained tail.
    pub(crate) fn drain_session(&self, id: u64) -> Result<(), String> {
        let res = self.session(id)?.drain_blocking();
        // The session thread has ended (cleanly or not) — either way it
        // no longer serves commands, so it leaves the live registry.
        self.retire(id);
        res
    }

    /// Drain every session and refuse new work from now on.
    pub(crate) fn drain_all(&self) -> Result<(), String> {
        self.draining.store(true, Ordering::SeqCst);
        let handles: Vec<Arc<SessionHandle>> = match self.sessions.lock() {
            Ok(g) => g.values().cloned().collect(),
            Err(_) => return Err("session registry poisoned".into()),
        };
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.drain_blocking() {
                first_err.get_or_insert(e);
            }
            self.retire(h.id);
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Render the Prometheus metrics page: live sessions plus the
    /// bounded tail of recently drained ones.
    pub(crate) fn metrics_text(&self) -> String {
        let mut handles: Vec<Arc<SessionHandle>> = self
            .sessions
            .lock()
            .map(|g| g.values().cloned().collect())
            .unwrap_or_default();
        let live = handles.len();
        if let Ok(tail) = self.drained_tail.lock() {
            handles.extend(tail.iter().cloned());
        }
        type SessionRow = (
            u64,
            String,
            bool,
            greta_core::ExecutorStats,
            Vec<(u32, String)>,
        );
        let mut rows: Vec<SessionRow> = handles
            .iter()
            .map(|h| {
                let stats = h.last_stats.lock().map(|g| g.clone()).unwrap_or_default();
                let texts = h.query_texts.lock().map(|g| g.clone()).unwrap_or_default();
                (
                    h.id,
                    h.query_text.clone(),
                    h.drained.load(Ordering::SeqCst),
                    stats,
                    texts,
                )
            })
            .collect();
        rows.sort_by_key(|r| r.0);
        let sessions: Vec<SessionMetrics<'_>> = rows
            .iter()
            .map(|(id, query, drained, stats, texts)| SessionMetrics {
                id: *id,
                query,
                drained: *drained,
                stats: stats.clone(),
                queries: texts,
            })
            .collect();
        metrics::render(
            &ServerMetrics {
                connections: self.connections.load(Ordering::Relaxed),
                frames: self.frames.load(Ordering::Relaxed),
                protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
                http_requests: self.http_requests.load(Ordering::Relaxed),
                sessions: live,
                draining: self.draining.load(Ordering::SeqCst),
            },
            &sessions,
        )
    }
}

/// A running GRETA network front-end bound to a local address.
///
/// Dropping the server aborts it (sessions are dropped without a drain —
/// the crash path; with durability the WAL allows full recovery). Call
/// [`shutdown`](Self::shutdown) for the graceful path.
pub struct GretaServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl GretaServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<GretaServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared::new());
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("greta-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(GretaServer {
            shared,
            accept: Some(accept),
            addr: local,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain every session (flush
    /// ordered output, terminal checkpoint, end subscriptions).
    pub fn shutdown(mut self) -> Result<(), String> {
        let res = self.shared.drain_all();
        self.stop_accept();
        res
    }

    /// Abrupt stop for crash testing: drop every session without a
    /// drain. Durable sessions leave only their WAL + last checkpoint
    /// behind, exactly like a process kill.
    pub fn abort(mut self) {
        self.abort_in_place();
    }

    fn abort_in_place(&mut self) {
        let handles: Vec<Arc<SessionHandle>> = match self.shared.sessions.lock() {
            Ok(mut g) => g.drain().map(|(_, h)| h).collect(),
            Err(_) => Vec::new(),
        };
        let joins: Vec<_> = handles
            .iter()
            .filter_map(|h| h.join.lock().ok().and_then(|mut g| g.take()))
            .collect();
        // Dropping the handles drops the command senders; session
        // threads observe the disconnect and exit without draining.
        // Joining afterwards makes the on-disk WAL state settled by the
        // time abort returns — nothing mutates the durability dir later.
        drop(handles);
        for j in joins {
            let _ = j.join();
        }
        self.stop_accept();
    }

    fn stop_accept(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
    }
}

impl Drop for GretaServer {
    fn drop(&mut self) {
        self.abort_in_place();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("greta-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Peek the first bytes to pick a protocol, then run its loop. A peer
/// that fails to present 4 bytes within [`SNIFF_DEADLINE`] is dropped,
/// and established connections carry [`READ_IDLE_TIMEOUT`] so a peer
/// stalling mid-frame cannot pin a thread forever.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + SNIFF_DEADLINE;
    let mut first = [0u8; 4];
    loop {
        match stream.peek(&mut first) {
            Ok(0) => return, // closed before a byte arrived
            Ok(n) if n < 4 => std::thread::sleep(Duration::from_millis(1)),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
        if Instant::now() >= deadline {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    let _ = stream.set_read_timeout(Some(READ_IDLE_TIMEOUT));
    if first == protocol::MAGIC {
        binary_connection(stream, &shared);
    } else if matches!(&first, b"GET " | b"HEAD" | b"POST" | b"PUT ") {
        http::handle(stream, &shared);
    } else if matches!(first, [b'{', ..]) {
        jsonl::handle(stream, &shared);
    } else {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        // Consume the peeked bytes so closing sends a clean FIN instead
        // of an RST (unread receive-buffer data turns close into reset).
        let mut sink = [0u8; 4];
        let mut reader = &stream;
        let _ = std::io::Read::read(&mut reader, &mut sink);
    }
}

fn binary_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if protocol::read_preamble(&mut stream).is_err() {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    loop {
        let req = match protocol::read_request(&mut stream) {
            Ok(r) => r,
            Err(ProtoError::Closed) => return,
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ =
                    protocol::write_response(&mut stream, &Response::Error { msg: e.to_string() });
                return;
            }
        };
        shared.frames.fetch_add(1, Ordering::Relaxed);
        let keep_going = serve_request(&mut stream, shared, req);
        if !keep_going {
            return;
        }
    }
}

/// Serve one decoded request; returns false when the connection should
/// close (write failure).
fn serve_request(stream: &mut TcpStream, shared: &Arc<Shared>, req: Request) -> bool {
    let resp = match req {
        Request::Submit {
            query,
            registry,
            options,
            attach_to,
        } => match shared.submit(&query, registry, options, attach_to) {
            Ok((session, query)) => Response::SubmitOk { session, query },
            Err(msg) => Response::Error { msg },
        },
        Request::Attach { session } => match shared.attach(session) {
            Ok(session) => Response::SubmitOk { session, query: 0 },
            Err(msg) => Response::Error { msg },
        },
        Request::Ingest { session, events } => match shared.ingest(session, events) {
            Ok(ack) => Response::Ack(ack),
            Err(msg) => Response::Error { msg },
        },
        Request::Subscribe { session, query } => {
            return serve_subscription(stream, shared, session, query);
        }
        Request::Detach { session, query } => match shared.detach(session, query) {
            Ok(rows) => Response::DetachOk {
                session,
                query,
                rows,
            },
            Err(msg) => Response::Error { msg },
        },
        Request::Drain { session } => match shared.drain_session(session) {
            Ok(()) => Response::DrainOk { session },
            Err(msg) => Response::Error { msg },
        },
        Request::Shutdown => match shared.drain_all() {
            Ok(()) => Response::ShutdownOk,
            Err(msg) => Response::Error { msg },
        },
        Request::Stats => Response::StatsText {
            text: shared.metrics_text(),
        },
        Request::Ping => Response::Pong,
    };
    protocol::write_response(stream, &resp).is_ok()
}

/// Stream one query's `Rows` frames until it detaches or the session
/// drains (`End`), then return to the request loop.
fn serve_subscription(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    session: u64,
    query: u32,
) -> bool {
    let rx = match shared.subscribe(session, query) {
        Ok(Some(rx)) => rx,
        Ok(None) => {
            // Already drained: nothing more will ever arrive.
            return protocol::write_response(stream, &Response::End { session, query }).is_ok();
        }
        Err(msg) => return protocol::write_response(stream, &Response::Error { msg }).is_ok(),
    };
    loop {
        match rx.recv() {
            Ok(SubMsg::Rows(rows)) => {
                if protocol::write_response(
                    stream,
                    &Response::Rows {
                        session,
                        query,
                        rows,
                    },
                )
                .is_err()
                {
                    return false;
                }
            }
            Ok(SubMsg::End) | Err(_) => {
                return protocol::write_response(stream, &Response::End { session, query }).is_ok();
            }
        }
    }
}
