//! Minimal HTTP/1.1 handler for `GET /metrics` and `GET /healthz`.
//!
//! Enough of HTTP for a Prometheus scraper and a liveness probe: one
//! request per connection, `Connection: close`, no keep-alive, request
//! head capped at 8 KiB.

use crate::server::Shared;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Serve one HTTP request on `stream` and close.
pub(crate) fn handle(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.http_requests.fetch_add(1, Ordering::Relaxed);
    let head = match read_head(&mut stream) {
        Some(h) => h,
        None => return,
    };
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.metrics_text(),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Read until the blank line ending the request head (or give up).
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while buf.len() < MAX_HEAD_BYTES {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                let [b] = byte;
                buf.push(b);
                if buf.ends_with(b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    String::from_utf8(buf).ok()
}
