//! The length-prefixed binary wire protocol.
//!
//! Every frame is `u32` little-endian payload length, then a one-byte
//! frame kind, then a kind-specific payload encoded with
//! [`greta_types::codec`] primitives — the same codec durability
//! snapshots and result rows already use, so events and rows cross the
//! wire byte-identical to their on-disk form. A connection opens with the
//! 6-byte preamble `b"GRTA"` + `u16` protocol version; the server sniffs
//! it to tell binary clients apart from JSON-line and HTTP clients on the
//! same port.
//!
//! Frames larger than [`MAX_FRAME_BYTES`] are refused before the payload
//! is read, so a hostile length prefix cannot make the server allocate.

use greta_core::{EmissionMode, LatePolicy, WindowResult};
use greta_types::codec::{put_str, put_u32, put_u64};
use greta_types::{CodecError, Event, Reader, SchemaRegistry};
use std::io::{self, Read, Write};

/// Connection preamble magic for the binary protocol.
pub const MAGIC: [u8; 4] = *b"GRTA";
/// Binary protocol version carried after [`MAGIC`].
///
/// Version 2 made sessions multi-query: `Submit` can attach a query to
/// an existing session, `SubmitOk` carries the assigned query id,
/// `Subscribe`/`Rows`/`End` are query-scoped, and `Detach` deregisters
/// a query mid-stream, returning its final rows.
pub const VERSION: u16 = 2;
/// Hard cap on a single frame's payload (16 MiB). The length prefix is
/// validated against this before any payload allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Wire protocol failures: transport, framing, or payload decoding.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// Socket-level failure.
    Io(io::Error),
    /// A frame's length prefix exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge(u64),
    /// The payload did not decode as the declared frame kind.
    Codec(CodecError),
    /// Unknown frame kind, bad preamble, or other framing violation.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "io error: {e}"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds limit of {MAX_FRAME_BYTES}")
            }
            ProtoError::Codec(e) => write!(f, "frame decode error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Closed
        } else {
            ProtoError::Io(e)
        }
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> Self {
        ProtoError::Codec(e)
    }
}

/// Per-session executor options carried by [`Request::Submit`].
///
/// The wire default emission mode is [`EmissionMode::WindowOrdered`]:
/// a remote subscriber sees rows in the canonical `(window, group)`
/// order without trusting shard interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOptions {
    /// Shard (worker thread) count; `0` is normalised to 1.
    pub shards: u32,
    /// Reorder-buffer slack in time units.
    pub slack: u64,
    /// Policy for events older than the watermark.
    pub late_policy: LatePolicy,
    /// Result emission mode.
    pub emission: EmissionMode,
    /// Router batch size.
    pub batch_size: u32,
    /// Per-shard input channel capacity (frames).
    pub channel_capacity: u32,
    /// Result channel capacity (rows); also the session's pending-row
    /// high-water mark that drives the `busy` ack bit.
    pub result_capacity: u32,
    /// Durability directory; `None` runs without a WAL.
    pub durability_dir: Option<String>,
    /// Recover from `durability_dir` instead of requiring it fresh.
    pub recover: bool,
    /// Checkpoint cadence in closed windows; `0` keeps the durability
    /// default. Large values defer all checkpointing to the terminal
    /// one taken at drain.
    pub snapshot_every_windows: u64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            shards: 1,
            slack: 0,
            late_policy: LatePolicy::Drop,
            emission: EmissionMode::WindowOrdered,
            batch_size: 64,
            channel_capacity: 4096,
            result_capacity: 1 << 16,
            durability_dir: None,
            recover: false,
            snapshot_every_windows: 0,
        }
    }
}

/// Acknowledgement for one [`Request::Ingest`] frame — the backpressure
/// contract: `durable` tells the client how much of the stream survives
/// a crash, `busy` tells it to back off before the reorder buffer or
/// result channel overruns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestAck {
    /// Session the ack belongs to.
    pub session: u64,
    /// Total events accepted by the session so far.
    pub pushed: u64,
    /// WAL records appended so far (the durable watermark); `None`
    /// without durability.
    pub durable: Option<u64>,
    /// Event-time ingest watermark; `None` before the first release.
    pub watermark: Option<u64>,
    /// Credit signal: when set, the executor's channels are at least
    /// half full and the client should pause before the next batch.
    pub busy: bool,
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile `query` and either start a session or, with `attach_to`,
    /// register it as an additional query on an existing session's
    /// shared ingest stream.
    Submit {
        /// Query-language text (see `greta-query`).
        query: String,
        /// Event schemas the query and its events refer to. Ignored when
        /// `attach_to` is set — an attached query compiles against the
        /// target session's registry (one stream, one schema set).
        registry: SchemaRegistry,
        /// Executor options. For an attached query only
        /// [`SessionOptions::emission`] applies (the session's executor
        /// already fixed sharding, slack, and durability).
        options: SessionOptions,
        /// `None` starts a new session; `Some(id)` registers the query
        /// on session `id`, sharing its ingest plane.
        attach_to: Option<u64>,
    },
    /// Bind this connection to an existing session.
    Attach {
        /// Session id from a previous `Submit`.
        session: u64,
    },
    /// Push a batch of events into a session.
    Ingest {
        /// Target session.
        session: u64,
        /// Events in stream order.
        events: Vec<Event>,
    },
    /// Stream one query's results over this connection until the query
    /// detaches or the session drains.
    Subscribe {
        /// Target session.
        session: u64,
        /// Target query within the session (`0` = the primary query).
        query: u32,
    },
    /// Deregister a query from a session mid-stream (barrier cut). The
    /// reply carries the query's final rows; its subscriptions end.
    Detach {
        /// Target session.
        session: u64,
        /// Query to deregister (the primary query `0` cannot detach —
        /// drain the session instead).
        query: u32,
    },
    /// Gracefully drain one session: flush ordered output, take a
    /// terminal checkpoint, end its subscriptions.
    Drain {
        /// Target session.
        session: u64,
    },
    /// Drain every session and stop accepting new work.
    Shutdown,
    /// Fetch the Prometheus metrics text over the binary protocol.
    Stats,
    /// Liveness probe.
    Ping,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session created (or attached, or a query registered).
    SubmitOk {
        /// The session id to use in subsequent frames.
        session: u64,
        /// The query id within the session: `0` for a new session's
        /// primary query, the assigned id for a `Submit` with
        /// `attach_to`.
        query: u32,
    },
    /// Ingest acknowledgement.
    Ack(IngestAck),
    /// A batch of result rows for a subscription.
    Rows {
        /// Source session.
        session: u64,
        /// Source query within the session.
        query: u32,
        /// Result rows; under `WindowOrdered` these arrive in canonical
        /// `(window, group)` order across all `Rows` frames.
        rows: Vec<WindowResult<f64>>,
    },
    /// Subscription terminator: the query detached or the session
    /// drained; no more rows.
    End {
        /// Source session.
        session: u64,
        /// Source query within the session.
        query: u32,
    },
    /// Detach finished; the query is deregistered.
    DetachOk {
        /// The session the query detached from.
        session: u64,
        /// The deregistered query.
        query: u32,
        /// The query's undelivered remainder: rows released by the
        /// detach barrier (plus everything still pending when nothing
        /// ever subscribed). Disjoint from rows already streamed to
        /// subscribers — union is exactly-once.
        rows: Vec<WindowResult<f64>>,
    },
    /// Drain finished; the durability directory (if any) holds a
    /// terminal checkpoint.
    DrainOk {
        /// Drained session.
        session: u64,
    },
    /// All sessions drained; the server stops accepting new work.
    ShutdownOk,
    /// Prometheus metrics text.
    StatsText {
        /// The `/metrics` document.
        text: String,
    },
    /// Liveness reply.
    Pong,
    /// Request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        msg: String,
    },
}

const K_SUBMIT: u8 = 0x01;
const K_ATTACH: u8 = 0x02;
const K_INGEST: u8 = 0x03;
const K_SUBSCRIBE: u8 = 0x04;
const K_DRAIN: u8 = 0x05;
const K_SHUTDOWN: u8 = 0x06;
const K_STATS: u8 = 0x07;
const K_PING: u8 = 0x08;
const K_DETACH: u8 = 0x09;

const K_SUBMIT_OK: u8 = 0x81;
const K_ACK: u8 = 0x82;
const K_ROWS: u8 = 0x83;
const K_DRAIN_OK: u8 = 0x84;
const K_ERROR: u8 = 0x85;
const K_STATS_TEXT: u8 = 0x86;
const K_PONG: u8 = 0x87;
const K_SHUTDOWN_OK: u8 = 0x88;
const K_END: u8 = 0x89;
const K_DETACH_OK: u8 = 0x8A;

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(CodecError(format!("bad option tag {t}"))),
    }
}

fn late_policy_byte(p: LatePolicy) -> u8 {
    match p {
        LatePolicy::Drop => 0,
        LatePolicy::Divert => 1,
        LatePolicy::Error => 2,
    }
}

fn late_policy_from(b: u8) -> Result<LatePolicy, CodecError> {
    match b {
        0 => Ok(LatePolicy::Drop),
        1 => Ok(LatePolicy::Divert),
        2 => Ok(LatePolicy::Error),
        t => Err(CodecError(format!("bad late policy {t}"))),
    }
}

fn emission_byte(e: EmissionMode) -> u8 {
    match e {
        EmissionMode::Unordered => 0,
        EmissionMode::WindowOrdered => 1,
    }
}

fn emission_from(b: u8) -> Result<EmissionMode, CodecError> {
    match b {
        0 => Ok(EmissionMode::Unordered),
        1 => Ok(EmissionMode::WindowOrdered),
        t => Err(CodecError(format!("bad emission mode {t}"))),
    }
}

impl SessionOptions {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shards);
        put_u64(out, self.slack);
        out.push(late_policy_byte(self.late_policy));
        out.push(emission_byte(self.emission));
        put_u32(out, self.batch_size);
        put_u32(out, self.channel_capacity);
        put_u32(out, self.result_capacity);
        match &self.durability_dir {
            None => out.push(0),
            Some(d) => {
                out.push(1);
                put_str(out, d);
            }
        }
        out.push(self.recover as u8);
        put_u64(out, self.snapshot_every_windows);
    }

    fn decode(r: &mut Reader<'_>) -> Result<SessionOptions, CodecError> {
        Ok(SessionOptions {
            shards: r.u32()?,
            slack: r.u64()?,
            late_policy: late_policy_from(r.u8()?)?,
            emission: emission_from(r.u8()?)?,
            batch_size: r.u32()?,
            channel_capacity: r.u32()?,
            result_capacity: r.u32()?,
            durability_dir: match r.u8()? {
                0 => None,
                1 => Some(r.str()?.to_string()),
                t => return Err(CodecError(format!("bad option tag {t}"))),
            },
            recover: r.u8()? != 0,
            snapshot_every_windows: r.u64()?,
        })
    }
}

impl Request {
    /// Append this frame's kind byte and payload to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Submit {
                query,
                registry,
                options,
                attach_to,
            } => {
                out.push(K_SUBMIT);
                put_str(out, query);
                registry.encode(out);
                options.encode(out);
                put_opt_u64(out, *attach_to);
            }
            Request::Attach { session } => {
                out.push(K_ATTACH);
                put_u64(out, *session);
            }
            Request::Ingest { session, events } => {
                out.push(K_INGEST);
                put_u64(out, *session);
                put_u32(out, events.len() as u32);
                for e in events {
                    e.encode(out);
                }
            }
            Request::Subscribe { session, query } => {
                out.push(K_SUBSCRIBE);
                put_u64(out, *session);
                put_u32(out, *query);
            }
            Request::Detach { session, query } => {
                out.push(K_DETACH);
                put_u64(out, *session);
                put_u32(out, *query);
            }
            Request::Drain { session } => {
                out.push(K_DRAIN);
                put_u64(out, *session);
            }
            Request::Shutdown => out.push(K_SHUTDOWN),
            Request::Stats => out.push(K_STATS),
            Request::Ping => out.push(K_PING),
        }
    }

    /// Decode a frame payload (kind byte first) written by
    /// [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        let req = match kind {
            K_SUBMIT => Request::Submit {
                query: r.str()?.to_string(),
                registry: SchemaRegistry::decode(&mut r)?,
                options: SessionOptions::decode(&mut r)?,
                attach_to: get_opt_u64(&mut r)?,
            },
            K_ATTACH => Request::Attach { session: r.u64()? },
            K_INGEST => {
                let session = r.u64()?;
                let n = r.seq_len(10)?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(Event::decode(&mut r)?);
                }
                Request::Ingest { session, events }
            }
            K_SUBSCRIBE => Request::Subscribe {
                session: r.u64()?,
                query: r.u32()?,
            },
            K_DETACH => Request::Detach {
                session: r.u64()?,
                query: r.u32()?,
            },
            K_DRAIN => Request::Drain { session: r.u64()? },
            K_SHUTDOWN => Request::Shutdown,
            K_STATS => Request::Stats,
            K_PING => Request::Ping,
            k => {
                return Err(ProtoError::Malformed(format!(
                    "unknown request kind {k:#x}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after request kind {kind:#x}",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

impl Response {
    /// Append this frame's kind byte and payload to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::SubmitOk { session, query } => {
                out.push(K_SUBMIT_OK);
                put_u64(out, *session);
                put_u32(out, *query);
            }
            Response::Ack(a) => {
                out.push(K_ACK);
                put_u64(out, a.session);
                put_u64(out, a.pushed);
                put_opt_u64(out, a.durable);
                put_opt_u64(out, a.watermark);
                out.push(a.busy as u8);
            }
            Response::Rows {
                session,
                query,
                rows,
            } => {
                out.push(K_ROWS);
                put_u64(out, *session);
                put_u32(out, *query);
                put_u32(out, rows.len() as u32);
                for row in rows {
                    row.encode(out);
                }
            }
            Response::End { session, query } => {
                out.push(K_END);
                put_u64(out, *session);
                put_u32(out, *query);
            }
            Response::DetachOk {
                session,
                query,
                rows,
            } => {
                out.push(K_DETACH_OK);
                put_u64(out, *session);
                put_u32(out, *query);
                put_u32(out, rows.len() as u32);
                for row in rows {
                    row.encode(out);
                }
            }
            Response::DrainOk { session } => {
                out.push(K_DRAIN_OK);
                put_u64(out, *session);
            }
            Response::ShutdownOk => out.push(K_SHUTDOWN_OK),
            Response::StatsText { text } => {
                out.push(K_STATS_TEXT);
                put_str(out, text);
            }
            Response::Pong => out.push(K_PONG),
            Response::Error { msg } => {
                out.push(K_ERROR);
                put_str(out, msg);
            }
        }
    }

    /// Decode a frame payload (kind byte first) written by
    /// [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        let resp = match kind {
            K_SUBMIT_OK => Response::SubmitOk {
                session: r.u64()?,
                query: r.u32()?,
            },
            K_ACK => Response::Ack(IngestAck {
                session: r.u64()?,
                pushed: r.u64()?,
                durable: get_opt_u64(&mut r)?,
                watermark: get_opt_u64(&mut r)?,
                busy: r.u8()? != 0,
            }),
            K_ROWS => {
                let session = r.u64()?;
                let query = r.u32()?;
                let n = r.seq_len(8)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(WindowResult::decode(&mut r)?);
                }
                Response::Rows {
                    session,
                    query,
                    rows,
                }
            }
            K_END => Response::End {
                session: r.u64()?,
                query: r.u32()?,
            },
            K_DETACH_OK => {
                let session = r.u64()?;
                let query = r.u32()?;
                let n = r.seq_len(8)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(WindowResult::decode(&mut r)?);
                }
                Response::DetachOk {
                    session,
                    query,
                    rows,
                }
            }
            K_DRAIN_OK => Response::DrainOk { session: r.u64()? },
            K_SHUTDOWN_OK => Response::ShutdownOk,
            K_STATS_TEXT => Response::StatsText {
                text: r.str()?.to_string(),
            },
            K_PONG => Response::Pong,
            K_ERROR => Response::Error {
                msg: r.str()?.to_string(),
            },
            k => {
                return Err(ProtoError::Malformed(format!(
                    "unknown response kind {k:#x}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after response kind {kind:#x}",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

/// Write the binary connection preamble (`b"GRTA"` + version).
pub fn write_preamble(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())
}

/// Consume and validate the preamble written by [`write_preamble`].
pub fn read_preamble(r: &mut impl Read) -> Result<(), ProtoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ProtoError::Malformed("bad magic".into()));
    }
    let mut version_bytes = [0u8; 2];
    r.read_exact(&mut version_bytes)?;
    let version = u16::from_le_bytes(version_bytes);
    if version != VERSION {
        return Err(ProtoError::Malformed(format!(
            "unsupported protocol version {version} (expected {VERSION})"
        )));
    }
    Ok(())
}

fn write_payload(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    // Refuse before writing anything: the peer would reject the frame
    // anyway, and past u32::MAX the length prefix would silently wrap
    // and desync the stream. Nothing has touched the socket on error,
    // so callers may split and retry (see `Client::ingest`).
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::FrameTooLarge(payload.len() as u64));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame payload. Fails fast on a length prefix
/// beyond [`MAX_FRAME_BYTES`] without reading (or allocating) the body.
pub fn read_payload(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut len4 = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len4) {
        return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Closed
        } else {
            ProtoError::Io(e)
        });
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 {
        return Err(ProtoError::Malformed("empty frame".into()));
    }
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::FrameTooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one request frame (length prefix + kind + payload).
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), ProtoError> {
    let mut payload = Vec::new();
    req.encode(&mut payload);
    write_payload(w, &payload)
}

/// Read one request frame.
pub fn read_request(r: &mut impl Read) -> Result<Request, ProtoError> {
    Request::decode(&read_payload(r)?)
}

/// Write one response frame (length prefix + kind + payload).
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), ProtoError> {
    let mut payload = Vec::new();
    resp.encode(&mut payload);
    write_payload(w, &payload)
}

/// Read one response frame.
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtoError> {
    Response::decode(&read_payload(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_core::{OutValue, PartitionKey};
    use greta_types::{Time, TypeId, Value};

    fn sample_registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Stock", &["id", "price"]).unwrap();
        reg
    }

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_request(&mut buf.as_slice()).unwrap();
        assert_eq!(got, req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Submit {
            query: "RETURN COUNT(*) PATTERN SEQ(Stock s)".into(),
            registry: sample_registry(),
            options: SessionOptions {
                shards: 4,
                slack: 16,
                late_policy: LatePolicy::Divert,
                emission: EmissionMode::Unordered,
                durability_dir: Some("/tmp/x".into()),
                recover: true,
                ..SessionOptions::default()
            },
            attach_to: None,
        });
        roundtrip_request(Request::Submit {
            query: "RETURN COUNT(*) PATTERN SEQ(Stock s)".into(),
            registry: sample_registry(),
            options: SessionOptions::default(),
            attach_to: Some(12),
        });
        roundtrip_request(Request::Attach { session: 7 });
        roundtrip_request(Request::Ingest {
            session: 3,
            events: vec![
                Event::new_unchecked(TypeId(0), Time(1), vec![Value::Int(5), Value::Float(2.5)]),
                Event::new_unchecked(
                    TypeId(0),
                    Time(2),
                    vec![Value::Str("a".into()), Value::Bool(true)],
                ),
            ],
        });
        roundtrip_request(Request::Subscribe {
            session: 3,
            query: 2,
        });
        roundtrip_request(Request::Detach {
            session: 3,
            query: 1,
        });
        roundtrip_request(Request::Drain { session: 3 });
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Ping);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::SubmitOk {
            session: 9,
            query: 0,
        });
        roundtrip_response(Response::SubmitOk {
            session: 9,
            query: 3,
        });
        roundtrip_response(Response::Ack(IngestAck {
            session: 9,
            pushed: 100,
            durable: Some(42),
            watermark: None,
            busy: true,
        }));
        roundtrip_response(Response::Rows {
            session: 9,
            query: 1,
            rows: vec![WindowResult {
                window: 2,
                group: PartitionKey(vec![Some(Value::Int(1))]),
                values: vec![OutValue::Count(3.0), OutValue::Float(1.5)],
            }],
        });
        roundtrip_response(Response::End {
            session: 9,
            query: 1,
        });
        roundtrip_response(Response::DetachOk {
            session: 9,
            query: 2,
            rows: vec![WindowResult {
                window: 4,
                group: PartitionKey(vec![None]),
                values: vec![OutValue::Count(1.0)],
            }],
        });
        roundtrip_response(Response::DrainOk { session: 9 });
        roundtrip_response(Response::ShutdownOk);
        roundtrip_response(Response::StatsText {
            text: "# HELP x\n".into(),
        });
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Error { msg: "nope".into() });
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        match read_payload(&mut buf.as_slice()) {
            Err(ProtoError::FrameTooLarge(n)) => assert_eq!(n, u32::MAX as u64),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_outbound_frame_refused_before_writing() {
        let huge = Event::new_unchecked(
            TypeId(0),
            Time(1),
            vec![Value::Str("x".repeat(MAX_FRAME_BYTES + 1).into())],
        );
        let req = Request::Ingest {
            session: 1,
            events: vec![huge],
        };
        let mut buf = Vec::new();
        match write_request(&mut buf, &req) {
            Err(ProtoError::FrameTooLarge(n)) => assert!(n as usize > MAX_FRAME_BYTES),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert!(buf.is_empty(), "nothing must reach the stream on refusal");
    }

    #[test]
    fn zero_length_frame_rejected() {
        let buf = 0u32.to_le_bytes();
        assert!(matches!(
            read_payload(&mut buf.as_slice()),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Vec::new();
        Request::Ping.encode(&mut payload);
        payload.push(0xFF);
        assert!(matches!(
            Request::decode(&payload),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(matches!(
            Request::decode(&[0x7F]),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            Response::decode(&[0x10]),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn preamble_roundtrip_and_rejection() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert_eq!(buf.len(), 6);
        read_preamble(&mut buf.as_slice()).unwrap();

        let bad = b"HTTP/1";
        assert!(read_preamble(&mut bad.as_slice()).is_err());
        let mut wrong_ver = Vec::new();
        wrong_ver.extend_from_slice(&MAGIC);
        wrong_ver.extend_from_slice(&99u16.to_le_bytes());
        assert!(read_preamble(&mut wrong_ver.as_slice()).is_err());
    }
}
