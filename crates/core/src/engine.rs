//! The GRETA engine (paper Fig. 4, runtime side): stream partitioning,
//! per-partition graphs, window lifecycle, result emission.
//!
//! Responsibilities:
//!
//! * **Partitioning** (§6): events are routed by the values of the
//!   partition attributes (`GROUP-BY` + equivalence predicates). Events of
//!   types carrying only a sub-key (negative-pattern types such as
//!   `Accident` in Q3) are broadcast to all matching partitions and kept in
//!   a window-deep replay buffer so that later-created partitions observe
//!   them too.
//! * **Windows** (§6): windows close when the watermark passes their end;
//!   results are rendered per group and panes whose last window closed are
//!   batch-purged (§7).
//! * **Final aggregation**: incremental (Algorithm 2 line 8) unless a
//!   trailing negation (Case 2) forces deferred per-close scans.
//! * **Metrics** (§10.1): events/vertices/edges counters and analytic
//!   memory accounting with peak tracking.

use crate::agg::{AggLayout, AggState, TrendNum};
use crate::graph::{AltRuntime, Ctx};
use crate::grouping::{PartitionKey, StreamRouting};
use crate::memory::{MemoryFootprint, PeakTracker};
use crate::results::{render_aggregates, WindowResult};
use crate::semantics::Semantics;
use crate::window::{window_close_time, windows_of, WindowId};
use crate::EngineError;
use greta_query::CompiledQuery;
use greta_types::{shared_heap_size, Event, EventRef, SchemaRegistry, Time};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Event selection semantics (default: skip-till-any-match, §2).
    pub semantics: Semantics,
    /// Use Vertex-Tree range queries for edge predicates (ablation switch;
    /// `false` falls back to scans with residual evaluation).
    pub use_range_index: bool,
    /// Track peak memory after every event (small per-event cost).
    pub track_memory: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            semantics: Semantics::SkipTillAny,
            use_range_index: true,
            track_memory: true,
        }
    }
}

/// Engine counters (§10.1 metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Events consumed.
    pub events: u64,
    /// Vertices inserted across all partitions/graphs.
    pub vertices: u64,
    /// Edges traversed (predecessor merges).
    pub edges: u64,
    /// Result rows emitted.
    pub results: u64,
}

struct Partition<N: TrendNum> {
    alts: Vec<AltRuntime<N>>,
}

/// The GRETA engine. Generic over the aggregate carrier `N` (`f64` default
/// mirrors large-count behaviour; `u64` saturates; `BigUint` is exact).
pub struct GretaEngine<N: TrendNum = f64> {
    query: CompiledQuery,
    registry: SchemaRegistry,
    layout: AggLayout,
    config: EngineConfig,
    /// Shared event classification (root vs broadcast types, key
    /// extraction) — the same view the executor shards by.
    routing: StreamRouting,
    partitions: HashMap<PartitionKey, Partition<N>>,
    /// Events of types that lack the full partition key (broadcast types),
    /// kept one window deep for replay into new partitions (shared refs —
    /// replay never copies payloads). Each entry records the bytes it was
    /// charged, so the running total never drifts as Arc sharing changes.
    replay: VecDeque<(EventRef, usize)>,
    /// Running byte total of the replay buffer.
    replay_bytes: usize,
    /// Incremental per-(window, group) final aggregates.
    results: BTreeMap<WindowId, HashMap<PartitionKey, AggState<N>>>,
    /// Windows touched by any event (deferred-final scans).
    touched: BTreeSet<WindowId>,
    emitted: Vec<WindowResult<N>>,
    watermark: Time,
    saw_event: bool,
    deferred_final: bool,
    /// Arrival index handed to the graphs for selection semantics.
    /// Monotone per engine; decoupled from `stats.events` so that
    /// repartitioning can splice partitions from several engines into one
    /// without ever assigning a new vertex a sequence number below an
    /// existing vertex's (the merged engine resumes from the max).
    seq: u64,
    stats: EngineStats,
    peak: PeakTracker,
    /// Running byte total of partition graph state (updated incrementally
    /// per delivery; recomputed after batch purges at window close).
    live_bytes: usize,
}

impl<N: TrendNum> GretaEngine<N> {
    /// Create an engine with default configuration.
    pub fn new(query: CompiledQuery, registry: SchemaRegistry) -> Result<Self, EngineError> {
        Self::with_config(query, registry, EngineConfig::default())
    }

    /// Create an engine with an explicit configuration.
    pub fn with_config(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let routing = StreamRouting::new(&query, &registry);
        // Root-graph event types must carry the full partition key: the
        // partition of a positive event must be unambiguous.
        routing.validate(&query, &registry)?;

        let layout = AggLayout::new(&query.aggregates);
        Ok(GretaEngine {
            deferred_final: false, // resolved lazily per partition
            query,
            registry,
            layout,
            config,
            routing,
            partitions: HashMap::new(),
            replay: VecDeque::new(),
            replay_bytes: 0,
            results: BTreeMap::new(),
            touched: BTreeSet::new(),
            emitted: Vec::new(),
            watermark: Time::ZERO,
            saw_event: false,
            seq: 0,
            stats: EngineStats::default(),
            peak: PeakTracker::default(),
            live_bytes: 0,
        })
    }

    /// The compiled query.
    pub fn query(&self) -> &CompiledQuery {
        &self.query
    }

    /// The schema registry.
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of live partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Process one event (must arrive in-order by time, §2). Compatibility
    /// wrapper that clones the event into a shared [`EventRef`] once; the
    /// zero-copy path is [`process_ref`](Self::process_ref).
    pub fn process(&mut self, e: &Event) -> Result<(), EngineError> {
        self.process_ref(&e.clone().into_ref())
    }

    /// Process one shared event (must arrive in-order by time, §2). The
    /// event is *not* copied: graph vertices and the broadcast replay
    /// buffer hold clones of the `Arc` handle.
    pub fn process_ref(&mut self, e: &EventRef) -> Result<(), EngineError> {
        if self.saw_event && e.time < self.watermark {
            return Err(EngineError::OutOfOrder {
                watermark: self.watermark.ticks(),
                got: e.time.ticks(),
            });
        }
        self.saw_event = true;
        self.watermark = e.time;
        self.close_due(e.time);
        self.stats.events += 1;
        self.seq += 1;

        let is_root_type = self.routing.is_root(e.type_id);
        let is_broadcast = self.routing.is_broadcast(e.type_id);
        let key = self.routing.extractor().key_of(e);

        if is_root_type {
            self.ensure_partition(&key);
            self.deliver(&key, e);
        } else if is_broadcast {
            // Deliver to every matching partition, remember for replay.
            let targets: Vec<PartitionKey> = self
                .partitions
                .keys()
                .filter(|k| key.matches(k))
                .cloned()
                .collect();
            for t in targets {
                self.deliver(&t, e);
            }
            let charge = shared_heap_size(e);
            self.replay_bytes += charge;
            self.replay.push_back((e.clone(), charge));
            // Replay buffer is one window deep (DESIGN.md: Def-5 effects for
            // late-created partitions are window-bounded).
            let cutoff = e.time.ticks().saturating_sub(self.query.window.within);
            while self
                .replay
                .front()
                .is_some_and(|(old, _)| old.time.ticks() < cutoff)
            {
                if let Some((_, c)) = self.replay.pop_front() {
                    self.replay_bytes = self.replay_bytes.saturating_sub(c);
                }
            }
        }
        // Events of types not in the query are ignored entirely.

        for w in windows_of(e.time, &self.query.window) {
            self.touched.insert(w);
        }
        if self.config.track_memory {
            let bytes = self.memory_bytes();
            self.peak.observe(bytes);
        }
        Ok(())
    }

    fn ensure_partition(&mut self, key: &PartitionKey) {
        if self.partitions.contains_key(key) {
            return;
        }
        let mut part = Partition {
            alts: self
                .query
                .alternatives
                .iter()
                .map(|alt| AltRuntime::new(alt, &self.query.window))
                .collect(),
        };
        self.deferred_final =
            self.deferred_final || part.alts.iter().any(AltRuntime::needs_deferred_final);
        // Replay buffered broadcast events that match this partition.
        let replayable: Vec<EventRef> = self
            .replay
            .iter()
            .filter(|(old, _)| self.routing.extractor().key_of(old).matches(key))
            .map(|(old, _)| old.clone())
            .collect();
        let ctx = Ctx {
            layout: &self.layout,
            window: self.query.window,
            semantics: self.config.semantics,
            use_range_index: self.config.use_range_index,
        };
        for (i, old) in replayable.iter().enumerate() {
            // Replayed events are historical; give them sequence numbers
            // below any live event's global index. Contiguous semantics is
            // approximate across replay (see DESIGN.md).
            let seq = i as u64;
            for alt in part.alts.iter_mut() {
                alt.process(&ctx, old, seq, |_, _| {});
            }
        }
        self.live_bytes += part.alts.iter().map(AltRuntime::bytes).sum::<usize>();
        self.partitions.insert(key.clone(), part);
    }

    fn deliver(&mut self, key: &PartitionKey, e: &EventRef) {
        let n_group = self.query.group_by.len();
        let group = key.group_prefix(n_group);
        let ctx = Ctx {
            layout: &self.layout,
            window: self.query.window,
            semantics: self.config.semantics,
            use_range_index: self.config.use_range_index,
        };
        let part = self.partitions.get_mut(key).expect("partition exists");
        // Engine-wide arrival index: contiguous semantics counts *every*
        // stream event as a potential gap (Table 1: "skips none").
        let seq = self.seq;
        let mut end_updates: Vec<(WindowId, AggState<N>)> = Vec::new();
        for alt in part.alts.iter_mut() {
            let (v0, e0, b0) = (alt.vertices_inserted, alt.edges_traversed, alt.bytes());
            alt.process(&ctx, e, seq, |w, st| {
                end_updates.push((w, st.clone()));
            });
            self.stats.vertices += alt.vertices_inserted - v0;
            self.stats.edges += alt.edges_traversed - e0;
            self.live_bytes = self.live_bytes + alt.bytes() - b0;
        }
        if !self.deferred_final {
            for (w, st) in end_updates {
                let slot = self
                    .results
                    .entry(w)
                    .or_default()
                    .entry(group.clone())
                    .or_insert_with(|| AggState::zero(&self.layout));
                slot.merge(&st);
            }
        }
    }

    /// Close (emit + purge) every window whose end is ≤ `t`.
    fn close_due(&mut self, t: Time) {
        let w = self.query.window;
        while let Some(&wid) = self.touched.first() {
            let close = window_close_time(wid, &w);
            if close > t {
                break;
            }
            self.touched.remove(&wid);
            self.emit_window(wid, close);
            // Batch pane purge: panes fully covered by closed windows die.
            // Window `wid` closed ⇒ panes ending at or before close - within
            // + slide·0… compute: pane dead iff its last window ≤ wid, i.e.
            // pane_end ≤ (wid+1)·slide.
            let deadline = Time((wid + 1) * w.slide);
            for part in self.partitions.values_mut() {
                for alt in &mut part.alts {
                    alt.purge_panes_before(deadline);
                }
            }
            // Purges changed many partitions at once: recompute the total.
            self.live_bytes = self
                .partitions
                .values()
                .map(|p| p.alts.iter().map(AltRuntime::bytes).sum::<usize>())
                .sum();
        }
    }

    fn emit_window(&mut self, wid: WindowId, close: Time) {
        let mut groups: HashMap<PartitionKey, AggState<N>> = HashMap::new();
        if self.deferred_final {
            let n_group = self.query.group_by.len();
            for (key, part) in &self.partitions {
                let group = key.group_prefix(n_group);
                for (alt, plan) in part.alts.iter().zip(&self.query.alternatives) {
                    let st = alt.collect_final(plan, &self.layout, wid, close);
                    if !st.count.is_zero() {
                        groups
                            .entry(group.clone())
                            .or_insert_with(|| AggState::zero(&self.layout))
                            .merge(&st);
                    }
                }
            }
        } else if let Some(g) = self.results.remove(&wid) {
            groups = g;
        }
        let mut rows: Vec<WindowResult<N>> = groups
            .into_iter()
            .filter(|(_, st)| !st.count.is_zero())
            .map(|(group, st)| WindowResult {
                window: wid,
                group,
                values: render_aggregates(&st, &self.query.aggregates, &self.layout),
            })
            .collect();
        rows.sort_by(|a, b| a.group.cmp(&b.group));
        self.stats.results += rows.len() as u64;
        self.emitted.extend(rows);
    }

    /// Advance event time to `t` without an event: closes (and emits) every
    /// window whose end is ≤ `t`. Used by the
    /// [`StreamExecutor`](crate::executor::StreamExecutor) to propagate
    /// watermarks to shards that received no recent events. Later events
    /// with a time before `t` are rejected as out-of-order, exactly as if
    /// an event at `t` had been processed. Stale watermarks are ignored.
    pub fn advance_watermark(&mut self, t: Time) {
        if self.saw_event && t < self.watermark {
            return;
        }
        self.saw_event = true;
        self.watermark = t;
        self.close_due(t);
    }

    /// Drain results of windows closed so far.
    pub fn poll_results(&mut self) -> Vec<WindowResult<N>> {
        std::mem::take(&mut self.emitted)
    }

    /// The engine's *emission frontier*: the smallest window id this
    /// engine may still emit a result row for. Every window below it has
    /// either been closed (its rows are in the emitted buffer or already
    /// drained) or was never touched — the executor's ordered-emission
    /// merge releases a window once every shard's frontier has passed it.
    ///
    /// Two bounds compose: the watermark bound (windows whose close time
    /// the watermark passed cannot receive events) and the first still-open
    /// *touched* window. The second matters after a state import or
    /// barrier-migration install, where the inherited watermark (the max
    /// across source engines) may already be past the close time of a
    /// window whose `close_due` simply has not run yet.
    pub fn emission_frontier(&self) -> WindowId {
        let wm_bound = if !self.saw_event {
            0
        } else {
            let w = &self.query.window;
            let t = self.watermark.ticks();
            if t < w.within {
                0
            } else {
                (t - w.within) / w.slide.max(1) + 1
            }
        };
        match self.touched.first() {
            Some(&w) => wm_bound.min(w),
            None => wm_bound,
        }
    }

    /// Close every window already due at the current watermark. A no-op on
    /// a live engine (`close_due` runs on every event/watermark); after a
    /// barrier-migration install or a state import the inherited watermark
    /// can already be past some windows' close times, and this emits them
    /// without waiting for the next message.
    pub fn close_overdue(&mut self) {
        if self.saw_event {
            self.close_due(self.watermark);
        }
    }

    /// Flush: close all remaining windows and drain every result.
    pub fn finish(&mut self) -> Vec<WindowResult<N>> {
        self.close_due(Time::MAX);
        self.poll_results()
    }

    /// Convenience: process a whole in-order batch and return all results.
    ///
    /// Compatibility wrapper over the executor's inline single-shard driver
    /// (`executor::drive_batch`); equivalent to a
    /// [`StreamExecutor`](crate::executor::StreamExecutor) with one shard,
    /// zero slack, and no worker threads.
    pub fn run(&mut self, events: &[Event]) -> Result<Vec<WindowResult<N>>, EngineError> {
        crate::executor::drive_batch(self, events)
    }

    /// Serialize the engine's mutable state (partitions with their graphs,
    /// the broadcast replay buffer, incremental per-window results, open
    /// windows, watermark, counters) into a snapshot blob. Everything
    /// derived from the query/registry/config is rebuilt on
    /// [`import_state`](Self::import_state), which must be given the same
    /// query, registry, and configuration.
    pub fn export_state(&self) -> Vec<u8> {
        use crate::state::{encode_agg_state, encode_events, encode_key, encode_window_result};
        use greta_types::codec::{put_u32, put_u64};
        let mut out = Vec::new();
        out.push(2u8); // engine-state version (2: explicit `seq` counter)
        put_u64(&mut out, self.watermark.ticks());
        out.push(self.saw_event as u8);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.stats.events);
        put_u64(&mut out, self.stats.vertices);
        put_u64(&mut out, self.stats.edges);
        put_u64(&mut out, self.stats.results);
        put_u64(&mut out, self.peak.peak() as u64);

        // Partitions, sorted by key for a deterministic blob.
        let mut keys: Vec<&PartitionKey> = self.partitions.keys().collect();
        keys.sort();
        put_u32(&mut out, keys.len() as u32);
        for key in keys {
            encode_key(key, &mut out);
            let part = &self.partitions[key];
            put_u32(&mut out, part.alts.len() as u32);
            for alt in &part.alts {
                alt.encode_state(&mut out);
            }
        }

        encode_events(self.replay.iter().map(|(e, _)| e), &mut out);

        put_u32(&mut out, self.results.len() as u32);
        for (wid, groups) in &self.results {
            put_u64(&mut out, *wid);
            let mut gkeys: Vec<&PartitionKey> = groups.keys().collect();
            gkeys.sort();
            put_u32(&mut out, gkeys.len() as u32);
            for g in gkeys {
                encode_key(g, &mut out);
                encode_agg_state(&groups[g], &mut out);
            }
        }

        put_u32(&mut out, self.touched.len() as u32);
        for w in &self.touched {
            put_u64(&mut out, *w);
        }

        put_u32(&mut out, self.emitted.len() as u32);
        for row in &self.emitted {
            encode_window_result(row, &mut out);
        }
        out
    }

    /// Rebuild an engine from a blob written by
    /// [`export_state`](Self::export_state). The `query`, `registry`, and
    /// `config` must match the exporting engine's — the blob only carries
    /// the mutable state. The restored engine continues the stream exactly
    /// where the exporter stopped: same results, same counters, same
    /// selection-semantics sequence numbers.
    pub fn import_state(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: EngineConfig,
        bytes: &[u8],
    ) -> Result<Self, EngineError> {
        use crate::state::{decode_agg_state, decode_events, decode_key, decode_window_result};
        use greta_types::CodecError;
        let mut eng = Self::with_config(query, registry, config)?;
        let r = &mut greta_types::Reader::new(bytes);
        let version = r.u8()?;
        if version != 2 {
            return Err(CodecError(format!("unsupported engine-state version {version}")).into());
        }
        eng.watermark = Time(r.u64()?);
        eng.saw_event = r.u8()? != 0;
        eng.seq = r.u64()?;
        eng.stats.events = r.u64()?;
        eng.stats.vertices = r.u64()?;
        eng.stats.edges = r.u64()?;
        eng.stats.results = r.u64()?;
        let peak = r.u64()? as usize;
        eng.peak.observe(peak);

        let n_parts = r.seq_len(8)?;
        for _ in 0..n_parts {
            let key = decode_key(r)?;
            let n_alts = r.seq_len(16)?;
            if n_alts != eng.query.alternatives.len() {
                return Err(CodecError(format!(
                    "alternative count mismatch: snapshot has {n_alts}, query has {}",
                    eng.query.alternatives.len()
                ))
                .into());
            }
            let mut alts = Vec::with_capacity(n_alts);
            for plan in &eng.query.alternatives {
                alts.push(crate::graph::AltRuntime::decode_state(
                    plan,
                    &eng.query.window,
                    r,
                )?);
            }
            let part = Partition { alts };
            eng.deferred_final = eng.deferred_final
                || part
                    .alts
                    .iter()
                    .any(crate::graph::AltRuntime::needs_deferred_final);
            eng.partitions.insert(key, part);
        }

        for e in decode_events(r)? {
            let charge = shared_heap_size(&e);
            eng.replay_bytes += charge;
            eng.replay.push_back((e, charge));
        }

        let n_results = r.seq_len(12)?;
        for _ in 0..n_results {
            let wid = r.u64()?;
            let n_groups = r.seq_len(8)?;
            let mut groups = HashMap::with_capacity(n_groups);
            for _ in 0..n_groups {
                let g = decode_key(r)?;
                groups.insert(g, decode_agg_state(r)?);
            }
            eng.results.insert(wid, groups);
        }

        let n_touched = r.seq_len(8)?;
        for _ in 0..n_touched {
            eng.touched.insert(r.u64()?);
        }

        let n_emitted = r.seq_len(9)?;
        for _ in 0..n_emitted {
            eng.emitted.push(decode_window_result(r)?);
        }
        if !r.is_empty() {
            return Err(CodecError(format!(
                "{} trailing bytes after engine state",
                r.remaining()
            ))
            .into());
        }

        eng.live_bytes = eng
            .partitions
            .values()
            .map(|p| {
                p.alts
                    .iter()
                    .map(crate::graph::AltRuntime::bytes)
                    .sum::<usize>()
            })
            .sum();
        Ok(eng)
    }

    /// Live graph vertices per `GROUP-BY` group: the engine-side load
    /// signal the executor reports in its per-group stats. Counts vertices
    /// the partitions currently hold (purged panes are gone), summed over a
    /// group's partitions, sorted by group for deterministic output.
    pub fn group_vertices(&self) -> Vec<(PartitionKey, u64)> {
        let n_group = self.query.group_by.len();
        let mut by_group: BTreeMap<PartitionKey, u64> = BTreeMap::new();
        for (key, part) in &self.partitions {
            let n: u64 = part.alts.iter().map(|a| a.vertices_inserted).sum();
            *by_group.entry(key.group_prefix(n_group)).or_default() += n;
        }
        by_group.into_iter().collect()
    }

    /// Redistribute the state of several engines across a (possibly
    /// different) number of engines, moving whole groups: the workhorse of
    /// both the executor's live shard rebalancing and
    /// recovery-with-resharding.
    ///
    /// `blobs` are [`export_state`](Self::export_state) snapshots of
    /// engines that together processed one partitioned stream (each group
    /// owned by exactly one engine, broadcast events seen by all).
    /// `shard_of_group` maps a `GROUP-BY` prefix to its new owner in
    /// `0..new_shards`. Returns one ready-to-run engine per new shard (no
    /// re-serialization roundtrip) such that continuing the stream under
    /// the new assignment yields byte-identical results to never having
    /// moved anything:
    ///
    /// * partitions and their per-(window, group) incremental aggregates
    ///   follow their group atomically;
    /// * every new engine resumes from the **max** watermark / sequence
    ///   counter, so events released after the cut (which are ≥ every
    ///   engine's watermark) are accepted everywhere and new vertices never
    ///   sort below existing ones;
    /// * the broadcast replay buffer (identical on every source — broadcast
    ///   events reach all shards) is replicated to every new engine, so
    ///   partitions created later still observe past negative events;
    /// * engine counters are carried on the first new engine so the
    ///   *summed* stats across engines are preserved.
    pub fn repartition_states(
        query: &CompiledQuery,
        registry: &SchemaRegistry,
        config: EngineConfig,
        blobs: &[Vec<u8>],
        new_shards: usize,
        mut shard_of_group: impl FnMut(&PartitionKey) -> usize,
    ) -> Result<Vec<Self>, EngineError> {
        if new_shards == 0 {
            return Err(EngineError::Config(
                "repartition_states needs ≥ 1 target shard".into(),
            ));
        }
        let olds = blobs
            .iter()
            .map(|b| Self::import_state(query.clone(), registry.clone(), config, b))
            .collect::<Result<Vec<Self>, _>>()?;
        let mut news = (0..new_shards)
            .map(|_| Self::with_config(query.clone(), registry.clone(), config))
            .collect::<Result<Vec<Self>, _>>()?;

        let watermark = olds.iter().map(|e| e.watermark).max().unwrap_or(Time::ZERO);
        let saw_event = olds.iter().any(|e| e.saw_event);
        let seq = olds.iter().map(|e| e.seq).max().unwrap_or(0);
        let deferred = olds.iter().any(|e| e.deferred_final);
        let replay_src = olds.iter().max_by_key(|e| e.replay.len());
        for n in news.iter_mut() {
            n.watermark = watermark;
            n.saw_event = saw_event;
            n.seq = seq;
            n.deferred_final = deferred;
            if let Some(src) = replay_src {
                n.replay = src.replay.clone();
                n.replay_bytes = src.replay_bytes;
            }
        }

        let n_group = query.group_by.len();
        let mut peak_sum = 0usize;
        for mut old in olds {
            let s0 = &mut news[0].stats;
            s0.events += old.stats.events;
            s0.vertices += old.stats.vertices;
            s0.edges += old.stats.edges;
            s0.results += old.stats.results;
            peak_sum += old.peak.peak();
            news[0].emitted.append(&mut old.emitted);
            for (key, part) in old.partitions.drain() {
                let dest = shard_of_group(&key.group_prefix(n_group)) % new_shards;
                news[dest].live_bytes += part.alts.iter().map(AltRuntime::bytes).sum::<usize>();
                news[dest].partitions.insert(key, part);
            }
            for (wid, groups) in std::mem::take(&mut old.results) {
                for (group, st) in groups {
                    let dest = shard_of_group(&group) % new_shards;
                    news[dest]
                        .results
                        .entry(wid)
                        .or_default()
                        .entry(group)
                        .or_insert_with(|| AggState::zero(&old.layout))
                        .merge(&st);
                }
            }
            // Open windows close via the broadcast watermark on every
            // shard; emitting a window with no local groups is a no-op, so
            // replicating the union is always safe.
            for n in news.iter_mut() {
                n.touched.extend(old.touched.iter().copied());
            }
        }
        // Summed per-shard peaks are an executor-level metric; carry the
        // total on the first engine so the aggregate never shrinks.
        news[0].peak.observe(peak_sum);
        Ok(news)
    }
}

impl<N: TrendNum> MemoryFootprint for GretaEngine<N> {
    fn memory_bytes(&self) -> usize {
        let parts: usize = self.live_bytes;
        let results: usize = self
            .results
            .values()
            .map(|g| {
                g.iter()
                    .map(|(k, st)| k.heap_size() + st.heap_size() + 64)
                    .sum::<usize>()
            })
            .sum();
        parts + results + self.replay_bytes
    }

    fn peak_memory_bytes(&self) -> usize {
        self.peak.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::EventBuilder;

    fn reg_ab() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register_type("A", &["attr", "grp"]).unwrap();
        r.register_type("B", &["attr", "grp"]).unwrap();
        r.register_type("E", &["attr", "grp"]).unwrap();
        r
    }

    fn ev(r: &SchemaRegistry, ty: &str, t: u64, attr: f64, grp: i64) -> Event {
        EventBuilder::new(r, ty)
            .unwrap()
            .at(Time(t))
            .set("attr", attr)
            .unwrap()
            .set("grp", grp)
            .unwrap()
            .build()
    }

    #[test]
    fn example_1_all_aggregates() {
        // Figure 12: COUNT(*)=11, COUNT(A)=20, MIN=4, MAX=6, SUM=100, AVG=5.
        let r = reg_ab();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) \
             PATTERN (SEQ(A+, B))+ WITHIN 100 SLIDE 100",
            &r,
        )
        .unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        let evs = vec![
            ev(&r, "A", 1, 5.0, 0),
            ev(&r, "B", 2, 0.0, 0),
            ev(&r, "A", 3, 6.0, 0),
            ev(&r, "A", 4, 4.0, 0),
            ev(&r, "B", 7, 0.0, 0),
        ];
        let rows = eng.run(&evs).unwrap();
        assert_eq!(rows.len(), 1);
        let v: Vec<f64> = rows[0].values.iter().map(|x| x.to_f64()).collect();
        assert_eq!(v, vec![11.0, 20.0, 4.0, 6.0, 100.0, 5.0]);
    }

    #[test]
    fn grouping_partitions_results() {
        let r = reg_ab();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN A+ GROUP-BY grp WITHIN 100 SLIDE 100",
            &r,
        )
        .unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        let evs = vec![
            ev(&r, "A", 1, 0.0, 1),
            ev(&r, "A", 2, 0.0, 2),
            ev(&r, "A", 3, 0.0, 1),
        ];
        let rows = eng.run(&evs).unwrap();
        assert_eq!(rows.len(), 2);
        // group 1: {a1}, {a3}, {a1,a3} = 3; group 2: {a2} = 1.
        let counts: Vec<f64> = rows.iter().map(|r| r.values[0].to_f64()).collect();
        assert_eq!(counts, vec![3.0, 1.0]);
        assert_eq!(eng.partition_count(), 2);
    }

    #[test]
    fn sliding_windows_share_the_graph() {
        // WITHIN 10 SLIDE 5 over a1 a3 a8: windows [0,10) and [5,15).
        // W0: trends over {a1,a3,a8} = 7; W1: {a8} = 1.
        let r = reg_ab();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 5", &r).unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        let rows = eng
            .run(&[
                ev(&r, "A", 1, 0.0, 0),
                ev(&r, "A", 3, 0.0, 0),
                ev(&r, "A", 8, 0.0, 0),
            ])
            .unwrap();
        let mut by_window: Vec<(WindowId, f64)> = rows
            .iter()
            .map(|r| (r.window, r.values[0].to_f64()))
            .collect();
        by_window.sort_by_key(|a| a.0);
        assert_eq!(by_window, vec![(0, 7.0), (1, 1.0)]);
    }

    #[test]
    fn windows_close_incrementally_and_memory_shrinks() {
        let r = reg_ab();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &r).unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        for t in 0..10 {
            eng.process(&ev(&r, "A", t, 0.0, 0)).unwrap();
        }
        assert!(eng.poll_results().is_empty()); // window not closed yet
        eng.process(&ev(&r, "A", 25, 0.0, 0)).unwrap();
        let rows = eng.poll_results();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[0].to_f64(), 1023.0); // 2^10 - 1
                                                        // Old pane purged: memory bounded.
        assert!(eng.memory_bytes() < eng.peak_memory_bytes());
        let final_rows = eng.finish();
        assert_eq!(final_rows.len(), 1); // window of t=25
        assert_eq!(final_rows[0].values[0].to_f64(), 1.0);
    }

    #[test]
    fn out_of_order_rejected() {
        let r = reg_ab();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &r).unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        eng.process(&ev(&r, "A", 5, 0.0, 0)).unwrap();
        let err = eng.process(&ev(&r, "A", 3, 0.0, 0)).unwrap_err();
        assert!(matches!(err, EngineError::OutOfOrder { .. }));
    }

    #[test]
    fn trailing_negation_defers_final() {
        // SEQ(A+, NOT E), Fig. 8(a): e3 marks the previous a's (a1, a2)
        // invalid — per Example 5 they are deleted, so they neither count
        // as END events at close nor connect to the later a4.
        let r = reg_ab();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A+, NOT E) WITHIN 100 SLIDE 100",
            &r,
        )
        .unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        let rows = eng
            .run(&[
                ev(&r, "A", 1, 0.0, 0),
                ev(&r, "A", 2, 0.0, 0),
                ev(&r, "E", 3, 0.0, 0),
                ev(&r, "A", 4, 0.0, 0),
            ])
            .unwrap();
        assert_eq!(rows.len(), 1);
        // Only a4 is a valid END at close and it has no valid predecessors:
        // final count = a4.count = 1.
        assert_eq!(rows[0].values[0].to_f64(), 1.0);
    }

    #[test]
    fn leading_negation_with_subkey_broadcast() {
        // Q3-style: accident lacks `vehicle`; positions partition by
        // (grp=segment, attr-ish vehicle). Accident must hit all matching
        // partitions.
        let mut r = SchemaRegistry::new();
        r.register_type("Accident", &["segment"]).unwrap();
        r.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &r,
        )
        .unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&r, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&r, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let rows = eng
            .run(&[
                pos(1, 7, 1), // segment 1, vehicle 7
                acc(2, 1),    // accident in segment 1
                pos(3, 7, 1), // dropped (after accident)
                pos(4, 9, 1), // new partition (vehicle 9) — replay sees accident
                pos(5, 5, 2), // segment 2 unaffected
            ])
            .unwrap();
        // Segment 1: only the trend {pos(1)} (later positions dropped).
        // Segment 2: {pos(5)}.
        assert_eq!(rows.len(), 2);
        let counts: Vec<f64> = rows.iter().map(|x| x.values[0].to_f64()).collect();
        assert_eq!(counts, vec![1.0, 1.0]);
    }

    #[test]
    fn missing_partition_attr_on_root_type_rejected() {
        let mut r = SchemaRegistry::new();
        r.register_type("A", &["x"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN A+ WHERE [x] GROUP-BY x WITHIN 10 SLIDE 10",
            &r,
        )
        .unwrap();
        // x exists — fine.
        assert!(GretaEngine::<u64>::new(q, r.clone()).is_ok());
        let mut r2 = SchemaRegistry::new();
        r2.register_type("A", &["x"]).unwrap();
        r2.register_type("B", &["y"]).unwrap();
        let q2 = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP-BY x WITHIN 10 SLIDE 10",
            &r2,
        )
        .unwrap();
        let err = GretaEngine::<u64>::new(q2, r2).map(|_| ()).unwrap_err();
        assert!(matches!(err, EngineError::PartitionAttr { .. }));
    }

    #[test]
    fn edge_predicate_filters_connections() {
        // A+ with attr strictly decreasing.
        let r = reg_ab();
        let q = CompiledQuery::parse(
            "RETURN COUNT(*) PATTERN A S+ WHERE S.attr > NEXT(S).attr WITHIN 100 SLIDE 100",
            &r,
        )
        .unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        let rows = eng
            .run(&[
                ev(&r, "A", 1, 10.0, 0),
                ev(&r, "A", 2, 12.0, 0),
                ev(&r, "A", 3, 8.0, 0),
            ])
            .unwrap();
        // Down-trends: {a1},{a2},{a3},(a1,a3),(a2,a3) = 5.
        assert_eq!(rows[0].values[0].to_f64(), 5.0);
    }

    #[test]
    fn range_index_ablation_gives_same_results() {
        let r = reg_ab();
        let mk = || {
            CompiledQuery::parse(
                "RETURN COUNT(*) PATTERN A S+ WHERE S.attr > NEXT(S).attr WITHIN 100 SLIDE 100",
                &r,
            )
            .unwrap()
        };
        let evs: Vec<Event> = (0..30)
            .map(|i| ev(&r, "A", i, ((i * 37) % 19) as f64, 0))
            .collect();
        let mut e1 = GretaEngine::<u64>::new(mk(), r.clone()).unwrap();
        let mut e2 = GretaEngine::<u64>::with_config(
            mk(),
            r.clone(),
            EngineConfig {
                use_range_index: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(e1.run(&evs).unwrap(), e2.run(&evs).unwrap());
    }

    #[test]
    fn export_import_resumes_mid_stream_exactly() {
        // Sliding windows + grouping + trailing negation (deferred finals)
        // + broadcast replay all survive a snapshot/restore round trip:
        // results and counters of (prefix → export → import → suffix) are
        // identical to an uninterrupted run, at every split point.
        let r = reg_ab();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*), SUM(A.attr) PATTERN SEQ(A+, NOT E) \
             GROUP-BY grp WITHIN 20 SLIDE 10",
            &r,
        )
        .unwrap();
        let events: Vec<Event> = (0..60u64)
            .map(|t| {
                let ty = if t % 9 == 5 { "E" } else { "A" };
                ev(&r, ty, t, ((t * 13) % 7) as f64, (t % 3) as i64)
            })
            .collect();
        let mut oracle = GretaEngine::<u64>::new(q.clone(), r.clone()).unwrap();
        let expect = oracle.run(&events).unwrap();
        for split in [0usize, 1, 17, 35, 59, 60] {
            let mut a = GretaEngine::<u64>::new(q.clone(), r.clone()).unwrap();
            let mut rows = Vec::new();
            for e in &events[..split] {
                a.process(e).unwrap();
                rows.extend(a.poll_results());
            }
            let blob = a.export_state();
            let mut b = GretaEngine::<u64>::import_state(
                q.clone(),
                r.clone(),
                EngineConfig::default(),
                &blob,
            )
            .unwrap();
            for e in &events[split..] {
                b.process(e).unwrap();
                rows.extend(b.poll_results());
            }
            rows.extend(b.finish());
            assert_eq!(rows, expect, "split at {split}");
            assert_eq!(b.stats().events, a.stats().events + (60 - split) as u64);
            assert_eq!(b.stats().results, oracle.stats().results);
        }
    }

    #[test]
    fn repartition_moves_groups_between_engines_exactly() {
        // Split a grouped stream across 2 engines by grp parity, process a
        // prefix, repartition the two states onto 3 engines under a
        // different assignment (grp mod 3), process the suffix under the
        // new assignment — combined results and counters must match one
        // uninterrupted engine.
        let r = reg_ab();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*), SUM(A.attr) PATTERN SEQ(A+, NOT E) \
             GROUP-BY grp WITHIN 20 SLIDE 10",
            &r,
        )
        .unwrap();
        let events: Vec<Event> = (0..80u64)
            .map(|t| {
                let ty = if t % 9 == 5 { "E" } else { "A" };
                ev(&r, ty, t, ((t * 13) % 7) as f64, (t % 5) as i64)
            })
            .collect();
        let mut oracle = GretaEngine::<u64>::new(q.clone(), r.clone()).unwrap();
        let expect = oracle.run(&events).unwrap();
        let grp_of = |e: &Event| match e.attrs.last().unwrap() {
            greta_types::Value::Int(g) => *g,
            _ => unreachable!("grp is Int"),
        };

        let mut rows = Vec::new();
        let mut olds: Vec<GretaEngine<u64>> = (0..2)
            .map(|_| GretaEngine::new(q.clone(), r.clone()).unwrap())
            .collect();
        for e in &events[..40] {
            // "E" lacks no attrs here (full key) — route by parity.
            olds[(grp_of(e) % 2) as usize].process(e).unwrap();
            for eng in olds.iter_mut() {
                rows.extend(eng.poll_results());
            }
        }
        let blobs: Vec<Vec<u8>> = olds.iter().map(GretaEngine::export_state).collect();
        let mut news = GretaEngine::<u64>::repartition_states(
            &q,
            &r,
            EngineConfig::default(),
            &blobs,
            3,
            |g| match &g.0[0] {
                Some(greta_types::Value::Int(v)) => (*v % 3) as usize,
                _ => 0,
            },
        )
        .unwrap();
        for e in &events[40..] {
            news[(grp_of(e) % 3) as usize].process(e).unwrap();
            for eng in news.iter_mut() {
                rows.extend(eng.poll_results());
            }
        }
        let mut total_events = 0;
        for eng in news.iter_mut() {
            rows.extend(eng.finish());
            total_events += eng.stats().events;
        }
        rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        let mut expect = expect;
        expect.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        assert_eq!(rows, expect);
        // Summed counters are preserved across the repartition.
        assert_eq!(total_events, events.len() as u64);
        // Per-group vertex reporting sees every group somewhere.
        let groups: std::collections::BTreeSet<PartitionKey> = news
            .iter()
            .flat_map(|e| e.group_vertices().into_iter().map(|(k, _)| k))
            .collect();
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn import_rejects_garbage() {
        let r = reg_ab();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &r).unwrap();
        // Truncated blob.
        let eng = GretaEngine::<u64>::new(q.clone(), r.clone()).unwrap();
        let blob = eng.export_state();
        for cut in [0, 1, blob.len() / 2] {
            assert!(GretaEngine::<u64>::import_state(
                q.clone(),
                r.clone(),
                EngineConfig::default(),
                &blob[..cut]
            )
            .is_err());
        }
        // Wrong version byte.
        let mut bad = blob.clone();
        bad[0] = 99;
        assert!(GretaEngine::<u64>::import_state(
            q.clone(),
            r.clone(),
            EngineConfig::default(),
            &bad
        )
        .is_err());
    }

    #[test]
    fn stats_populated() {
        let r = reg_ab();
        let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &r).unwrap();
        let mut eng = GretaEngine::<u64>::new(q, r.clone()).unwrap();
        eng.run(&[ev(&r, "A", 1, 0.0, 0), ev(&r, "A", 2, 0.0, 0)])
            .unwrap();
        let s = eng.stats();
        assert_eq!(s.events, 2);
        assert_eq!(s.vertices, 2);
        assert_eq!(s.edges, 1);
        assert_eq!(s.results, 1);
    }
}
