//! Parallel per-group batch execution (paper §7: "the grouping clause
//! partitions the stream into sub-streams that are processed in parallel
//! independently from each other", evaluated in §10.4).
//!
//! Since the [`StreamExecutor`] landed,
//! this module is a **compatibility wrapper**: [`run_parallel`] builds an
//! executor with `threads` shards, feeds it the batch (polling as it goes,
//! so bounded channels never back up), and returns the combined rows
//! sorted by `(window, group)`. Routing — group-hash sharding with
//! broadcast for negative-pattern types — lives in
//! [`StreamRouting`](crate::grouping::StreamRouting), shared with the
//! sequential engine.

use crate::agg::TrendNum;
use crate::engine::EngineConfig;
use crate::executor::{ExecutorConfig, LatePolicy, StreamExecutor};
use crate::results::WindowResult;
use crate::EngineError;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry};

/// Run a query over an in-order batch with `threads` shard workers,
/// returning all window results sorted by `(window, group)`.
///
/// Falls back to a single worker when the query has no `GROUP-BY` clause
/// (there is nothing to partition by — matching the paper's scaling model).
pub fn run_parallel<N: TrendNum>(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    config: EngineConfig,
    events: &[Event],
    threads: usize,
) -> Result<Vec<WindowResult<N>>, EngineError> {
    if threads == 0 {
        return Err(EngineError::Config("threads must be ≥ 1".into()));
    }
    let mut exec = StreamExecutor::<N>::new(
        query.clone(),
        registry.clone(),
        ExecutorConfig {
            shards: threads,
            slack: 0,
            late_policy: LatePolicy::Error,
            engine: config,
            ..Default::default()
        },
    )?;
    let mut rows = Vec::new();
    for e in events {
        exec.push(e.clone())?;
        rows.extend(exec.poll_results());
    }
    rows.extend(exec.finish()?);
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GretaEngine;
    use greta_types::{EventBuilder, Time};

    fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 1000 SLIDE 1000",
            &reg,
        )
        .unwrap();
        let mut events = Vec::new();
        for t in 0..60u64 {
            events.push(
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", (t % 6) as i64)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build(),
            );
        }
        (reg, q, events)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (reg, q, events) = setup();
        let mut seq = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let mut expect = seq.run(&events).unwrap();
        expect.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        for threads in [1, 2, 4] {
            let got =
                run_parallel::<u64>(&q, &reg, EngineConfig::default(), &events, threads).unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_with_negation_broadcast() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&reg, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&reg, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let events = vec![
            pos(1, 1, 1),
            pos(1, 2, 2),
            acc(2, 1),
            pos(3, 1, 1),
            pos(3, 2, 2),
        ];
        let mut seq_engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let mut expect = seq_engine.run(&events).unwrap();
        expect.sort_by(|a, b| a.group.cmp(&b.group));
        let got = run_parallel::<u64>(&q, &reg, EngineConfig::default(), &events, 3).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn zero_threads_rejected() {
        let (reg, q, events) = setup();
        assert!(run_parallel::<u64>(&q, &reg, EngineConfig::default(), &events, 0).is_err());
    }
}
