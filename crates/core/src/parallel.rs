//! Parallel per-group execution (paper §7: "the grouping clause partitions
//! the stream into sub-streams that are processed in parallel independently
//! from each other", evaluated in §10.4).
//!
//! Events are routed to worker threads by the hash of their **group key**
//! (the `GROUP-BY` projection of the partition key), so every group is
//! wholly owned by one worker and result rows concatenate without merging.
//! Events of broadcast types (types outside the root graph or lacking the
//! full key — i.e. negative-pattern types) are delivered to all workers;
//! each worker maintains its own copies of the negative graphs it needs,
//! trading duplicated (tiny) negative state for lock-free execution.

use crate::agg::TrendNum;
use crate::engine::{EngineConfig, GretaEngine};
use crate::grouping::KeyExtractor;
use crate::results::WindowResult;
use crate::EngineError;
use crossbeam::channel;
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry, TypeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Run a query over an in-order batch with `threads` workers, returning all
/// window results sorted by `(window, group)`.
///
/// Falls back to a single worker when the query has no `GROUP-BY` clause
/// (there is nothing to partition by — matching the paper's scaling model).
pub fn run_parallel<N: TrendNum>(
    query: &CompiledQuery,
    registry: &SchemaRegistry,
    config: EngineConfig,
    events: &[Event],
    threads: usize,
) -> Result<Vec<WindowResult<N>>, EngineError> {
    if threads == 0 {
        return Err(EngineError::Config("threads must be ≥ 1".into()));
    }
    let shards = if query.group_by.is_empty() { 1 } else { threads };
    let extractor = KeyExtractor::new(query, registry);
    let n_group = query.group_by.len();

    // Broadcast types: outside the root graph or lacking the full key.
    let mut root_types: HashSet<TypeId> = HashSet::new();
    let mut all_types: HashSet<TypeId> = HashSet::new();
    for alt in &query.alternatives {
        for (_, t) in &alt.graphs[0].state_types {
            root_types.insert(*t);
        }
        for g in &alt.graphs {
            for (_, t) in &g.state_types {
                all_types.insert(*t);
            }
        }
    }
    let broadcast: HashSet<TypeId> = all_types
        .into_iter()
        .filter(|t| !root_types.contains(t) || !extractor.has_full_key(*t))
        .collect();

    let mut rows: Vec<WindowResult<N>> = Vec::new();
    std::thread::scope(|scope| -> Result<(), EngineError> {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::bounded::<Event>(4096);
            senders.push(tx);
            let query = query.clone();
            let registry = registry.clone();
            handles.push(scope.spawn(move || -> Result<Vec<WindowResult<N>>, EngineError> {
                let mut engine = GretaEngine::<N>::with_config(query, registry, config)?;
                for e in rx {
                    engine.process(&e)?;
                }
                Ok(engine.finish())
            }));
        }
        for e in events {
            if broadcast.contains(&e.type_id) {
                for tx in &senders {
                    tx.send(e.clone()).expect("worker alive");
                }
            } else {
                let key = extractor.key_of(e).group_prefix(n_group);
                let mut h = DefaultHasher::new();
                key.hash(&mut h);
                let shard = (h.finish() % shards as u64) as usize;
                senders[shard].send(e.clone()).expect("worker alive");
            }
        }
        drop(senders);
        for h in handles {
            rows.extend(h.join().expect("worker panicked")?);
        }
        Ok(())
    })?;

    rows.sort_by(|a, b| {
        a.window
            .cmp(&b.window)
            .then_with(|| a.group.cmp(&b.group))
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{EventBuilder, Time};

    fn setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 1000 SLIDE 1000",
            &reg,
        )
        .unwrap();
        let mut events = Vec::new();
        for t in 0..60u64 {
            events.push(
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", (t % 6) as i64)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build(),
            );
        }
        (reg, q, events)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (reg, q, events) = setup();
        let mut seq = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let mut expect = seq.run(&events).unwrap();
        expect.sort_by(|a, b| {
            a.window
                .cmp(&b.window)
                .then_with(|| a.group.cmp(&b.group))
        });
        for threads in [1, 2, 4] {
            let got =
                run_parallel::<u64>(&q, &reg, EngineConfig::default(), &events, threads).unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_with_negation_broadcast() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&reg, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&reg, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let events = vec![pos(1, 1, 1), pos(1, 2, 2), acc(2, 1), pos(3, 1, 1), pos(3, 2, 2)];
        let mut seq_engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let mut expect = seq_engine.run(&events).unwrap();
        expect.sort_by(|a, b| a.group.cmp(&b.group));
        let got = run_parallel::<u64>(&q, &reg, EngineConfig::default(), &events, 3).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn zero_threads_rejected() {
        let (reg, q, events) = setup();
        assert!(run_parallel::<u64>(&q, &reg, EngineConfig::default(), &events, 0).is_err());
    }
}
