//! Memory accounting (the *memory* metric of paper §10.1).
//!
//! The paper reports the peak bytes used by each approach's runtime state
//! (GRETA graph vs. stacks/trends of the two-step baselines). We account
//! analytically via this trait rather than through an allocator hook so the
//! comparison measures *data-structure* footprint, independent of allocator
//! slack — every engine (GRETA and all baselines) implements it.

/// Anything that can report the size of its live runtime state.
pub trait MemoryFootprint {
    /// Current bytes of live state.
    fn memory_bytes(&self) -> usize;

    /// Peak observed bytes (engines update this after every event).
    fn peak_memory_bytes(&self) -> usize;
}

/// Helper: running peak tracker.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakTracker {
    peak: usize,
}

impl PeakTracker {
    /// Observe a current value; returns the running peak.
    pub fn observe(&mut self, current: usize) -> usize {
        if current > self.peak {
            self.peak = current;
        }
        self.peak
    }

    /// The peak so far.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_maximum() {
        let mut p = PeakTracker::default();
        p.observe(10);
        p.observe(50);
        p.observe(20);
        assert_eq!(p.peak(), 50);
    }
}
