//! Bounded per-group load accounting: a top-K *space-saving* sketch with
//! decayed counters.
//!
//! The executor's skew detector counts routed events per `GROUP-BY` group.
//! On a high-cardinality stream (millions of groups) an exact map grows
//! without bound even though the detector only ever acts on the heaviest
//! groups. [`GroupSketch`] keeps at most ~1.5 × `capacity` tracked groups:
//! when the table overflows, the lightest entries are evicted in one batch
//! and their largest count becomes the *floor* — the classic space-saving
//! over-estimate that newly seen groups inherit, so a heavy group can
//! never hide by being evicted just before it turns hot. Eviction is
//! batched (amortized `O(log K)` per newly seen group) and fully
//! deterministic (ties broken by group key), which keeps recovered
//! executors replaying the exact detector decisions of the original run.
//!
//! Entries are keyed by the 64-bit [routing
//! hash](crate::grouping::group_key_hash) so the hot path never
//! materializes a [`PartitionKey`]; the key itself is interned once, the
//! first time a group is tracked.

use crate::grouping::{group_key_hash, PartitionKey};
use greta_types::codec::{put_u32, put_u64, Reader};
use greta_types::{CodecError, GroupStats};
use std::collections::HashMap;

/// Bounded per-group counters (events routed, graph vertices), evicting
/// the lightest groups once more than 1.5 × `capacity` are tracked. See
/// the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct GroupSketch {
    /// Maximum tracked groups after a compaction; `0` = unbounded (exact).
    capacity: usize,
    /// Space-saving floor: the largest event count ever evicted. New
    /// groups start from it, so `count(g) ≥ true count of g` always.
    floor: u64,
    /// Routing hash → (interned key, counters).
    entries: HashMap<u64, (PartitionKey, GroupStats)>,
}

impl GroupSketch {
    /// A sketch keeping at most `capacity` groups across compactions
    /// (`0` = unbounded, exact counting).
    pub fn new(capacity: usize) -> GroupSketch {
        GroupSketch {
            capacity,
            ..Default::default()
        }
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of groups currently tracked (may transiently exceed
    /// `capacity` by up to 50% between compactions).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no group is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current over-estimate floor (0 until the first eviction).
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Count one routed event for the group with routing hash `h`;
    /// `mk_key` materializes the group key only when the group is seen for
    /// the first time (the steady-state path is allocation-free).
    pub fn bump_events(&mut self, h: u64, mk_key: impl FnOnce() -> PartitionKey) {
        use std::collections::hash_map::Entry;
        match self.entries.entry(h) {
            Entry::Occupied(mut e) => e.get_mut().1.events += 1,
            Entry::Vacant(v) => {
                let stats = GroupStats {
                    events: self.floor + 1,
                    vertices: 0,
                };
                v.insert((mk_key(), stats));
                self.compact_if_needed();
            }
        }
    }

    /// Add engine-reported live vertices to a group (the `finish`-time
    /// load signal). Untracked groups are admitted at the floor so vertex
    /// reporting cannot resurrect unbounded growth.
    pub fn add_vertices(&mut self, key: &PartitionKey, n: u64) {
        use std::collections::hash_map::Entry;
        let h = group_key_hash(key);
        match self.entries.entry(h) {
            Entry::Occupied(mut e) => e.get_mut().1.vertices += n,
            Entry::Vacant(v) => {
                let stats = GroupStats {
                    events: self.floor,
                    vertices: n,
                };
                v.insert((key.clone(), stats));
                self.compact_if_needed();
            }
        }
    }

    /// Evict down to `capacity` once the table exceeds 1.5 × `capacity`:
    /// keep the heaviest groups (ties broken by key, so compactions are
    /// deterministic and replay identically after recovery) and raise the
    /// floor to the largest evicted count.
    fn compact_if_needed(&mut self) {
        if self.capacity == 0 || self.entries.len() <= self.capacity + self.capacity / 2 {
            return;
        }
        let evicted: Vec<(u64, u64)> = {
            let mut all: Vec<(u64, u64, &PartitionKey)> = self
                .entries
                .iter()
                .map(|(&h, (k, st))| (st.events, h, k))
                .collect();
            all.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(b.2)));
            all[self.capacity..]
                .iter()
                .map(|&(events, h, _)| (events, h))
                .collect()
        };
        for (events, h) in evicted {
            self.floor = self.floor.max(events);
            self.entries.remove(&h);
        }
    }

    /// The top `capacity` tracked groups (all of them when unbounded),
    /// sorted by group key — the executor's public
    /// [`group_stats`](crate::executor::ExecutorStats::group_stats) view,
    /// never larger than the configured K.
    pub fn top_sorted(&self) -> Vec<(PartitionKey, GroupStats)> {
        let mut all: Vec<(PartitionKey, GroupStats)> = self
            .entries
            .values()
            .map(|(k, st)| (k.clone(), *st))
            .collect();
        if self.capacity != 0 && all.len() > self.capacity {
            all.sort_by(|a, b| b.1.events.cmp(&a.1.events).then_with(|| a.0.cmp(&b.0)));
            all.truncate(self.capacity);
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Drain the sketch: every tracked group with its event count, hottest
    /// first (key-tie-broken — deterministic), resetting counts *and* the
    /// floor. The skew detector calls this once per check interval.
    pub fn take_hottest_first(&mut self) -> Vec<(PartitionKey, u64)> {
        let mut out: Vec<(PartitionKey, u64)> = self
            .entries
            .drain()
            .map(|(_, (k, st))| (k, st.events))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        self.floor = 0;
        out
    }

    /// Append the binary encoding: floor, then `(key, stats)` entries
    /// sorted by key (deterministic blobs for byte-identical snapshots).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.floor);
        let mut entries: Vec<(&PartitionKey, &GroupStats)> =
            self.entries.values().map(|(k, st)| (k, st)).collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        put_u32(out, entries.len() as u32);
        for (key, stats) in entries {
            crate::state::encode_key(key, out);
            stats.encode(out);
        }
    }

    /// Rebuild a sketch with the given `capacity` from state written by
    /// [`encode`](Self::encode) (entries are re-hashed from their keys).
    /// If `capacity` is smaller than the snapshot's entry count (recovery
    /// under a tighter bound), the sketch compacts immediately — the
    /// configured bound holds from the first moment, not only after the
    /// next newly seen group.
    pub fn decode(capacity: usize, r: &mut Reader<'_>) -> Result<GroupSketch, CodecError> {
        let floor = r.u64()?;
        let n = r.seq_len(17)?;
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = crate::state::decode_key(r)?;
            let stats = GroupStats::decode(r)?;
            entries.insert(group_key_hash(&key), (key, stats));
        }
        let mut sketch = GroupSketch {
            capacity,
            floor,
            entries,
        };
        sketch.compact_if_needed();
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::Value;

    fn key(v: i64) -> PartitionKey {
        PartitionKey(vec![Some(Value::Int(v))])
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut s = GroupSketch::new(16);
        for i in 0..10i64 {
            for _ in 0..=i {
                s.bump_events(group_key_hash(&key(i)), || key(i));
            }
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.floor(), 0);
        let total: u64 = s.top_sorted().iter().map(|(_, st)| st.events).sum();
        assert_eq!(total, (1..=10).sum::<u64>());
    }

    #[test]
    fn overflow_keeps_heavy_groups_and_raises_floor() {
        // Space-saving keeps a heavy hitter distinguishable as long as its
        // count exceeds the error bound (~tail / capacity): 1000 singleton
        // groups over capacity 64 bounds the floor well below 100.
        let mut s = GroupSketch::new(64);
        // 4 heavy hitters with 100 events each…
        for i in 0..4i64 {
            for _ in 0..100 {
                s.bump_events(group_key_hash(&key(i)), || key(i));
            }
        }
        // …then a long tail of 1000 singletons.
        for i in 100..1100i64 {
            s.bump_events(group_key_hash(&key(i)), || key(i));
        }
        assert!(s.len() <= 96, "len {} exceeds 1.5×capacity", s.len());
        assert!(s.floor() >= 1, "evictions must raise the floor");
        assert!(s.floor() < 100, "floor {} swallowed the hitters", s.floor());
        let top = s.top_sorted();
        assert!(top.len() <= 64);
        for i in 0..4i64 {
            let got = top.iter().find(|(k, _)| *k == key(i));
            let st = got.expect("heavy hitter evicted").1;
            // Space-saving over-estimates, never under-estimates.
            assert!(st.events >= 100, "group {i} undercounted: {}", st.events);
        }
    }

    #[test]
    fn counts_sum_is_exact_without_eviction() {
        // Below capacity the sketch is an exact counter: the executor's
        // "group counters sum to released events" invariant holds.
        let mut s = GroupSketch::new(1024);
        let mut n = 0u64;
        for i in 0..50i64 {
            for _ in 0..(i % 7 + 1) {
                s.bump_events(group_key_hash(&key(i)), || key(i));
                n += 1;
            }
        }
        let total: u64 = s.top_sorted().iter().map(|(_, st)| st.events).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn vertices_attach_without_unbounded_growth() {
        let mut s = GroupSketch::new(4);
        for i in 0..100i64 {
            s.add_vertices(&key(i), (i % 3) as u64 + 1);
        }
        assert!(s.len() <= 6);
        assert!(s.top_sorted().len() <= 4);
    }

    #[test]
    fn take_hottest_first_is_sorted_and_resets() {
        let mut s = GroupSketch::new(0);
        for (g, n) in [(1i64, 5u64), (2, 9), (3, 5)] {
            for _ in 0..n {
                s.bump_events(group_key_hash(&key(g)), || key(g));
            }
        }
        let got = s.take_hottest_first();
        assert_eq!(
            got,
            vec![(key(2), 9), (key(1), 5), (key(3), 5)],
            "hottest first, key-tie-broken"
        );
        assert!(s.is_empty());
        assert_eq!(s.floor(), 0);
    }

    #[test]
    fn codec_roundtrip_preserves_floor_and_entries() {
        let mut s = GroupSketch::new(8);
        for i in 0..20i64 {
            for _ in 0..=(i % 5) {
                s.bump_events(group_key_hash(&key(i)), || key(i));
            }
        }
        s.add_vertices(&key(1), 7);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let got = GroupSketch::decode(8, &mut Reader::new(&buf)).unwrap();
        assert_eq!(got.floor(), s.floor());
        assert_eq!(got.top_sorted(), s.top_sorted());
        // Truncated blob fails cleanly.
        assert!(GroupSketch::decode(8, &mut Reader::new(&buf[..buf.len() / 2])).is_err());
    }

    #[test]
    fn decode_under_tighter_capacity_compacts_immediately() {
        // Recovery with a smaller group_stats_capacity than the snapshot's
        // entry count must enforce the new bound at decode time, not only
        // after the next newly seen group.
        let mut s = GroupSketch::new(0); // unbounded: track 100 groups
        for i in 0..100i64 {
            for _ in 0..=(i % 9) {
                s.bump_events(group_key_hash(&key(i)), || key(i));
            }
        }
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let got = GroupSketch::decode(16, &mut Reader::new(&buf)).unwrap();
        assert!(got.len() <= 16, "decode kept {} entries", got.len());
        assert!(got.floor() >= 1, "compaction must set the floor");
    }
}
