//! A checkable model of the executor's barrier cut protocol.
//!
//! [`crate::executor::StreamExecutor`] coordinates its shard workers
//! over FIFO channels: events are routed as frames, and checkpoints,
//! rebalances, and query registration changes travel **in-band** on the
//! same channels. A barrier cut (`Msg::Snapshot` in the executor) is
//! acked by every shard only after it has processed everything queued
//! before the barrier, and the coordinator drains result rows while it
//! waits (`collect_shard_states`) so the cut can never deadlock or tear.
//!
//! That protocol is easy to break in refactors and impossible to cover
//! with example tests — which interleaving of shard progress and
//! coordinator progress a real run takes is up to the OS scheduler.
//! This module re-states the protocol as a small pure-state-machine
//! model and **exhaustively explores every interleaving** with a
//! deterministic scheduler (a loom-lite: depth-first replay over a
//! choice stack, no threads involved). Four invariants are checked in
//! every schedule:
//!
//! 1. **All shards cut at the same sequence** — when a barrier
//!    completes, the union of the shards' processed-event sets is
//!    exactly the ingest prefix `1..=cut`, each event at exactly one
//!    shard.
//! 2. **No row crosses a barrier** — once a shard acked barrier `B`, a
//!    pre-cut row from that shard can never appear on the results
//!    channel again (it must have been carried inside the snapshot).
//! 3. **Snapshot accounting** — `barrier_snapshots == checkpoints +
//!    rebalances − fused_barriers`: adjacent cuts fuse into one
//!    snapshot, and none goes missing.
//! 4. **Exactly-once delivery** — every `(query, event)` result row is
//!    delivered exactly once across all paths: normal emission,
//!    snapshot carriage, deregister remainders, and the final drain.
//!
//! The checker also has a red path ([`Fault`]): injecting a shard that
//! skips its cut, or acks a barrier early, must produce a
//! [`Violation`] — a model checker that stops seeing broken protocols
//! fails CI (see `tests/protocol_model.rs` and the `static-analysis`
//! job).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// One scripted coordinator operation (the model's ingest plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Ingest the next event; it is routed to shard `seq % shards`.
    Ingest,
    /// Cut a checkpoint barrier across every shard.
    Checkpoint,
    /// Cut a rebalance barrier across every shard. Adjacent to a
    /// [`Op::Checkpoint`] (either order) the two fuse into one snapshot.
    Rebalance,
    /// Register query `id` on every shard (in-band, like the executor's
    /// `Msg::AddQuery`).
    Register(u32),
    /// Deregister query `id`; each shard must deliver its buffered
    /// remainder rows for the query exactly once.
    Deregister(u32),
}

/// A deliberately broken shard variant, used to prove the checker still
/// catches protocol violations (the model checker's red-path self-test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// Faithful protocol.
    #[default]
    None,
    /// The shard acks barriers *without* cutting its pending rows into
    /// the snapshot — the rows later leak onto the results channel past
    /// the barrier (violates invariants 2 and 4).
    SkipCut {
        /// Index of the misbehaving shard.
        shard: usize,
    },
    /// The shard acks a barrier ahead of events queued before it — its
    /// snapshot misses part of the prefix (violates invariant 1).
    EarlyAck {
        /// Index of the misbehaving shard.
        shard: usize,
    },
}

/// What to explore: shard count, coordinator script, optional fault.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of shard workers (1..=4; the state space is exponential).
    pub shards: usize,
    /// The coordinator's operation script, executed in order.
    pub script: Vec<Op>,
    /// Fault injection for the checker's own red path.
    pub fault: Fault,
    /// Hard cap on explored schedules; exceeding it is an error (the
    /// configuration is too large to explore exhaustively).
    pub max_schedules: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            shards: 2,
            script: Vec::new(),
            fault: Fault::None,
            max_schedules: 2_000_000,
        }
    }
}

/// Result of a complete exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreReport {
    /// Number of distinct complete schedules executed.
    pub schedules: u64,
    /// Longest schedule, in scheduler decisions (branching points only).
    pub max_decisions: usize,
    /// Longest schedule, in total model steps (including forced moves).
    pub max_steps: usize,
}

/// An invariant violation, with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// 1-based index of the violating schedule in exploration order.
    pub schedule: u64,
    /// Which invariant broke (short stable name).
    pub invariant: &'static str,
    /// Human-readable description of the broken state.
    pub detail: String,
    /// The full action trace of the violating schedule.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule {}: [{}] {} (trace: {} steps)",
            self.schedule,
            self.invariant,
            self.detail,
            self.trace.len()
        )
    }
}

impl std::error::Error for Violation {}

/// Coordinator → shard messages (the executor's `Msg`, reduced to what
/// the barrier protocol depends on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    Events { seq: u64 },
    Barrier { id: u32 },
    AddQuery(u32),
    RemoveQuery(u32),
    Finish,
}

/// How a row reached the coordinator (all count as one delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Normal,
    Remainder,
    Final,
}

/// Shard → coordinator messages.
#[derive(Debug, Clone)]
enum Reply {
    Row {
        query: u32,
        seq: u64,
        kind: RowKind,
    },
    BarrierAck {
        id: u32,
        /// Every event seq this shard has processed so far.
        processed: Vec<u64>,
        /// Pending rows cut into the snapshot.
        snapshot: Vec<(u32, u64)>,
    },
    FinishAck,
}

/// One scheduler decision, kept compact so traces are cheap to record.
#[derive(Debug, Clone, Copy)]
enum Action {
    ShardProcess(usize),
    ShardEmit(usize),
    Advance,
}

impl Action {
    fn describe(self) -> String {
        match self {
            Action::ShardProcess(s) => format!("shard {s}: process next message"),
            Action::ShardEmit(s) => format!("shard {s}: emit oldest pending row"),
            Action::Advance => "coordinator: advance script".to_string(),
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    queue: VecDeque<Msg>,
    active: Vec<u32>,
    /// Result rows produced but not yet emitted: `(query, seq)`.
    pending: VecDeque<(u32, u64)>,
    /// Every event seq processed so far (cumulative; barrier acks report it).
    processed: Vec<u64>,
    out: VecDeque<Reply>,
}

#[derive(Debug)]
struct BarrierWait {
    id: u32,
    cut: u64,
    pending_acks: usize,
    processed_union: Vec<u64>,
}

#[derive(Debug, Default)]
struct Counters {
    checkpoints: u64,
    rebalances: u64,
    fused_barriers: u64,
    barrier_snapshots: u64,
}

/// One execution of the model under a scheduler choice prefix.
struct Run<'a> {
    cfg: &'a ModelConfig,
    shards: Vec<Shard>,
    script_pos: usize,
    seq: u64,
    next_barrier_id: u32,
    actives: Vec<u32>,
    barrier: Option<BarrierWait>,
    /// Per shard: the global cut seq of the last barrier it acked.
    last_cut_acked: Vec<Option<u64>>,
    counters: Counters,
    finish_sent: bool,
    finish_acks: usize,
    /// Delivery ledger: `(query, seq)` → `(expected, deliveries)`.
    ledger: BTreeMap<(u32, u64), (bool, u32)>,
    trace: Vec<Action>,
    steps: usize,
}

/// The outcome of a single run: executed `(choice, branching factor)`
/// pairs at every *branching* point (forced moves are not recorded).
struct RunOutcome {
    decisions: Vec<(usize, usize)>,
    steps: usize,
    violation: Option<(&'static str, String)>,
}

impl<'a> Run<'a> {
    fn new(cfg: &'a ModelConfig) -> Run<'a> {
        Run {
            cfg,
            shards: (0..cfg.shards).map(|_| Shard::default()).collect(),
            script_pos: 0,
            seq: 0,
            next_barrier_id: 0,
            actives: Vec::new(),
            barrier: None,
            last_cut_acked: vec![None; cfg.shards],
            counters: Counters::default(),
            finish_sent: false,
            finish_acks: 0,
            ledger: BTreeMap::new(),
            trace: Vec::new(),
            steps: 0,
        }
    }

    /// Deterministically ordered enabled actions at the current state.
    fn enabled(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if !shard.queue.is_empty() {
                acts.push(Action::ShardProcess(s));
            }
        }
        for (s, shard) in self.shards.iter().enumerate() {
            if !shard.pending.is_empty() {
                acts.push(Action::ShardEmit(s));
            }
        }
        if self.barrier.is_none() && (self.script_pos < self.cfg.script.len() || !self.finish_sent)
        {
            acts.push(Action::Advance);
        }
        acts
    }

    fn broadcast(&mut self, m: Msg) {
        for shard in &mut self.shards {
            shard.queue.push_back(m);
        }
    }

    /// Coordinator: execute the next scripted op (or the final drain).
    fn advance(&mut self) {
        if self.script_pos >= self.cfg.script.len() {
            self.broadcast(Msg::Finish);
            self.finish_sent = true;
            return;
        }
        match self.cfg.script[self.script_pos] {
            Op::Ingest => {
                self.seq += 1;
                let seq = self.seq;
                for &q in &self.actives {
                    self.ledger.entry((q, seq)).or_insert((false, 0)).0 = true;
                }
                let dest = (seq % self.cfg.shards as u64) as usize;
                if let Some(shard) = self.shards.get_mut(dest) {
                    shard.queue.push_back(Msg::Events { seq });
                }
                self.script_pos += 1;
            }
            Op::Checkpoint | Op::Rebalance => {
                // Gather the run of adjacent cut requests: they fuse into
                // one barrier snapshot (the executor's fused_barriers).
                let mut fused = 0u64;
                while let Some(op) = self.cfg.script.get(self.script_pos) {
                    match op {
                        Op::Checkpoint => self.counters.checkpoints += 1,
                        Op::Rebalance => self.counters.rebalances += 1,
                        _ => break,
                    }
                    fused += 1;
                    self.script_pos += 1;
                }
                self.counters.fused_barriers += fused - 1;
                self.counters.barrier_snapshots += 1;
                let id = self.next_barrier_id;
                self.next_barrier_id += 1;
                self.broadcast(Msg::Barrier { id });
                self.barrier = Some(BarrierWait {
                    id,
                    cut: self.seq,
                    pending_acks: self.cfg.shards,
                    processed_union: Vec::new(),
                });
            }
            Op::Register(q) => {
                if !self.actives.contains(&q) {
                    self.actives.push(q);
                }
                self.broadcast(Msg::AddQuery(q));
                self.script_pos += 1;
            }
            Op::Deregister(q) => {
                self.actives.retain(|&a| a != q);
                self.broadcast(Msg::RemoveQuery(q));
                self.script_pos += 1;
            }
        }
    }

    /// Shard `s`: process one queued message. A faithful shard takes the
    /// queue head (FIFO); an [`Fault::EarlyAck`] shard jumps a queued
    /// barrier past the events in front of it.
    fn shard_process(&mut self, s: usize) {
        let early_ack = matches!(self.cfg.fault, Fault::EarlyAck { shard } if shard == s);
        let skip_cut = matches!(self.cfg.fault, Fault::SkipCut { shard } if shard == s);
        let Some(shard) = self.shards.get_mut(s) else {
            return;
        };
        let msg = if early_ack {
            match shard
                .queue
                .iter()
                .position(|m| matches!(m, Msg::Barrier { .. }))
            {
                Some(i) => shard.queue.remove(i),
                None => shard.queue.pop_front(),
            }
        } else {
            shard.queue.pop_front()
        };
        let Some(msg) = msg else { return };
        match msg {
            Msg::Events { seq } => {
                shard.processed.push(seq);
                for &q in &shard.active {
                    shard.pending.push_back((q, seq));
                }
            }
            Msg::Barrier { id } => {
                let snapshot = if skip_cut {
                    Vec::new()
                } else {
                    shard.pending.drain(..).collect()
                };
                shard.out.push_back(Reply::BarrierAck {
                    id,
                    processed: shard.processed.clone(),
                    snapshot,
                });
            }
            Msg::AddQuery(q) => {
                if !shard.active.contains(&q) {
                    shard.active.push(q);
                }
            }
            Msg::RemoveQuery(q) => {
                let mut kept = VecDeque::with_capacity(shard.pending.len());
                for (query, seq) in shard.pending.drain(..) {
                    if query == q {
                        shard.out.push_back(Reply::Row {
                            query,
                            seq,
                            kind: RowKind::Remainder,
                        });
                    } else {
                        kept.push_back((query, seq));
                    }
                }
                shard.pending = kept;
                shard.active.retain(|&a| a != q);
            }
            Msg::Finish => {
                for (query, seq) in shard.pending.drain(..) {
                    shard.out.push_back(Reply::Row {
                        query,
                        seq,
                        kind: RowKind::Final,
                    });
                }
                shard.out.push_back(Reply::FinishAck);
            }
        }
    }

    /// Shard `s`: emit its oldest pending row (the normal results path).
    fn shard_emit(&mut self, s: usize) {
        if let Some(shard) = self.shards.get_mut(s) {
            if let Some((query, seq)) = shard.pending.pop_front() {
                shard.out.push_back(Reply::Row {
                    query,
                    seq,
                    kind: RowKind::Normal,
                });
            }
        }
    }

    /// Coordinator: drain every shard's output queue, checking invariants
    /// as replies arrive. Deterministic (no scheduler choice): per-shard
    /// FIFO order is what the invariants constrain, and that is fixed by
    /// the shard's own actions.
    fn drain_outputs(&mut self) -> Result<(), (&'static str, String)> {
        for s in 0..self.shards.len() {
            while let Some(reply) = self
                .shards
                .get_mut(s)
                .and_then(|shard| shard.out.pop_front())
            {
                match reply {
                    Reply::Row { query, seq, kind } => {
                        // Any delivery path counts: after a shard acked a
                        // barrier, the only legal carrier for a pre-cut
                        // row was that barrier's snapshot.
                        if let Some(cut) = self.last_cut_acked[s] {
                            if seq <= cut {
                                return Err((
                                    "row-crosses-barrier",
                                    format!(
                                        "shard {s} emitted {kind:?} row (q{query}, e{seq}) \
                                         after acking a barrier with cut {cut}; the row \
                                         belonged in that snapshot"
                                    ),
                                ));
                            }
                        }
                        self.record_delivery(query, seq)?;
                    }
                    Reply::BarrierAck {
                        id,
                        processed,
                        snapshot,
                    } => {
                        let Some(wait) = self.barrier.as_mut() else {
                            return Err((
                                "barrier-protocol",
                                format!("shard {s} acked barrier {id} with no barrier in flight"),
                            ));
                        };
                        if wait.id != id {
                            return Err((
                                "barrier-protocol",
                                format!("shard {s} acked barrier {id}, expected {}", wait.id),
                            ));
                        }
                        wait.processed_union.extend(processed);
                        wait.pending_acks -= 1;
                        let cut = wait.cut;
                        let complete = wait.pending_acks == 0;
                        if complete {
                            let mut union = std::mem::take(&mut wait.processed_union);
                            union.sort_unstable();
                            let expect: Vec<u64> = (1..=cut).collect();
                            if union != expect {
                                return Err((
                                    "shards-cut-at-different-seqs",
                                    format!(
                                        "barrier {id} completed with processed union {union:?}, \
                                         expected the full ingest prefix 1..={cut}"
                                    ),
                                ));
                            }
                            self.barrier = None;
                        }
                        self.last_cut_acked[s] = Some(cut);
                        for (query, seq) in snapshot {
                            self.record_delivery(query, seq)?;
                        }
                    }
                    Reply::FinishAck => self.finish_acks += 1,
                }
            }
        }
        Ok(())
    }

    fn record_delivery(&mut self, query: u32, seq: u64) -> Result<(), (&'static str, String)> {
        let entry = self.ledger.entry((query, seq)).or_insert((false, 0));
        entry.1 += 1;
        if !entry.0 {
            return Err((
                "exactly-once-delivery",
                format!("row (q{query}, e{seq}) was delivered but never expected"),
            ));
        }
        if entry.1 > 1 {
            return Err((
                "exactly-once-delivery",
                format!("row (q{query}, e{seq}) delivered {} times", entry.1),
            ));
        }
        Ok(())
    }

    /// End-of-run checks (all queues drained, script done).
    fn final_checks(&self) -> Result<(), (&'static str, String)> {
        if self.barrier.is_some() {
            return Err((
                "barrier-protocol",
                "execution ended with a barrier still in flight".into(),
            ));
        }
        if self.finish_acks != self.cfg.shards {
            return Err((
                "barrier-protocol",
                format!(
                    "only {}/{} shards acked the final drain",
                    self.finish_acks, self.cfg.shards
                ),
            ));
        }
        let c = &self.counters;
        if c.barrier_snapshots != c.checkpoints + c.rebalances - c.fused_barriers {
            return Err((
                "snapshot-accounting",
                format!(
                    "barrier_snapshots {} != checkpoints {} + rebalances {} - fused {}",
                    c.barrier_snapshots, c.checkpoints, c.rebalances, c.fused_barriers
                ),
            ));
        }
        for (&(query, seq), &(expected, deliveries)) in &self.ledger {
            if expected && deliveries != 1 {
                return Err((
                    "exactly-once-delivery",
                    format!("row (q{query}, e{seq}) delivered {deliveries} times, expected 1"),
                ));
            }
        }
        Ok(())
    }

    /// Execute one schedule guided by `prefix` (choices beyond the prefix
    /// default to 0, i.e. the first enabled action).
    fn execute(mut self, prefix: &[usize]) -> (RunOutcome, Vec<Action>) {
        let mut decisions: Vec<(usize, usize)> = Vec::new();
        loop {
            let acts = self.enabled();
            if acts.is_empty() {
                let violation = self.final_checks().err();
                return (
                    RunOutcome {
                        decisions,
                        steps: self.steps,
                        violation,
                    },
                    self.trace,
                );
            }
            let choice = if acts.len() == 1 {
                0
            } else {
                let c = prefix.get(decisions.len()).copied().unwrap_or(0);
                decisions.push((c, acts.len()));
                c
            };
            let act = acts[choice.min(acts.len() - 1)];
            self.trace.push(act);
            self.steps += 1;
            match act {
                Action::ShardProcess(s) => self.shard_process(s),
                Action::ShardEmit(s) => self.shard_emit(s),
                Action::Advance => self.advance(),
            }
            if let Err(v) = self.drain_outputs() {
                return (
                    RunOutcome {
                        decisions,
                        steps: self.steps,
                        violation: Some(v),
                    },
                    self.trace,
                );
            }
        }
    }
}

/// Exhaustively explore every schedule of the configured model,
/// checking all four barrier-protocol invariants in each. Returns the
/// exploration statistics, or the first [`Violation`] found.
///
/// The exploration is a depth-first replay: each complete execution is
/// re-run from the initial state under a choice prefix, and the prefix
/// is advanced lexicographically until the whole tree is covered. State
/// is never cloned mid-run, so the model stays a plain single-threaded
/// state machine — schedules are reproducible by construction.
pub fn explore(cfg: &ModelConfig) -> Result<ExploreReport, Box<Violation>> {
    assert!(
        (1..=4).contains(&cfg.shards),
        "model supports 1..=4 shards (state space is exponential)"
    );
    assert!(
        cfg.script.len() <= 32,
        "scripts longer than 32 ops do not explore exhaustively"
    );
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    let mut max_decisions = 0usize;
    let mut max_steps = 0usize;
    loop {
        schedules += 1;
        if schedules > cfg.max_schedules {
            return Err(Box::new(Violation {
                schedule: schedules,
                invariant: "exploration-budget",
                detail: format!(
                    "more than {} schedules; shrink the script or shard count",
                    cfg.max_schedules
                ),
                trace: Vec::new(),
            }));
        }
        let (outcome, trace) = Run::new(cfg).execute(&prefix);
        if let Some((invariant, detail)) = outcome.violation {
            return Err(Box::new(Violation {
                schedule: schedules,
                invariant,
                detail,
                trace: trace.into_iter().map(Action::describe).collect(),
            }));
        }
        max_decisions = max_decisions.max(outcome.decisions.len());
        max_steps = max_steps.max(outcome.steps);
        // Advance the choice prefix lexicographically (next sibling of
        // the deepest branch; pop exhausted levels).
        let mut next: Vec<(usize, usize)> = outcome.decisions;
        while let Some((choice, factor)) = next.pop() {
            if choice + 1 < factor {
                next.push((choice + 1, factor));
                break;
            }
        }
        if next.is_empty() {
            return Ok(ExploreReport {
                schedules,
                max_decisions,
                max_steps,
            });
        }
        prefix = next.into_iter().map(|(c, _)| c).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, script: Vec<Op>) -> ModelConfig {
        ModelConfig {
            shards,
            script,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn empty_script_has_one_schedule() {
        let r = explore(&cfg(2, vec![])).unwrap();
        // Only the final drain runs; a handful of forced interleavings.
        assert!(r.schedules >= 1);
    }

    #[test]
    fn single_ingest_is_clean() {
        let r = explore(&cfg(2, vec![Op::Register(1), Op::Ingest, Op::Checkpoint])).unwrap();
        assert!(r.schedules > 1);
    }

    #[test]
    fn fused_cuts_account_for_one_snapshot() {
        // Checkpoint directly followed by Rebalance: one barrier, counters
        // must still balance (invariant 3 is checked in every schedule).
        explore(&cfg(
            2,
            vec![
                Op::Register(1),
                Op::Ingest,
                Op::Checkpoint,
                Op::Rebalance,
                Op::Ingest,
                Op::Checkpoint,
            ],
        ))
        .unwrap();
    }

    #[test]
    fn skip_cut_fault_is_caught() {
        let mut c = cfg(
            2,
            vec![Op::Register(1), Op::Ingest, Op::Ingest, Op::Checkpoint],
        );
        c.fault = Fault::SkipCut { shard: 0 };
        let v = explore(&c).unwrap_err();
        assert!(
            v.invariant == "row-crosses-barrier" || v.invariant == "exactly-once-delivery",
            "{v}"
        );
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn early_ack_fault_is_caught() {
        let mut c = cfg(
            2,
            vec![Op::Register(1), Op::Ingest, Op::Ingest, Op::Checkpoint],
        );
        c.fault = Fault::EarlyAck { shard: 0 };
        let v = explore(&c).unwrap_err();
        assert_eq!(v.invariant, "shards-cut-at-different-seqs", "{v}");
    }
}
