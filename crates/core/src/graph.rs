//! Runtime GRETA graphs for one stream partition (paper §4.2, Algorithm 2,
//! extended with negation §5.2, sliding windows §6 and selection semantics
//! §9).
//!
//! An [`AltRuntime`] maintains one [`GraphStorage`] per graph of a compiled
//! alternative (the positive root plus negative sub-patterns). Processing an
//! event:
//!
//! 1. offer it to every graph/state whose event type matches (Case-3
//!    negation may drop it, Fig. 8(b));
//! 2. filter by vertex predicates;
//! 3. find valid predecessors per predecessor state — Vertex-Tree range
//!    query for the range-form edge predicate, residual predicates on the
//!    candidates, Definition-5 invalidation thresholds, selection-semantics
//!    filter;
//! 4. insert iff START or some predecessor exists (Algorithm 2 line 5);
//! 5. compute the per-window aggregates by merging predecessor states and
//!    applying the event's own contribution (Theorem 9.1);
//! 6. END events: root graphs report their aggregate to the caller;
//!    negative graphs append to their [`InvalidationLog`] and prune the
//!    finished trend (Example 5).

use crate::agg::{AggLayout, AggState, TrendNum};
use crate::negation::{
    end_event_valid_at_close, insertion_dropped, needs_deferred_final, predecessor_valid, DepMode,
    Dependency, InvalidationLog,
};
use crate::semantics::Semantics;
use crate::storage::{GraphStorage, Vertex, VertexId};
use crate::window::{pane_length, windows_of, WindowId};
use greta_query::compile::AltPlan;
use greta_query::predicate::{CompiledExpr, EdgePredicate};
use greta_query::{StateId, WindowSpec};
use greta_types::{EventRef, Time};

/// Immutable per-event processing context.
#[derive(Debug, Clone, Copy)]
pub struct Ctx<'a> {
    /// Aggregate layout of the query.
    pub layout: &'a AggLayout,
    /// The window specification.
    pub window: WindowSpec,
    /// Selection semantics.
    pub semantics: Semantics,
    /// Whether Vertex-Tree range queries are used (ablation switch).
    pub use_range_index: bool,
}

/// One graph's runtime state.
struct GraphRuntime<N: TrendNum> {
    storage: GraphStorage<N>,
    /// Invalidations produced by this graph (non-empty only for negative
    /// graphs that finished trends).
    log: InvalidationLog,
    /// Dependencies on child (negative) graphs.
    deps: Vec<Dependency>,
}

/// Compiled per-state accessors of one graph, resolved once from the plan
/// (no per-event name/hash lookups or predicate scans on the hot path):
/// dispatch table from event type to candidate states, hoisted vertex and
/// edge predicate lists, START/END flags, and the range-query predicate
/// index per predecessor state.
struct GraphOps {
    /// `TypeId.0` → indices into [`GraphOps::states`].
    dispatch: Vec<Box<[usize]>>,
    /// Per-state ops, in `state_types` order.
    states: Vec<StateOps>,
}

/// Compiled accessors for one template state.
struct StateOps {
    state: StateId,
    is_start: bool,
    is_end: bool,
    /// Local filters of this state (§6), hoisted out of the per-event scan.
    vertex_preds: Vec<CompiledExpr>,
    /// One entry per predecessor state, hoisted out of the per-event
    /// `predecessors()` + `edge_preds()` collection.
    preds: Vec<PredOps>,
}

/// Compiled edge-predicate set for one `(prev_state, state)` pair.
struct PredOps {
    p_state: StateId,
    eps: Vec<EdgePredicate>,
    /// Index into `eps` of the predicate the Vertex Tree answers as a
    /// range query (honored only when `Ctx::use_range_index` is set).
    range_idx: Option<usize>,
}

/// Runtime of one compiled alternative within one partition.
pub struct AltRuntime<N: TrendNum> {
    graphs: Vec<GraphRuntime<N>>,
    /// Compiled accessors, parallel to `graphs`.
    ops: Vec<GraphOps>,
    /// Vertices inserted (statistics).
    pub vertices_inserted: u64,
    /// Edges traversed, i.e. predecessor pairs merged (statistics; the
    /// quadratic term of Theorem 8.1).
    pub edges_traversed: u64,
}

impl<N: TrendNum> AltRuntime<N> {
    /// Set up runtime state for an alternative.
    pub fn new(plan: &AltPlan, window: &WindowSpec) -> AltRuntime<N> {
        let pane_len = pane_length(window);
        let mut graphs = Vec::with_capacity(plan.graphs.len());
        let mut ops = Vec::with_capacity(plan.graphs.len());
        for spec in &plan.graphs {
            let n_states = spec
                .template
                .states
                .iter()
                .map(|s| s.occ.0 as usize + 1)
                .max()
                .unwrap_or(0);
            // Sort attribute per state: first range-form edge predicate
            // using this state as the previous side.
            let mut sort_attr: Vec<Option<greta_types::AttrId>> = vec![None; n_states];
            for s in &spec.template.states {
                sort_attr[s.occ.0 as usize] = plan
                    .predicates
                    .edges
                    .iter()
                    .filter(|e| e.prev_state == s.occ)
                    .find_map(|e| e.range.as_ref().map(|r| r.prev_attr));
            }
            let mut states: Vec<StateOps> = Vec::with_capacity(spec.state_types.len());
            let mut dispatch: Vec<Vec<usize>> = Vec::new();
            for (sid, tid) in &spec.state_types {
                let ti = tid.0 as usize;
                if dispatch.len() <= ti {
                    dispatch.resize(ti + 1, Vec::new());
                }
                dispatch[ti].push(states.len());
                let preds = spec
                    .template
                    .predecessors(*sid)
                    .into_iter()
                    .map(|p_state| {
                        let eps: Vec<EdgePredicate> =
                            plan.predicates.edge_preds(p_state, *sid).cloned().collect();
                        let range_idx = eps.iter().position(|ep| {
                            ep.range.as_ref().is_some_and(|r| {
                                sort_attr.get(p_state.0 as usize).copied().flatten()
                                    == Some(r.prev_attr)
                            })
                        });
                        PredOps {
                            p_state,
                            eps,
                            range_idx,
                        }
                    })
                    .collect();
                states.push(StateOps {
                    state: *sid,
                    is_start: spec.template.is_start(*sid),
                    is_end: spec.template.is_end(*sid),
                    vertex_preds: plan
                        .predicates
                        .vertex_preds(*sid)
                        .map(|p| p.expr.clone())
                        .collect(),
                    preds,
                });
            }
            let deps = plan
                .graphs
                .iter()
                .filter(|g| g.parent == Some(spec.id))
                .map(|g| Dependency {
                    child: g.id,
                    mode: DepMode::of(g),
                })
                .collect();
            graphs.push(GraphRuntime {
                storage: GraphStorage::new(pane_len, sort_attr),
                log: InvalidationLog::default(),
                deps,
            });
            ops.push(GraphOps {
                dispatch: dispatch.into_iter().map(Vec::into_boxed_slice).collect(),
                states,
            });
        }
        AltRuntime {
            graphs,
            ops,
            vertices_inserted: 0,
            edges_traversed: 0,
        }
    }

    /// True when final aggregates must be computed at window close instead
    /// of incrementally (trailing negation on the root, Case 2).
    pub fn needs_deferred_final(&self) -> bool {
        needs_deferred_final(&self.graphs[0].deps)
    }

    /// Process one event. `event_seq` is the partition-local arrival index.
    /// `on_root_end` is called once per window entry of every END vertex
    /// inserted into the **root** graph (drives incremental final
    /// aggregation, Algorithm 2 line 8).
    // lint:hot-path
    pub fn process(
        &mut self,
        ctx: &Ctx<'_>,
        e: &EventRef,
        event_seq: u64,
        mut on_root_end: impl FnMut(WindowId, &AggState<N>),
    ) {
        for gi in 0..self.graphs.len() {
            self.process_graph(ctx, gi, e, event_seq, &mut on_root_end);
        }
    }

    // lint:hot-path
    fn process_graph(
        &mut self,
        ctx: &Ctx<'_>,
        gi: usize,
        e: &EventRef,
        event_seq: u64,
        on_root_end: &mut impl FnMut(WindowId, &AggState<N>),
    ) {
        // Compiled dispatch: event type → candidate states, one array index.
        let ops = &self.ops[gi];
        let Some(state_idxs) = ops.dispatch.get(e.type_id.0 as usize) else {
            return;
        };
        if state_idxs.is_empty() {
            return;
        }

        // Case-3 negation: drop events arriving strictly after the first
        // finished trend of a DropFollowing child (Fig. 8(b)).
        {
            let deps = &self.graphs[gi].deps;
            let logs =
                |g: greta_query::compile::GraphId| self.graphs.get(g.0 as usize).map(|gr| &gr.log);
            if insertion_dropped(deps, logs, e.time) {
                return;
            }
        }

        for &si in state_idxs.iter() {
            let so = &ops.states[si];
            let state = so.state;
            // Vertex predicates (local filters, §6), hoisted at plan time.
            if !so.vertex_preds.iter().all(|p| p.eval_bool(None, e)) {
                continue;
            }
            let is_start = so.is_start;
            let is_end = so.is_end;

            // --- predecessor collection ------------------------------------
            // lint:allow(hot-path): per-state scratch; hoisting it would alias the storage borrow taken inside visit_candidates
            let mut preds: Vec<VertexId> = Vec::new();
            let lo = Time(e.time.ticks().saturating_sub(ctx.window.within - 1));
            for po in &so.preds {
                let p_state = po.p_state;
                let eps = &po.eps;
                // Range form answered by the Vertex Tree (if it sorts on
                // the predicate's attribute; resolved at plan time).
                let range_idx = if ctx.use_range_index {
                    po.range_idx
                } else {
                    None
                };
                let range = range_idx.map(|i| eps[i].range.as_ref().unwrap().bound(e));

                let (storage, deps, logs_src) = {
                    let (before, rest) = self.graphs.split_at(gi);
                    let (cur, after) = rest.split_first().unwrap();
                    // Child graphs always have larger ids than the parent
                    // (BFS flattening), so their logs live in `after`.
                    let _ = before;
                    (&cur.storage, &cur.deps, after)
                };
                let logs = |g: greta_query::compile::GraphId| {
                    let idx = g.0 as usize;
                    idx.checked_sub(gi + 1)
                        .and_then(|i| logs_src.get(i))
                        .map(|gr| &gr.log)
                };

                let mut best: Option<(u64, VertexId)> = None; // skip-till-next
                storage.visit_candidates(p_state, lo, e.time, range, |id, v| {
                    // Definition-5 invalidation.
                    if !predecessor_valid(deps, logs, p_state, state, v.event.time, e.time) {
                        return;
                    }
                    // Residual edge predicates (the range one is exact).
                    for (i, ep) in eps.iter().enumerate() {
                        if Some(i) == range_idx {
                            continue;
                        }
                        if !ep.expr.eval_bool(Some(v.event.as_ref()), e) {
                            return;
                        }
                    }
                    match ctx.semantics {
                        Semantics::SkipTillAny => preds.push(id),
                        Semantics::Contiguous => {
                            if v.seq + 1 == event_seq {
                                preds.push(id);
                            }
                        }
                        Semantics::SkipTillNext => {
                            if best.is_none_or(|(s, _)| v.seq > s) {
                                best = Some((v.seq, id));
                            }
                        }
                    }
                });
                if let Some((_, id)) = best {
                    preds.push(id);
                }
            }

            // Algorithm 2 line 5: MID/END events need a predecessor.
            if !is_start && preds.is_empty() {
                continue;
            }

            // --- aggregate propagation (Theorem 9.1) ------------------------
            // lint:allow(hot-path): these aggregates ARE the new vertex's owned state — the allocation is the data structure, not a copy
            let mut aggs: Vec<(WindowId, AggState<N>)> = Vec::new();
            for w in windows_of(e.time, &ctx.window) {
                aggs.push((w, AggState::zero(ctx.layout)));
            }
            let mut latest_start = if is_start { e.time } else { Time::ZERO };
            {
                let storage = &self.graphs[gi].storage;
                for pid in &preds {
                    let pv = storage.store.get(*pid);
                    latest_start = latest_start.max(pv.latest_start);
                    for (w, st) in aggs.iter_mut() {
                        if let Some(ps) = pv.agg(*w) {
                            st.merge(ps);
                        }
                    }
                }
            }
            self.edges_traversed += preds.len() as u64;
            for (_, st) in aggs.iter_mut() {
                st.apply_own(e, is_start, ctx.layout);
            }

            let vertex = Vertex {
                // lint:allow(hot-path): EventRef is an Arc — clone() is a refcount bump, not a payload copy
                event: e.clone(),
                state,
                seq: event_seq,
                latest_start,
                aggs,
            };

            if is_end && gi == 0 {
                for (w, st) in &vertex.aggs {
                    on_root_end(*w, st);
                }
            }
            let finished_negative = is_end && gi != 0;
            self.graphs[gi].storage.insert(vertex);
            self.vertices_inserted += 1;

            if finished_negative {
                // A negative trend finished: record the invalidation and
                // prune the dominated prefix (Example 5, Theorem 5.1).
                self.graphs[gi].log.push(e.time, latest_start);
                self.graphs[gi].storage.purge_vertices_up_to(latest_start);
            }
        }
    }

    /// Deferred final aggregation for Case-2 negation: fold the aggregates
    /// of all still-valid END vertices of the root graph for window `wid`
    /// closing at `close_time`.
    pub fn collect_final(
        &self,
        plan: &AltPlan,
        layout: &AggLayout,
        wid: WindowId,
        close_time: Time,
    ) -> AggState<N> {
        let spec = &plan.graphs[0];
        let deps = &self.graphs[0].deps;
        let logs =
            |g: greta_query::compile::GraphId| self.graphs.get(g.0 as usize).map(|gr| &gr.log);
        let mut acc = AggState::zero(layout);
        self.graphs[0]
            .storage
            .visit_state(spec.template.end, |_, v| {
                if let Some(st) = v.agg(wid) {
                    if end_event_valid_at_close(deps, logs, v.event.time, close_time) {
                        acc.merge(st);
                    }
                }
            });
        acc
    }

    /// Batch-delete panes that ended before `deadline` in all graphs.
    pub fn purge_panes_before(&mut self, deadline: Time) -> usize {
        self.graphs
            .iter_mut()
            .map(|g| g.storage.purge_panes_before(deadline))
            .sum()
    }

    /// Live vertices across all graphs.
    pub fn len(&self) -> usize {
        self.graphs.iter().map(|g| g.storage.len()).sum()
    }

    /// True when no vertices are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of live state.
    pub fn bytes(&self) -> usize {
        self.graphs
            .iter()
            .map(|g| g.storage.bytes() + g.log.heap_size())
            .sum()
    }

    /// Append the binary encoding of the mutable runtime state: statistics
    /// counters, each graph's invalidation log, and every live vertex in
    /// pane order (durability snapshots). The immutable plan-derived parts
    /// (state indexes, sort attributes, dependencies) are rebuilt from the
    /// query on [`decode_state`](Self::decode_state).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use greta_types::codec::{put_u32, put_u64};
        put_u64(out, self.vertices_inserted);
        put_u64(out, self.edges_traversed);
        put_u32(out, self.graphs.len() as u32);
        for g in &self.graphs {
            g.log.encode(out);
            put_u32(out, g.storage.len() as u32);
            for pane in g.storage.panes() {
                for id in pane.all_ids() {
                    crate::state::encode_vertex(g.storage.store.get(id), out);
                }
            }
        }
    }

    /// Rebuild a runtime from `plan`/`window` and state written by
    /// [`encode_state`](Self::encode_state). Vertices are re-inserted in
    /// pane order, reconstructing the pane/tree indexes exactly.
    pub fn decode_state(
        plan: &AltPlan,
        window: &WindowSpec,
        r: &mut greta_types::Reader<'_>,
    ) -> Result<AltRuntime<N>, greta_types::CodecError> {
        use greta_types::CodecError;
        let mut rt = AltRuntime::new(plan, window);
        rt.vertices_inserted = r.u64()?;
        rt.edges_traversed = r.u64()?;
        let n = r.seq_len(8)?;
        if n != rt.graphs.len() {
            return Err(CodecError(format!(
                "graph count mismatch: snapshot has {n}, plan has {}",
                rt.graphs.len()
            )));
        }
        for g in &mut rt.graphs {
            g.log = crate::negation::InvalidationLog::decode(r)?;
            let nv = r.seq_len(27)?;
            for _ in 0..nv {
                let v = crate::state::decode_vertex(r)?;
                g.storage.insert(v);
            }
        }
        Ok(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_query::CompiledQuery;
    use greta_types::{EventBuilder, SchemaRegistry};

    fn setup(pattern: &str) -> (SchemaRegistry, CompiledQuery) {
        let mut reg = SchemaRegistry::new();
        for t in ["A", "B", "C", "D", "E"] {
            reg.register_type(t, &["attr"]).unwrap();
        }
        let q = CompiledQuery::parse(
            &format!("RETURN COUNT(*) PATTERN {pattern} WITHIN 1000 SLIDE 1000"),
            &reg,
        )
        .unwrap();
        (reg, q)
    }

    fn run_count(pattern: &str, events: &[(&str, u64)]) -> f64 {
        let (reg, q) = setup(pattern);
        let layout = AggLayout::new(&q.aggregates);
        let plan = &q.alternatives[0];
        let mut rt = AltRuntime::<f64>::new(plan, &q.window);
        let ctx = Ctx {
            layout: &layout,
            window: q.window,
            semantics: Semantics::SkipTillAny,
            use_range_index: true,
        };
        let mut total = 0.0;
        for (seq, (ty, t)) in events.iter().enumerate() {
            let e = EventBuilder::new(&reg, ty)
                .unwrap()
                .at(Time(*t))
                .build()
                .into_ref();
            rt.process(&ctx, &e, seq as u64 + 1, |_w, st| total += st.count);
        }
        total
    }

    #[test]
    fn figure_6c_count_43() {
        // (SEQ(A+, B))+ over {a1, b2, a3, a4, b7, a8, b9} = 43 trends (§4.2).
        let count = run_count(
            "(SEQ(A+, B))+",
            &[
                ("A", 1),
                ("B", 2),
                ("A", 3),
                ("A", 4),
                ("B", 7),
                ("A", 8),
                ("B", 9),
            ],
        );
        assert_eq!(count, 43.0);
    }

    #[test]
    fn example_1_count_11() {
        let count = run_count(
            "(SEQ(A+, B))+",
            &[("A", 1), ("B", 2), ("A", 3), ("A", 4), ("B", 7)],
        );
        assert_eq!(count, 11.0);
    }

    #[test]
    fn flat_kleene_counts_subsets() {
        // A+ over n a's: every non-empty subset in time order = 2^n - 1.
        let events: Vec<(&str, u64)> = (1..=6).map(|t| ("A", t)).collect();
        assert_eq!(run_count("A+", &events), 63.0);
    }

    #[test]
    fn seq_without_loop() {
        // SEQ(A+, B) over a1 a2 b3: trends (a1 b3), (a2 b3), (a1 a2 b3) = 3.
        assert_eq!(
            run_count("SEQ(A+, B)", &[("A", 1), ("A", 2), ("B", 3)]),
            3.0
        );
        // Irrelevant B first is skipped (no predecessor), Fig. 6(b).
        assert_eq!(
            run_count("SEQ(A+, B)", &[("B", 0), ("A", 1), ("A", 2), ("B", 3)]),
            3.0
        );
    }

    #[test]
    fn mid_events_need_predecessors() {
        // SEQ(A, B, C): b before any a is not inserted.
        assert_eq!(run_count("SEQ(A, B, C)", &[("B", 1), ("C", 2)]), 0.0);
        assert_eq!(
            run_count("SEQ(A, B, C)", &[("A", 1), ("B", 2), ("C", 3)]),
            1.0
        );
    }

    #[test]
    fn figure_6d_nested_negation() {
        // (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ over
        // {a1, b2, c2, a3, e3, a4, c5, d6, b7, a8, b9} (Example 4):
        // e3 invalidates c2, so (c5,d6) is the only negative trend; it marks
        // a1,a3,a4 invalid for b's after t6. b7 has no valid predecessors
        // and is not inserted. The marked a's still connect to a8
        // ("the marked a's are valid to connect to new a's"), so
        // a8.count = 1 + (a1:1 + b2:1 + a3:3 + a4:6) = 12; b9 connects to
        // a8 only: b9.count = 12. Final = b2 (1) + b9 (12) = 13.
        let count = run_count(
            "(SEQ(A+, NOT SEQ(C, NOT E, D), B))+",
            &[
                ("A", 1),
                ("B", 2),
                ("C", 2),
                ("A", 3),
                ("E", 3),
                ("A", 4),
                ("C", 5),
                ("D", 6),
                ("B", 7),
                ("A", 8),
                ("B", 9),
            ],
        );
        assert_eq!(count, 13.0);
    }

    #[test]
    fn negative_graph_pruning_keeps_count_correct() {
        // Same as above but with another (C,D) pair later: pruning c5,d6
        // after the first finished trend must not lose the invalidation.
        let count = run_count(
            "SEQ(A+, NOT SEQ(C, D), B)",
            &[("A", 1), ("C", 2), ("D", 3), ("A", 4), ("B", 5)],
        );
        // (c2,d3) invalidates a1 for b's after t3, but a1 still connects to
        // a4 (A→A is unaffected, Example 4): trends (a4,b5) and (a1,a4,b5).
        assert_eq!(count, 2.0);
    }

    #[test]
    fn case3_drops_following_events() {
        // SEQ(NOT E, A+): e3 kills all later a's (Fig. 8(b)).
        let count = run_count("SEQ(NOT E, A+)", &[("A", 1), ("A", 2), ("E", 3), ("A", 4)]);
        // Valid: trends within {a1, a2} = 3.
        assert_eq!(count, 3.0);
    }

    #[test]
    fn contiguous_semantics_counts_runs() {
        let (reg, q) = setup("A+");
        let layout = AggLayout::new(&q.aggregates);
        let plan = &q.alternatives[0];
        let mut rt = AltRuntime::<f64>::new(plan, &q.window);
        let ctx = Ctx {
            layout: &layout,
            window: q.window,
            semantics: Semantics::Contiguous,
            use_range_index: true,
        };
        let mut total = 0.0;
        for (seq, t) in [1u64, 2, 3].iter().enumerate() {
            let e = EventBuilder::new(&reg, "A")
                .unwrap()
                .at(Time(*t))
                .build()
                .into_ref();
            rt.process(&ctx, &e, seq as u64 + 1, |_w, st| total += st.count);
        }
        // Contiguous trends of a1 a2 a3: (a1),(a2),(a3),(a1a2),(a2a3),(a1a2a3) = 6
        assert_eq!(total, 6.0);
    }

    #[test]
    fn skip_till_next_is_polynomial() {
        let (reg, q) = setup("A+");
        let layout = AggLayout::new(&q.aggregates);
        let plan = &q.alternatives[0];
        let mut rt = AltRuntime::<f64>::new(plan, &q.window);
        let ctx = Ctx {
            layout: &layout,
            window: q.window,
            semantics: Semantics::SkipTillNext,
            use_range_index: true,
        };
        let mut total = 0.0;
        for (seq, t) in (1u64..=10).enumerate() {
            let e = EventBuilder::new(&reg, "A")
                .unwrap()
                .at(Time(t))
                .build()
                .into_ref();
            rt.process(&ctx, &e, seq as u64 + 1, |_w, st| total += st.count);
        }
        // Each event links only to its immediate predecessor: runs = n(n+1)/2.
        assert_eq!(total, 55.0);
    }

    #[test]
    fn stats_track_vertices_and_edges() {
        let (reg, q) = setup("A+");
        let layout = AggLayout::new(&q.aggregates);
        let plan = &q.alternatives[0];
        let mut rt = AltRuntime::<f64>::new(plan, &q.window);
        let ctx = Ctx {
            layout: &layout,
            window: q.window,
            semantics: Semantics::SkipTillAny,
            use_range_index: true,
        };
        for (seq, t) in (1u64..=4).enumerate() {
            let e = EventBuilder::new(&reg, "A")
                .unwrap()
                .at(Time(t))
                .build()
                .into_ref();
            rt.process(&ctx, &e, seq as u64 + 1, |_, _| {});
        }
        assert_eq!(rt.vertices_inserted, 4);
        assert_eq!(rt.edges_traversed, 1 + 2 + 3);
        assert_eq!(rt.len(), 4);
        assert!(rt.bytes() > 0);
    }
}
