//! Query results: one row per closed window per group (the *Results Hash
//! Table* of Fig. 11).

use crate::agg::{AggLayout, AggState, TrendNum};
use crate::grouping::PartitionKey;
use crate::window::WindowId;
use greta_query::compile::{AggKind, CompiledAgg};
use std::fmt;

/// One output aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub enum OutValue<N: TrendNum> {
    /// Exact count/sum in the engine's numeric carrier.
    Count(N),
    /// Floating-point value (MIN/MAX/AVG).
    Float(f64),
}

impl<N: TrendNum> OutValue<N> {
    /// Numeric view.
    pub fn to_f64(&self) -> f64 {
        match self {
            OutValue::Count(n) => n.to_f64(),
            OutValue::Float(f) => *f,
        }
    }
}

impl<N: TrendNum> fmt::Display for OutValue<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutValue::Count(n) => write!(f, "{}", n.display()),
            OutValue::Float(x) => write!(f, "{x}"),
        }
    }
}

/// One result row: the aggregates of one group in one closed window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult<N: TrendNum> {
    /// The window.
    pub window: WindowId,
    /// The group key (`GROUP-BY` attribute values).
    pub group: PartitionKey,
    /// Aggregate values, aligned with the query's `RETURN` aggregates.
    pub values: Vec<OutValue<N>>,
}

impl<N: TrendNum> WindowResult<N> {
    /// The row's stable result key, `(window, group)` — the canonical
    /// emission order. `(window, group)` identifies a row uniquely (each
    /// group is owned by exactly one shard and a window emits one row per
    /// group), so sorting by this key is a total order over any run's
    /// output, whatever the shard count.
    pub fn order_key(&self) -> (WindowId, &PartitionKey) {
        (self.window, &self.group)
    }

    /// Append the binary encoding of this row (`window, group, values`) —
    /// the same framing durability snapshots use, public so result rows
    /// can cross process boundaries (the network front-end streams them).
    pub fn encode(&self, out: &mut Vec<u8>) {
        crate::state::encode_window_result(self, out);
    }

    /// Decode a row written by [`encode`](Self::encode).
    pub fn decode(
        r: &mut greta_types::Reader<'_>,
    ) -> Result<WindowResult<N>, greta_types::CodecError> {
        crate::state::decode_window_result(r)
    }
}

/// Sort rows into the canonical `(window, group)` emission order — what
/// [`finish`](crate::executor::StreamExecutor::finish) returns under
/// unordered emission and what `WindowOrdered` streams incrementally.
pub fn sort_canonical<N: TrendNum>(rows: &mut [WindowResult<N>]) {
    rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
}

/// Render a final [`AggState`] into the query's output values.
pub fn render_aggregates<N: TrendNum>(
    state: &AggState<N>,
    aggs: &[CompiledAgg],
    layout: &AggLayout,
) -> Vec<OutValue<N>> {
    aggs.iter()
        .map(|a| match a.kind {
            AggKind::CountStar => OutValue::Count(state.count.clone()),
            AggKind::Count(t) => {
                let i = layout.count_slot(t).expect("layout covers aggregates");
                OutValue::Count(state.counts_e[i].clone())
            }
            AggKind::Min(t, at) => {
                let i = layout.min_slot(t, at).expect("layout covers aggregates");
                OutValue::Float(state.mins[i])
            }
            AggKind::Max(t, at) => {
                let i = layout.max_slot(t, at).expect("layout covers aggregates");
                OutValue::Float(state.maxs[i])
            }
            AggKind::Sum(t, at) => {
                let i = layout.sum_slot(t, at).expect("layout covers aggregates");
                OutValue::Count(state.sums[i].clone())
            }
            AggKind::Avg(t, at) => {
                let ci = layout.count_slot(t).expect("layout covers aggregates");
                let si = layout.sum_slot(t, at).expect("layout covers aggregates");
                let c = state.counts_e[ci].to_f64();
                let s = state.sums[si].to_f64();
                OutValue::Float(if c == 0.0 { f64::NAN } else { s / c })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{AttrId, Event, Time, TypeId, Value};

    #[test]
    fn render_all_aggregate_kinds() {
        let t = TypeId(0);
        let at = AttrId(0);
        let aggs = vec![
            CompiledAgg {
                label: "COUNT(*)".into(),
                kind: AggKind::CountStar,
            },
            CompiledAgg {
                label: "COUNT(A)".into(),
                kind: AggKind::Count(t),
            },
            CompiledAgg {
                label: "MIN".into(),
                kind: AggKind::Min(t, at),
            },
            CompiledAgg {
                label: "MAX".into(),
                kind: AggKind::Max(t, at),
            },
            CompiledAgg {
                label: "SUM".into(),
                kind: AggKind::Sum(t, at),
            },
            CompiledAgg {
                label: "AVG".into(),
                kind: AggKind::Avg(t, at),
            },
        ];
        let layout = AggLayout::new(&aggs);
        let mut s = AggState::<u64>::zero(&layout);
        // Two "trends" of a single event with attr 4 and 6.
        for v in [4.0, 6.0] {
            let e = Event::new_unchecked(t, Time(1), vec![Value::Float(v)]);
            let mut x = AggState::<u64>::zero(&layout);
            x.apply_own(&e, true, &layout);
            s.merge(&x);
        }
        let vals = render_aggregates(&s, &aggs, &layout);
        assert_eq!(vals[0].to_f64(), 2.0); // COUNT(*)
        assert_eq!(vals[1].to_f64(), 2.0); // COUNT(A)
        assert_eq!(vals[2].to_f64(), 4.0); // MIN
        assert_eq!(vals[3].to_f64(), 6.0); // MAX
        assert_eq!(vals[4].to_f64(), 10.0); // SUM
        assert_eq!(vals[5].to_f64(), 5.0); // AVG
    }

    #[test]
    fn avg_of_empty_group_is_nan() {
        let t = TypeId(0);
        let at = AttrId(0);
        let aggs = vec![CompiledAgg {
            label: "AVG".into(),
            kind: AggKind::Avg(t, at),
        }];
        let layout = AggLayout::new(&aggs);
        let s = AggState::<u64>::zero(&layout);
        let vals = render_aggregates(&s, &aggs, &layout);
        assert!(vals[0].to_f64().is_nan());
    }

    #[test]
    fn display_of_values() {
        assert_eq!(OutValue::<u64>::Count(42).to_string(), "42");
        assert_eq!(OutValue::<u64>::Float(2.5).to_string(), "2.5");
    }
}
