//! Push-based, sharded stream execution (paper §7 / §10.4 turned into a
//! long-lived serving layer).
//!
//! [`StreamExecutor`] unifies what used to be three disconnected entry
//! points — batch [`GretaEngine::run`], fire-and-collect
//! [`run_parallel`](crate::parallel::run_parallel), and the unwired
//! [`ReorderBuffer`] — into one pipeline:
//!
//! ```text
//!                 ┌────────────┐    hash(group key)   ┌─────────────┐
//!  push(event) ─▶ │ ReorderBuf │ ──▶ shard router ──▶ │ shard 0..N  │──┐
//!       │         │ (slack,    │     (Vec<EventRef>   │ GretaEngine │  │ bounded
//!       ▼         │  late      │      frames;         └─────────────┘  │ results
//!  WAL append     │  policy)   │      broadcast for   ┌─────────────┐  │ channel
//!  (optional)     └────────────┘      negative types) │ shard N-1   │──┤
//!                       └────────── watermarks ─────▶ └─────────────┘  ▼
//!                                                 poll_results() / finish()
//! ```
//!
//! * **Ingestion**: events may arrive out of order up to a configurable
//!   `slack`; later than that, the [`LatePolicy`] decides — drop (count),
//!   divert (keep for the caller), or error.
//! * **Sharding** (§7): each `GROUP-BY` group is owned by exactly one shard
//!   worker, so per-shard results are disjoint and concatenate without
//!   merging. Events of broadcast types (negative-pattern / sub-key types)
//!   are delivered to every shard. Routing is deterministic: results are
//!   independent of the shard count.
//! * **Batching**: events are accumulated into per-shard `Vec<EventRef>`
//!   frames ([`ExecutorConfig::batch_size`]) so channel synchronization is
//!   paid per frame, not per event. Frames are flushed whenever full and at
//!   every window-close boundary, so results still stream incrementally.
//! * **Zero-copy event plane**: an event is allocated once, when it enters
//!   [`push`](StreamExecutor::push) (or arrives pre-shared via
//!   [`push_ref`](StreamExecutor::push_ref)); everything downstream — the
//!   reorder buffer, shard frames, the broadcast fan-out, graph vertices,
//!   the divert buffer — holds `Arc` clones of that one allocation. A
//!   broadcast to N shards costs N pointer bumps, not N deep copies.
//! * **Watermarks**: whenever the released watermark crosses a window-close
//!   boundary, buffered frames are flushed and the watermark is broadcast
//!   so shards that received no recent events still close their windows.
//! * **Durability** (off by default): with
//!   [`ExecutorConfig::durability`] set, every pushed event is appended to
//!   a write-ahead log *before* routing, and every
//!   `snapshot_every_windows` closed windows the executor checkpoints —
//!   each shard serializes its engine ([`GretaEngine::export_state`]), the
//!   ingest side serializes the reorder buffer and counters, the blob goes
//!   to the snapshot store, the manifest advances, and obsolete WAL
//!   segments are deleted. [`StreamExecutor::recover`] restores the latest
//!   checkpoint and replays the WAL tail: the recovered executor emits
//!   exactly the rows an uninterrupted run would have emitted after that
//!   checkpoint (rows already emitted for earlier windows are not
//!   repeated; rows emitted between the checkpoint and the crash are
//!   re-emitted — results are deterministic, so an idempotent sink keyed
//!   on `(window, group)` yields exactly-once output).
//! * **Emission**: closed-window results flow through a bounded channel;
//!   [`StreamExecutor::poll_results`] drains it without blocking,
//!   [`StreamExecutor::finish`] flushes the pipeline and joins the workers.
//!   With [`ExecutorConfig::emission`] set to
//!   [`EmissionMode::WindowOrdered`], a cross-shard min-watermark merge
//!   ([`ResultMerge`]) in front of the caller makes the polled stream
//!   window-monotone in canonical `(window, group)` order — byte-identical
//!   to the sorted unordered output, buffering bounded by open windows, no
//!   sort at finish.

use crate::agg::TrendNum;
use crate::engine::{EngineConfig, EngineStats, GretaEngine};
use crate::grouping::{group_key_hash, shard_of_hash, PartitionKey, RoutingTable, StreamRouting};
use crate::reorder::{ReorderBuffer, ResultMerge};
use crate::results::{sort_canonical, WindowResult};
use crate::sketch::GroupSketch;
use crate::window::WindowId;
use crate::EngineError;
use crate::MemoryFootprint;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError, TrySendError};
use greta_durability::{DurabilityConfig, Manifest, SnapshotStore, TailPolicy, Wal};
use greta_query::CompiledQuery;
use greta_types::codec::{put_u32, put_u64, Reader};
use greta_types::{CodecError, Event, EventRef, GroupStats, SchemaRegistry, Time};
use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;

/// What to do with an event that arrives later than the reorder slack
/// allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Silently drop the event (counted in [`ExecutorStats::late_dropped`]).
    #[default]
    Drop,
    /// Keep the event for the caller ([`StreamExecutor::take_diverted`]) —
    /// e.g. to route into a correction stream.
    Divert,
    /// Fail the `push` with [`EngineError::Late`].
    Error,
}

/// Ordering guarantee of the executor's result stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmissionMode {
    /// Rows stream out as shards close windows: per-shard order, arbitrary
    /// interleaving across shards. Lowest latency; sort the concatenation
    /// of all drains (or rely on [`finish`](StreamExecutor::finish), which
    /// sorts its remainder) for the canonical order.
    #[default]
    Unordered,
    /// Rows stream out **window-monotone** in canonical `(window, group)`
    /// order: a cross-shard min-watermark merge
    /// ([`ResultMerge`](crate::reorder::ResultMerge)) holds each window's
    /// rows until every shard's emission frontier has passed it. Buffering
    /// is bounded by the number of open windows; the concatenation of all
    /// [`poll_results`](StreamExecutor::poll_results) drains plus the
    /// [`finish`](StreamExecutor::finish) remainder is byte-identical to
    /// the sorted `Unordered` output, with no sort-at-finish. Latency cost:
    /// a window's rows wait for the slowest shard to pass it (at most one
    /// window-close boundary behind `Unordered`).
    WindowOrdered,
}

/// Knobs of the executor's skew detector (dynamic shard rebalancing).
///
/// Real trend workloads are hot-key skewed: one hot sector/segment can pin
/// a single shard while the rest idle, capping throughput no matter how
/// many shards exist (the paper's §10.4 scaling model assumes uniform
/// groups). With rebalancing on, the executor counts routed events per
/// `GROUP-BY` group and, every `check_every_windows` closed windows,
/// compares the most-loaded shard against the mean. On imbalance it plans
/// a greedy longest-processing-time reassignment of the observed groups
/// and migrates state at a window-close barrier — results stay
/// byte-identical to any static assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Run the skew check every this many closed windows.
    pub check_every_windows: u64,
    /// Trigger when `max shard load ≥ imbalance_ratio × mean shard load`
    /// (values ≤ 1.0 behave like 1.0; 2.0 means "one shard does double its
    /// fair share").
    pub imbalance_ratio: f64,
    /// Skip the migration when fewer than this many groups would move
    /// (suppresses churn from marginal plans).
    pub min_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            check_every_windows: 4,
            imbalance_ratio: 2.0,
            min_moves: 1,
        }
    }
}

/// Tuning knobs for [`StreamExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Shard workers. Clamped to 1 for queries without `GROUP-BY` (nothing
    /// to partition by — the paper's scaling model). Must be ≥ 1.
    pub shards: usize,
    /// Reorder slack in ticks: events may arrive up to this much behind the
    /// maximum time stamp seen and still be processed in order.
    pub slack: u64,
    /// Policy for events later than `slack`.
    pub late_policy: LatePolicy,
    /// Per-shard input queue capacity (frames; backpressure beyond it).
    pub channel_capacity: usize,
    /// Result channel capacity (rows; callers that never poll get
    /// backpressure once this many rows are waiting).
    pub result_capacity: usize,
    /// Events accumulated per shard before a frame is sent (1 = a frame
    /// per event, the pre-batching behaviour). Frames are also flushed at
    /// every window-close boundary, so results never wait on a lazy batch.
    pub batch_size: usize,
    /// Configuration for the per-shard engines.
    pub engine: EngineConfig,
    /// Write-ahead log + snapshot configuration; `None` (the default) runs
    /// without any persistence.
    pub durability: Option<DurabilityConfig>,
    /// Dynamic shard rebalancing for skewed groups; `None` (the default)
    /// keeps the static hash assignment.
    pub rebalance: Option<RebalanceConfig>,
    /// Result-stream ordering guarantee (default:
    /// [`EmissionMode::Unordered`]).
    pub emission: EmissionMode,
    /// Maximum groups tracked in [`ExecutorStats::group_stats`] (top-K +
    /// decayed-counter sketch; `0` = unbounded exact counting). Bounds the
    /// skew detector's memory on high-cardinality `GROUP-BY` streams.
    pub group_stats_capacity: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slack: 0,
            late_policy: LatePolicy::Drop,
            channel_capacity: 4096,
            result_capacity: 1 << 16,
            batch_size: 64,
            engine: EngineConfig::default(),
            durability: None,
            rebalance: None,
            emission: EmissionMode::default(),
            group_stats_capacity: 1024,
        }
    }
}

/// Late-event counters of one window (backpressure / data-quality metric:
/// which windows lost input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowLateCounts {
    /// The latest window that would have contained the late event
    /// (`⌊t / slide⌋`).
    pub window: WindowId,
    /// Events dropped under [`LatePolicy::Drop`].
    pub dropped: u64,
    /// Events kept under [`LatePolicy::Divert`].
    pub diverted: u64,
}

/// Executor counters.
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Events offered to [`StreamExecutor::push`].
    pub pushed: u64,
    /// Events released (in order) to the shards.
    pub released: u64,
    /// Late events dropped under [`LatePolicy::Drop`].
    pub late_dropped: u64,
    /// Late events kept under [`LatePolicy::Divert`].
    pub late_diverted: u64,
    /// Events delivered to every shard (broadcast types).
    pub broadcasts: u64,
    /// Watermark messages broadcast to the shards.
    pub watermarks: u64,
    /// `Vec<EventRef>` frames sent to shard queues.
    pub frames: u64,
    /// Durability checkpoints completed.
    pub checkpoints: u64,
    /// Barrier snapshots taken across the shard workers (checkpoint cuts
    /// and migration cuts; a fused rebalance + checkpoint barrier counts
    /// once).
    pub barrier_snapshots: u64,
    /// Coinciding rebalance + checkpoint barriers served by one fused
    /// snapshot (each saved a full extra barrier drain).
    pub fused_barriers: u64,
    /// Barrier migrations performed by the skew detector.
    pub rebalances: u64,
    /// Groups whose shard assignment changed across all rebalances.
    pub groups_moved: u64,
    /// Version of the group → shard routing table (0 = the static hash
    /// assignment, bumped by every rebalance / resharded recovery).
    pub routing_epoch: u64,
    /// Per-group load counters, sorted by group key: events are counted at
    /// routing time (only when [`ExecutorConfig::rebalance`] is set — this
    /// is the skew detector's signal), live graph vertices are filled in by
    /// [`finish`](StreamExecutor::finish) from the shard engines. Bounded
    /// to the [`ExecutorConfig::group_stats_capacity`] heaviest groups
    /// (space-saving sketch: counts of tracked groups never under-estimate,
    /// light groups may be evicted on high-cardinality streams).
    pub group_stats: Vec<(PartitionKey, GroupStats)>,
    /// Events delivered per shard (broadcasts count once per shard): the
    /// load-balance picture. On a skewed stream the pre-rebalance max of
    /// this vector is the parallel-throughput bottleneck; a successful
    /// migration flattens it.
    pub events_per_shard: Vec<u64>,
    /// Late drops/diverts per window, ascending by window id.
    pub late_by_window: Vec<WindowLateCounts>,
    /// Frames queued per shard input channel when
    /// [`stats`](StreamExecutor::stats) was called (empty after `finish`).
    pub channel_occupancy: Vec<usize>,
    /// Highest shard-queue occupancy (frames) observed at any flush.
    pub max_channel_occupancy: usize,
    /// Rows waiting in the result channel when
    /// [`stats`](StreamExecutor::stats) was called.
    pub result_occupancy: usize,
    /// Ordered-merge released watermark: windows strictly below this id
    /// have been fully released to the caller in canonical order. Only
    /// advances under [`EmissionMode::WindowOrdered`] (0 otherwise). This
    /// is the progress signal a downstream consumer — a cascaded executor
    /// DAG, a network subscription — can rely on: everything below it is
    /// final.
    pub merge_released_to: WindowId,
    /// Per-shard ordered-merge frontier lag: how many windows each shard's
    /// emission frontier trails the *most advanced* shard's. A persistently
    /// laggy entry is the shard holding the ordered stream back (rows of
    /// windows between the frontiers are parked in the merge). Empty under
    /// [`EmissionMode::Unordered`].
    pub merge_frontier_lag: Vec<u64>,
    /// Rows parked in the ordered merge waiting for slow shards (bounded
    /// by open windows × groups). 0 under [`EmissionMode::Unordered`].
    pub merge_buffered_rows: usize,
    /// Aggregated per-shard engine counters (populated by `finish`).
    pub engine: EngineStats,
    /// Summed per-shard peak memory in bytes (populated by `finish`).
    pub peak_memory_bytes: usize,
}

enum Msg<N: TrendNum> {
    /// A batch of in-order shared events for one shard (broadcast frames
    /// carry `Arc` clones of the same allocations).
    Events(Vec<EventRef>),
    /// Close every window ending at or before this time.
    Watermark(Time),
    /// Serialize engine state and reply with `(shard, blob)`. Acts as a
    /// barrier: the state covers exactly the messages queued before it.
    Snapshot(Sender<(usize, Vec<u8>)>),
    /// Replace the shard's engine with a repartitioned one (the commit step
    /// of a barrier migration). Channels are FIFO, so every frame routed
    /// under the new table is processed by the new engine.
    Install(Box<GretaEngine<N>>),
}

/// What shard workers put on the result channel.
enum OutMsg<N: TrendNum> {
    /// One result row, stamped with the emitting shard and its per-shard
    /// emission sequence number (strictly increasing; the ordered merge's
    /// sanity check).
    Row {
        shard: u32,
        seq: u64,
        row: WindowResult<N>,
    },
    /// The shard's emission frontier advanced: it will never emit a row
    /// for a window below `next_window`. Sent after the rows it covers
    /// (per-sender FIFO), so the merge never releases a window ahead of
    /// its rows.
    Frontier { shard: u32, next_window: WindowId },
}

struct WorkerReport {
    stats: EngineStats,
    peak_bytes: usize,
    /// Live graph vertices per group (skew reporting).
    group_vertices: Vec<(PartitionKey, u64)>,
    /// Post-`finish` engine state, exported when durability is on so the
    /// terminal checkpoint reflects a fully-closed stream.
    final_state: Option<Vec<u8>>,
}

/// Durability runtime: open WAL + snapshot store + checkpoint bookkeeping.
struct DurabilityState {
    config: DurabilityConfig,
    wal: Wal,
    snapshots: SnapshotStore,
    /// Epoch of the last written snapshot (0 = none yet).
    epoch: u64,
    /// Reused WAL-record encode buffer.
    record_buf: Vec<u8>,
}

/// Everything [`StreamExecutor::recover`] restores from a snapshot blob
/// besides the per-shard engine states.
struct SnapshotParts<N: TrendNum> {
    stats: ExecutorStats,
    max_occupancy: usize,
    last_close_idx: Option<u64>,
    late_windows: BTreeMap<WindowId, (u64, u64)>,
    table: RoutingTable,
    group_stats: GroupSketch,
    recent_events: GroupSketch,
    windows_since_rebalance: u64,
    reorder: ReorderBuffer,
    diverted: Vec<EventRef>,
    pending: Vec<WindowResult<N>>,
    merge: Option<ResultMerge<N>>,
    shard_states: Vec<Vec<u8>>,
}

/// Bumped to 4 with ordered emission: snapshots now record the emission
/// mode, the ordered-merge frontier state (so a recovered run resumes the
/// same window-monotone stream), the sketch floors of the bounded
/// per-group counters, and the barrier counters. Snapshots taken by older
/// revisions are rejected instead of being silently misread.
const SNAPSHOT_VERSION: u8 = 4;

/// The push-based, sharded GRETA runtime. See the [module docs](self).
///
/// Results are emitted as windows close. Rows drained by one
/// [`poll_results`](Self::poll_results) call arrive in per-shard order but
/// may interleave across shards; [`finish`](Self::finish) returns its
/// remainder sorted by `(window, group)`. Sorting the concatenation of all
/// drains yields byte-identical output for any shard count.
pub struct StreamExecutor<N: TrendNum = f64> {
    shards: usize,
    /// Plan + schemas, kept to rebuild shard engines during barrier
    /// migrations and resharded recovery.
    query: CompiledQuery,
    registry: SchemaRegistry,
    engine_config: EngineConfig,
    routing: StreamRouting,
    /// Versioned group → shard overrides; empty = pure hash routing.
    table: RoutingTable,
    rebalance: Option<RebalanceConfig>,
    /// Per-group counters: events bumped at routing time when rebalancing
    /// is on, vertices filled from worker reports at `finish`. Bounded to
    /// the `group_stats_capacity` heaviest groups.
    group_stats: GroupSketch,
    /// Per-group events since the last skew check (taken and cleared by
    /// every check). The detector works on these interval counts, not the
    /// lifetime totals, so skew that emerges late in a long stream is
    /// seen immediately instead of being averaged away by history.
    recent_events: GroupSketch,
    /// Windows closed since the last skew check (cadence counter).
    windows_since_rebalance: u64,
    /// A skew check is owed; run after the current routing pass so a
    /// migration barrier never splits a reorder release batch.
    rebalance_due: bool,
    reorder: ReorderBuffer,
    late_policy: LatePolicy,
    senders: Vec<Sender<Msg<N>>>,
    results_rx: Receiver<OutMsg<N>>,
    workers: Vec<JoinHandle<Result<WorkerReport, EngineError>>>,
    diverted: Vec<EventRef>,
    /// Rows ready for the caller: under unordered emission, whatever was
    /// drained off the result channel (e.g. while a shard queue was full);
    /// under [`EmissionMode::WindowOrdered`], rows the merge released — in
    /// canonical order. Returned by the next `poll_results`/`finish`.
    pending: Vec<WindowResult<N>>,
    /// Cross-shard min-watermark merge; `Some` iff the emission mode is
    /// [`EmissionMode::WindowOrdered`].
    merge: Option<ResultMerge<N>>,
    stats: ExecutorStats,
    /// Per-shard event frames not yet sent.
    batch_bufs: Vec<Vec<EventRef>>,
    /// Reused scratch for reorder-buffer releases (no per-event alloc).
    release_scratch: Vec<EventRef>,
    batch_size: usize,
    /// Late drop/divert counts keyed by the event's latest window.
    late_windows: BTreeMap<WindowId, (u64, u64)>,
    max_occupancy: usize,
    /// Window-close boundary index already broadcast (⌊(wm−within)/slide⌋).
    last_close_idx: Option<u64>,
    window_within: u64,
    window_slide: u64,
    durability: Option<DurabilityState>,
    /// Windows closed since the last checkpoint (cadence counter).
    windows_since_checkpoint: u64,
    /// A cadence checkpoint is owed; taken after the current routing pass
    /// so the snapshot cut never splits a reorder release batch.
    checkpoint_due: bool,
    finished: bool,
}

impl<N: TrendNum> StreamExecutor<N> {
    /// Spawn the shard workers for `query` under `config`.
    ///
    /// With [`ExecutorConfig::durability`] set, the directory must be
    /// fresh: reusing a directory that already holds a manifest or WAL
    /// records is refused so that state from a previous run is never
    /// silently overwritten — use [`recover`](Self::recover) (or point at
    /// a new directory) instead.
    pub fn new(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: ExecutorConfig,
    ) -> Result<Self, EngineError> {
        let (routing, shards) = Self::validated_routing(&query, &registry, &config)?;
        let durability = match &config.durability {
            None => None,
            Some(dcfg) => {
                if Manifest::load(&dcfg.dir)?.is_some() {
                    return Err(EngineError::Config(format!(
                        "durability dir {} already contains a manifest; \
                         use StreamExecutor::recover or a fresh directory",
                        dcfg.dir.display()
                    )));
                }
                let wal = Wal::open(&dcfg.dir, dcfg.segment_bytes, dcfg.fsync)?;
                if wal.next_index() > 0 {
                    return Err(EngineError::Config(format!(
                        "durability dir {} already contains WAL records; \
                         use StreamExecutor::recover or a fresh directory",
                        dcfg.dir.display()
                    )));
                }
                let snapshots = SnapshotStore::open(&dcfg.dir)?;
                Some(DurabilityState {
                    config: dcfg.clone(),
                    wal,
                    snapshots,
                    epoch: 0,
                    record_buf: Vec::new(),
                })
            }
        };
        let engines = (0..shards)
            .map(|_| GretaEngine::with_config(query.clone(), registry.clone(), config.engine))
            .collect::<Result<Vec<_>, _>>()?;
        Self::assemble(query, registry, &config, routing, engines, durability)
    }

    /// Restore an executor from the durability directory in
    /// `config.durability` and replay the WAL tail.
    ///
    /// `query` and `registry` must match the original run's, but
    /// `config.shards` may differ from the checkpoint's: the snapshot's
    /// per-group engine state is then repartitioned onto the new shard
    /// count under a fresh routing epoch, so a stream can be recovered
    /// into a wider (or narrower) executor with byte-identical results.
    /// The recovered executor continues the stream exactly where the WAL
    /// ends: rows for windows that closed after the last checkpoint are
    /// (re-)emitted through
    /// [`poll_results`](Self::poll_results)/[`finish`](Self::finish), rows
    /// for earlier windows are not repeated. If the process crashed before
    /// the first checkpoint, the whole WAL is replayed into fresh state. A
    /// torn final WAL frame (crash mid-append) is repaired; checksum
    /// corruption anywhere is a clean [`EngineError::Durability`].
    pub fn recover(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: ExecutorConfig,
    ) -> Result<Self, EngineError> {
        let dcfg = config.durability.clone().ok_or_else(|| {
            EngineError::Config("recover requires ExecutorConfig::durability".into())
        })?;
        // Opening the WAL first repairs a torn tail before replay.
        let wal = Wal::open(&dcfg.dir, dcfg.segment_bytes, dcfg.fsync)?;
        let snapshots = SnapshotStore::open(&dcfg.dir)?;
        let manifest = Manifest::load(&dcfg.dir)?;

        let (mut exec, replay_from) = match manifest {
            None => {
                // Crash before the first checkpoint: fresh state, full replay.
                let (routing, shards) = Self::validated_routing(&query, &registry, &config)?;
                let engines = (0..shards)
                    .map(|_| {
                        GretaEngine::with_config(query.clone(), registry.clone(), config.engine)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let durability = Some(DurabilityState {
                    config: dcfg.clone(),
                    wal,
                    snapshots,
                    epoch: 0,
                    record_buf: Vec::new(),
                });
                (
                    Self::assemble(query, registry, &config, routing, engines, durability)?,
                    0,
                )
            }
            Some(m) => {
                let (routing, expected) = Self::validated_routing(&query, &registry, &config)?;
                let old_shards = m.shards as usize;
                let blob = snapshots.read(m.epoch)?;
                let mut parts: SnapshotParts<N> =
                    Self::decode_snapshot(&blob, old_shards, &config)?;
                let engines = if expected == old_shards {
                    parts
                        .shard_states
                        .iter()
                        .map(|bytes| {
                            GretaEngine::import_state(
                                query.clone(),
                                registry.clone(),
                                config.engine,
                                bytes,
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?
                } else {
                    // Resharded recovery: redistribute the per-group
                    // engine state onto the new shard count. The old
                    // epoch's pinned assignment is meaningless for a
                    // different count, so routing restarts from the pure
                    // hash under a fresh epoch.
                    parts.table.reset_for_shards();
                    GretaEngine::<N>::repartition_states(
                        &query,
                        &registry,
                        config.engine,
                        &parts.shard_states,
                        expected,
                        |g| routing.shard_of_group_key(g, expected),
                    )?
                };
                let durability = Some(DurabilityState {
                    config: dcfg.clone(),
                    wal,
                    snapshots,
                    epoch: m.epoch,
                    record_buf: Vec::new(),
                });
                let mut exec =
                    Self::assemble(query, registry, &config, routing, engines, durability)?;
                exec.stats = parts.stats;
                if expected != old_shards {
                    // The old per-shard attribution is meaningless for the
                    // new count; restart the load picture.
                    exec.stats.events_per_shard = vec![0; expected];
                }
                exec.max_occupancy = parts.max_occupancy;
                exec.last_close_idx = parts.last_close_idx;
                exec.late_windows = parts.late_windows;
                exec.table = parts.table;
                exec.group_stats = parts.group_stats;
                exec.recent_events = parts.recent_events;
                exec.windows_since_rebalance = parts.windows_since_rebalance;
                exec.reorder = parts.reorder;
                exec.diverted = parts.diverted;
                exec.pending = parts.pending;
                if let Some(mut merge) = parts.merge {
                    if expected != old_shards {
                        // Fresh workers report their own frontiers; the
                        // released watermark (and buffered rows) carry over
                        // so the ordered stream resumes without repeats.
                        merge.reset_for_shards(expected);
                    }
                    exec.merge = Some(merge);
                }
                (exec, m.wal_index)
            }
        };

        // Replay the WAL tail through the normal ingest path (without
        // re-appending). A torn final frame was already repaired by open.
        let mut tail: Vec<EventRef> = Vec::new();
        let mut decode_err: Option<CodecError> = None;
        Wal::replay(
            &dcfg.dir,
            replay_from,
            TailPolicy::Tolerate,
            |_, payload| {
                if decode_err.is_some() {
                    return;
                }
                match Event::decode(&mut Reader::new(payload)) {
                    Ok(e) => tail.push(e.into_ref()),
                    Err(e) => decode_err = Some(e),
                }
            },
        )
        .map_err(EngineError::from)?;
        if let Some(e) = decode_err {
            return Err(e.into());
        }
        for e in tail {
            exec.stats.pushed += 1;
            match exec.ingest(e) {
                // Under LatePolicy::Error the original push() surfaced the
                // Late error to the caller *after* logging the event, and
                // the pipeline stayed usable — mirror that here so one
                // logged-then-rejected record cannot poison recovery.
                Err(EngineError::Late { .. }) => {}
                other => other?,
            }
            if exec.rebalance_due {
                exec.run_rebalance_check()?;
            }
            if exec.checkpoint_due {
                exec.checkpoint()?;
            }
        }
        Ok(exec)
    }

    /// Routing construction + shard-count validation shared by `new` and
    /// `recover` (the returned routing is handed on to [`assemble`]).
    fn validated_routing(
        query: &CompiledQuery,
        registry: &SchemaRegistry,
        config: &ExecutorConfig,
    ) -> Result<(StreamRouting, usize), EngineError> {
        if config.shards == 0 {
            return Err(EngineError::Config("shards must be ≥ 1".into()));
        }
        let routing = StreamRouting::new(query, registry);
        routing.validate(query, registry)?;
        let shards = if query.group_by.is_empty() {
            1
        } else {
            config.shards
        };
        Ok((routing, shards))
    }

    /// Wire channels and spawn one worker per pre-built engine.
    fn assemble(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: &ExecutorConfig,
        routing: StreamRouting,
        engines: Vec<GretaEngine<N>>,
        durability: Option<DurabilityState>,
    ) -> Result<Self, EngineError> {
        let shards = engines.len();
        let (results_tx, results_rx) = channel::bounded(config.result_capacity.max(1));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let export_final = durability.is_some();
        let ordered = config.emission == EmissionMode::WindowOrdered;
        for (shard, engine) in engines.into_iter().enumerate() {
            let (tx, rx) = channel::bounded::<Msg<N>>(config.channel_capacity.max(1));
            senders.push(tx);
            let results_tx = results_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("greta-shard-{shard}"))
                    .spawn(move || {
                        worker_loop::<N>(engine, shard, rx, results_tx, export_final, ordered)
                    })
                    .map_err(|e| EngineError::Worker(e.to_string()))?,
            );
        }
        drop(results_tx); // workers hold the only senders now
        Ok(StreamExecutor {
            shards,
            engine_config: config.engine,
            registry,
            routing,
            table: RoutingTable::default(),
            rebalance: config.rebalance,
            group_stats: GroupSketch::new(config.group_stats_capacity),
            recent_events: GroupSketch::new(config.group_stats_capacity),
            windows_since_rebalance: 0,
            rebalance_due: false,
            reorder: ReorderBuffer::new(config.slack),
            late_policy: config.late_policy,
            senders,
            results_rx,
            workers,
            diverted: Vec::new(),
            pending: Vec::new(),
            merge: (config.emission == EmissionMode::WindowOrdered)
                .then(|| ResultMerge::new(shards)),
            stats: ExecutorStats {
                events_per_shard: vec![0; shards],
                ..Default::default()
            },
            batch_bufs: (0..shards).map(|_| Vec::new()).collect(),
            release_scratch: Vec::new(),
            batch_size: config.batch_size.max(1),
            late_windows: BTreeMap::new(),
            max_occupancy: 0,
            last_close_idx: None,
            window_within: query.window.within,
            window_slide: query.window.slide,
            query,
            durability,
            windows_since_checkpoint: 0,
            checkpoint_due: false,
            finished: false,
        })
    }

    /// Number of shard workers actually running.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Version of the group → shard routing table: 0 while the static hash
    /// assignment is in effect, bumped by every barrier migration (and by a
    /// resharded recovery).
    pub fn routing_epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// Offer one event. Events may arrive out of order within the
    /// configured slack; beyond it the [`LatePolicy`] applies. With
    /// durability on, the event is WAL-logged before anything else. When a
    /// shard's input queue is full, the call drains ready results into an
    /// internal buffer while it waits (so a caller that never polls cannot
    /// deadlock the pipeline) and returns once the event is queued.
    pub fn push(&mut self, e: Event) -> Result<(), EngineError> {
        self.push_ref(e.into_ref())
    }

    /// [`push`](Self::push) without the allocation: the caller hands over a
    /// shared event, and the executor never copies the payload again — the
    /// reorder buffer, shard frames, broadcast fan-out, and graph vertices
    /// all hold clones of this `Arc`.
    pub fn push_ref(&mut self, e: EventRef) -> Result<(), EngineError> {
        if self.finished {
            return Err(EngineError::Config(
                "push after finish() on StreamExecutor".into(),
            ));
        }
        if let Some(d) = &mut self.durability {
            d.record_buf.clear();
            e.encode(&mut d.record_buf);
            d.wal.append(&d.record_buf).map_err(EngineError::from)?;
        }
        self.stats.pushed += 1;
        self.ingest(e)?;
        if self.rebalance_due {
            // Before a due checkpoint, so the checkpoint records the
            // post-migration table and state.
            self.run_rebalance_check()?;
        }
        if self.checkpoint_due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Reorder + route one event (shared by `push` and WAL replay).
    fn ingest(&mut self, e: EventRef) -> Result<(), EngineError> {
        let mut released = std::mem::take(&mut self.release_scratch);
        match self.reorder.push_into(e, &mut released) {
            Ok(()) => {
                let r = self.route_all(&mut released);
                released.clear();
                self.release_scratch = released;
                r
            }
            Err(late) => {
                self.release_scratch = released;
                let wid = late.time.ticks() / self.window_slide.max(1);
                let slot = self.late_windows.entry(wid).or_default();
                match self.late_policy {
                    LatePolicy::Drop => {
                        self.stats.late_dropped += 1;
                        slot.0 += 1;
                    }
                    LatePolicy::Divert => {
                        self.stats.late_diverted += 1;
                        slot.1 += 1;
                        self.diverted.push(late);
                    }
                    LatePolicy::Error => {
                        return Err(EngineError::Late {
                            slack: self.reorder.slack(),
                            watermark: self.reorder.watermark().map(Time::ticks).unwrap_or(0),
                            got: late.time.ticks(),
                        })
                    }
                }
                Ok(())
            }
        }
    }

    /// Absorb one worker message: under unordered emission rows go
    /// straight to the ready buffer (frontier stamps are dropped); under
    /// [`EmissionMode::WindowOrdered`] rows park in the merge and frontier
    /// advances release complete windows into the ready buffer in
    /// canonical order.
    fn absorb(&mut self, msg: OutMsg<N>) {
        match (&mut self.merge, msg) {
            (None, OutMsg::Row { row, .. }) => self.pending.push(row),
            (None, OutMsg::Frontier { .. }) => {}
            (Some(m), OutMsg::Row { shard, seq, row }) => m.offer(shard as usize, seq, row),
            (Some(m), OutMsg::Frontier { shard, next_window }) => {
                m.advance(shard as usize, next_window, &mut self.pending)
            }
        }
    }

    /// Drain the result channel without blocking; true if anything came.
    fn drain_ready(&mut self) -> bool {
        let mut any = false;
        while let Ok(msg) = self.results_rx.try_recv() {
            self.absorb(msg);
            any = true;
        }
        any
    }

    /// Drain every result row emitted so far, without blocking. Windows are
    /// emitted as the watermark passes their end, so results stream while
    /// events are still being pushed. Under
    /// [`EmissionMode::WindowOrdered`] the drained rows are
    /// window-monotone in canonical `(window, group)` order, across calls:
    /// concatenating every drain with the [`finish`](Self::finish)
    /// remainder reproduces the sorted unordered output byte for byte.
    pub fn poll_results(&mut self) -> Vec<WindowResult<N>> {
        self.drain_ready();
        std::mem::take(&mut self.pending)
    }

    /// End of stream: flush the reorder buffer, close all remaining
    /// windows, take a final checkpoint (durability on), join the workers,
    /// and return the remaining rows in canonical `(window, group)` order.
    /// Also finalizes [`stats`](Self::stats). Idempotent. Equivalent to
    /// [`drain`](Self::drain) — this is the historical name.
    pub fn finish(&mut self) -> Result<Vec<WindowResult<N>>, EngineError> {
        self.drain()
    }

    /// Graceful stop, the serving-layer entry point: stop accepting input,
    /// flush the reorder buffer, close all remaining windows (flushing the
    /// ordered merge under [`EmissionMode::WindowOrdered`]), take a
    /// terminal checkpoint (durability on), join the workers, and return
    /// the remaining rows in canonical `(window, group)` order — without
    /// consuming `self`, so a server can still read
    /// [`stats`](Self::stats) and [`take_diverted`](Self::take_diverted)
    /// afterwards. Idempotent; byte-identical to
    /// [`finish`](Self::finish).
    ///
    /// With durability on, the terminal checkpoint is taken *after* every
    /// window closed: [`recover`](Self::recover) from the same directory
    /// resumes with the full history in its counters and nothing to
    /// re-emit (regression-tested).
    ///
    /// Under [`EmissionMode::WindowOrdered`] the remainder comes straight
    /// off the merge — already ordered, nothing to sort (the fast path);
    /// under [`EmissionMode::Unordered`] the remainder is sorted here.
    pub fn drain(&mut self) -> Result<Vec<WindowResult<N>>, EngineError> {
        if self.finished {
            return Ok(Vec::new());
        }
        let mut tail = self.reorder.flush();
        let route_result = self
            .route_all(&mut tail)
            .and_then(|()| self.flush_all_batches());
        self.finished = true;
        // Close the input channels regardless, so workers always terminate.
        self.senders.clear();
        self.batch_bufs.clear();
        // Drain concurrently with the workers' final flush: recv() ends
        // when every worker has dropped its result sender.
        while let Ok(msg) = self.results_rx.recv() {
            self.absorb(msg);
        }
        if let Some(m) = &mut self.merge {
            // Every worker terminated: no window can receive further rows.
            m.close(&mut self.pending);
        }
        let mut rows = std::mem::take(&mut self.pending);
        let mut first_err = route_result.err();
        let mut final_states: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.workers.len());
        for w in self.workers.drain(..) {
            match w.join() {
                Ok(Ok(report)) => {
                    let s = &mut self.stats.engine;
                    s.events += report.stats.events;
                    s.vertices += report.stats.vertices;
                    s.edges += report.stats.edges;
                    s.results += report.stats.results;
                    self.stats.peak_memory_bytes += report.peak_bytes;
                    for (group, vertices) in report.group_vertices {
                        self.group_stats.add_vertices(&group, vertices);
                    }
                    final_states.push(report.final_state);
                }
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or(Some(EngineError::Worker("shard worker panicked".into())))
                }
            }
        }
        if first_err.is_none() && self.durability.is_some() {
            // Terminal checkpoint *after* the workers closed every window:
            // a graceful shutdown leaves a truncated log and a snapshot
            // from which recovery resumes with nothing to re-emit.
            let shard_states: Vec<Vec<u8>> = final_states.into_iter().flatten().collect();
            if shard_states.len() == self.shards {
                first_err = self.persist_snapshot(&shard_states).err();
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if self.merge.is_none() {
            sort_canonical(&mut rows);
        } else {
            debug_assert!(
                rows.windows(2)
                    .all(|w| w[0].order_key() <= w[1].order_key()),
                "ordered emission produced an out-of-order finish remainder"
            );
        }
        Ok(rows)
    }

    /// Executor counters. Engine aggregates and peak memory are only
    /// populated once [`finish`](Self::finish) has run; channel occupancy
    /// is sampled at the moment of the call.
    pub fn stats(&self) -> ExecutorStats {
        let mut s = self.stats.clone();
        s.routing_epoch = self.table.epoch();
        s.group_stats = self.group_stats.top_sorted();
        s.late_by_window = self
            .late_windows
            .iter()
            .map(|(&window, &(dropped, diverted))| WindowLateCounts {
                window,
                dropped,
                diverted,
            })
            .collect();
        s.channel_occupancy = self.senders.iter().map(Sender::len).collect();
        s.max_channel_occupancy = self.max_occupancy;
        s.result_occupancy = self.results_rx.len();
        if let Some(m) = &self.merge {
            s.merge_released_to = m.released_to();
            let frontiers = m.frontiers();
            let max = frontiers.iter().copied().max().unwrap_or(0);
            s.merge_frontier_lag = frontiers.iter().map(|&f| max - f).collect();
            s.merge_buffered_rows = m.buffered_rows();
        }
        s
    }

    /// Highest time stamp released from the reorder buffer so far (the
    /// ingest watermark): any event pushed with a smaller stamp is late.
    /// `None` until the first release.
    pub fn watermark(&self) -> Option<Time> {
        self.reorder.watermark()
    }

    /// Whether this executor runs with a write-ahead log
    /// ([`ExecutorConfig::durability`]): when true, every event accepted
    /// by [`push`](Self::push) was appended to the WAL before routing.
    pub fn durability_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Number of records appended to the WAL so far. Appended is not
    /// yet durable under [`greta_durability::FsyncPolicy`]s that buffer
    /// between syncs — use [`sync_wal`](Self::sync_wal) for the
    /// watermark an ingest acknowledgement can carry. `None` without
    /// durability.
    pub fn durable_index(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.next_index())
    }

    /// Flush and fsync the WAL, then return the durable record index:
    /// every event whose `push` returned before the call is now
    /// recoverable by [`recover`](Self::recover) regardless of the
    /// configured [`greta_durability::FsyncPolicy`]. This is the
    /// group-commit point a
    /// server acknowledges a batch at. `Ok(None)` without durability.
    pub fn sync_wal(&mut self) -> Result<Option<u64>, EngineError> {
        match self.durability.as_mut() {
            None => Ok(None),
            Some(d) => {
                d.wal.sync().map_err(EngineError::from)?;
                Ok(Some(d.wal.next_index()))
            }
        }
    }

    /// Take the events diverted under [`LatePolicy::Divert`] so far.
    pub fn take_diverted(&mut self) -> Vec<EventRef> {
        std::mem::take(&mut self.diverted)
    }

    /// Shard owning the event's group under the current routing epoch
    /// (`None` = broadcast). With rebalancing on, also bumps the group's
    /// event counter — the skew detector's signal. Every path works off
    /// the event's routing hash: no group key is materialized per event
    /// (only once, when a group is first tracked by the sketch).
    fn dest_shard(&mut self, e: &EventRef) -> Option<usize> {
        if self.routing.is_broadcast(e.type_id) {
            return None;
        }
        if self.rebalance.is_none() && self.table.is_empty() {
            // Static-assignment fast path: hash straight off the event.
            return self.routing.shard_of(e, self.shards);
        }
        let h = self.routing.group_hash(e);
        let shard = self
            .table
            .shard_for_hash(h)
            .unwrap_or_else(|| shard_of_hash(h, self.shards));
        if self.rebalance.is_some() {
            let routing = &self.routing;
            self.recent_events.bump_events(h, || routing.group_key(e));
            self.group_stats.bump_events(h, || routing.group_key(e));
        }
        Some(shard)
    }

    fn route_all(&mut self, released: &mut Vec<EventRef>) -> Result<(), EngineError> {
        for e in released.drain(..) {
            self.stats.released += 1;
            let wm = e.time;
            match self.dest_shard(&e) {
                None => {
                    self.stats.broadcasts += 1;
                    for i in 0..self.shards {
                        self.stats.events_per_shard[i] += 1;
                        self.batch_bufs[i].push(e.clone());
                        if self.batch_bufs[i].len() >= self.batch_size {
                            self.flush_shard(i)?;
                        }
                    }
                }
                Some(shard) => {
                    self.stats.events_per_shard[shard] += 1;
                    self.batch_bufs[shard].push(e);
                    if self.batch_bufs[shard].len() >= self.batch_size {
                        self.flush_shard(shard)?;
                    }
                }
            }
            self.note_watermark(wm)?;
        }
        Ok(())
    }

    /// React to the released watermark reaching `wm`: if it crossed a
    /// window-close boundary since the last broadcast, flush every buffered
    /// frame (the watermark must not overtake its events) and broadcast the
    /// watermark — one message per shard per closed window. With durability
    /// on, closed windows also drive the checkpoint cadence.
    fn note_watermark(&mut self, wm: Time) -> Result<(), EngineError> {
        let t = wm.ticks();
        if t < self.window_within {
            return Ok(());
        }
        let close_idx = (t - self.window_within) / self.window_slide.max(1);
        if self.last_close_idx == Some(close_idx) {
            return Ok(());
        }
        let closed = match self.last_close_idx {
            Some(prev) => close_idx - prev,
            None => close_idx + 1,
        };
        self.last_close_idx = Some(close_idx);
        self.stats.watermarks += 1;
        self.flush_all_batches()?;
        for i in 0..self.senders.len() {
            self.send(i, Msg::Watermark(wm))?;
        }
        if let Some(d) = &self.durability {
            self.windows_since_checkpoint += closed;
            if self.windows_since_checkpoint >= d.config.snapshot_every_windows.max(1) {
                // Defer to the end of the current routing pass: a snapshot
                // cut mid-release would lose the not-yet-routed remainder.
                self.checkpoint_due = true;
            }
        }
        if let Some(r) = &self.rebalance {
            if self.shards > 1 {
                self.windows_since_rebalance += closed;
                if self.windows_since_rebalance >= r.check_every_windows.max(1) {
                    // Deferred like checkpoints: the migration barrier must
                    // not split a reorder release batch.
                    self.rebalance_due = true;
                }
            }
        }
        Ok(())
    }

    /// Send shard `i`'s buffered frame, if any.
    fn flush_shard(&mut self, i: usize) -> Result<(), EngineError> {
        if self.batch_bufs[i].is_empty() {
            return Ok(());
        }
        let frame = std::mem::replace(&mut self.batch_bufs[i], Vec::with_capacity(self.batch_size));
        self.max_occupancy = self.max_occupancy.max(self.senders[i].len() + 1);
        self.stats.frames += 1;
        self.send(i, Msg::Events(frame))
    }

    fn flush_all_batches(&mut self) -> Result<(), EngineError> {
        for i in 0..self.shards {
            self.flush_shard(i)?;
        }
        Ok(())
    }

    /// Force a checkpoint now (durability must be configured): flush all
    /// frames, barrier-snapshot every shard engine, persist the blob,
    /// advance the manifest, and drop WAL segments and snapshots it made
    /// obsolete.
    ///
    /// Output-commit contract: rows already polled before the checkpoint
    /// are *not* in the snapshot and will never be re-emitted; rows not
    /// yet polled are carried inside the snapshot and re-delivered by the
    /// recovered executor. Rows polled *after* the last checkpoint are
    /// re-emitted on recovery — results are deterministic, so a sink
    /// keyed on `(window, group)` deduplicates them into exactly-once.
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        if self.durability.is_none() {
            return Err(EngineError::Config(
                "checkpoint requires ExecutorConfig::durability".into(),
            ));
        }
        if self.finished {
            return Err(EngineError::Config(
                "checkpoint after finish() on StreamExecutor".into(),
            ));
        }
        self.checkpoint_due = false;
        self.windows_since_checkpoint = 0;
        self.flush_all_batches()?;
        let shard_states = self.collect_shard_states()?;
        self.persist_snapshot(&shard_states)
    }

    /// Barrier-snapshot every shard engine: every message queued before the
    /// Snapshot request is processed before the shard replies, so the
    /// combined state is the exact cut at `stats.pushed` pushed events
    /// (events still in the reorder buffer live on the ingest side). Rows
    /// emitted before the barrier are drained into `pending`. Callers must
    /// flush batched frames first.
    fn collect_shard_states(&mut self) -> Result<Vec<Vec<u8>>, EngineError> {
        self.stats.barrier_snapshots += 1;
        let (reply_tx, reply_rx) = channel::bounded::<(usize, Vec<u8>)>(self.shards);
        for i in 0..self.senders.len() {
            self.send(i, Msg::Snapshot(reply_tx.clone()))?;
        }
        drop(reply_tx);
        let mut shard_states: Vec<Vec<u8>> = (0..self.shards).map(|_| Vec::new()).collect();
        let mut got = 0usize;
        while got < self.shards {
            match reply_rx.try_recv() {
                Ok((shard, blob)) => {
                    shard_states[shard] = blob;
                    got += 1;
                }
                Err(TryRecvError::Empty) => {
                    // Workers may be blocked emitting rows; keep draining.
                    if !self.drain_ready() {
                        std::thread::yield_now();
                    }
                }
                Err(TryRecvError::Disconnected) => return Err(self.reap_after_failure()),
            }
        }
        // Rows (and frontier stamps) emitted before the barrier are all in
        // flight by now; pull them in so a snapshot carries the un-polled
        // rows and the merge's frontier reflects the cut.
        self.drain_ready();
        Ok(shard_states)
    }

    /// Run the skew detector and, on imbalance, migrate group state to a
    /// new assignment at the current window-close barrier.
    ///
    /// Detection: the per-group event counts *since the last check* are
    /// summed per shard under the current table; the check fires when the
    /// most-loaded shard carries at least
    /// [`RebalanceConfig::imbalance_ratio`] times the mean. Interval
    /// counts (not lifetime totals) mean skew that emerges late in a long
    /// stream is seen within one check period instead of being averaged
    /// away by balanced history. The plan is a greedy
    /// longest-processing-time pass over the interval's groups (hottest
    /// first onto the least-loaded shard) — deterministic, so a recovered
    /// executor replays identical migrations. Only groups whose planned
    /// shard differs from what the table-plus-hash already yields are
    /// pinned, so the override table stays proportional to actual moves.
    /// Plans moving fewer than [`RebalanceConfig::min_moves`] groups are
    /// discarded (the old pins are kept).
    fn run_rebalance_check(&mut self) -> Result<(), EngineError> {
        self.rebalance_due = false;
        self.windows_since_rebalance = 0;
        let Some(cfg) = self.rebalance else {
            return Ok(());
        };
        if self.shards <= 1 || self.recent_events.is_empty() {
            return Ok(());
        }
        // Hottest-first, key-tie-broken: deterministic across runs (the
        // sketch's evictions are deterministic too, so a recovered
        // executor replays identical plans).
        let groups: Vec<(PartitionKey, u64)> = self.recent_events.take_hottest_first();
        let total: u64 = groups.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return Ok(());
        }
        let table = &self.table;
        let shards = self.shards;
        let current = |k: &PartitionKey| {
            let h = group_key_hash(k);
            table
                .shard_for_hash(h)
                .unwrap_or_else(|| shard_of_hash(h, shards))
        };
        let mut loads = vec![0u64; shards];
        for (k, n) in &groups {
            loads[current(k)] += n;
        }
        let max_load = loads.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / shards as f64;
        if (max_load as f64) < cfg.imbalance_ratio.max(1.0) * mean {
            return Ok(());
        }
        let mut new_loads = vec![0u64; shards];
        let mut overrides = HashMap::new();
        let mut moves = 0usize;
        for (k, n) in &groups {
            let dest = new_loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i)
                .unwrap_or(0);
            new_loads[dest] += *n;
            if dest != current(k) {
                moves += 1;
            }
            // A pin that agrees with the hash fallback is a no-op: leave
            // it out so the table (and every snapshot carrying it) stays
            // proportional to the groups actually displaced.
            if dest != shard_of_hash(group_key_hash(k), shards) {
                overrides.insert(k.clone(), dest as u32);
            }
        }
        if moves < cfg.min_moves.max(1) {
            return Ok(());
        }
        self.migrate(overrides, moves)
    }

    /// Barrier migration to a new group → shard assignment:
    ///
    /// 1. flush buffered frames and barrier-snapshot every shard engine
    ///    (drains all in-flight work — the stream is cut at a point where
    ///    no event is between the router and an engine);
    /// 2. install the new table under a bumped routing epoch;
    /// 3. repartition the snapshots so each group's graphs, incremental
    ///    aggregates, and replay context follow it to its new owner;
    /// 4. send each shard its rebuilt engine. Channels are FIFO and
    ///    nothing is routed between the barrier and the install, so every
    ///    frame routed under epoch `e+1` is processed by an epoch-`e+1`
    ///    engine — results stay byte-identical to any static assignment.
    ///
    /// When a cadence checkpoint is owed at the same window close, the two
    /// barriers are **fused**: the repartitioned engine states *are* the
    /// post-migration cut, so they are serialized and persisted directly
    /// instead of running a second back-to-back barrier snapshot right
    /// after the install.
    fn migrate(
        &mut self,
        overrides: HashMap<PartitionKey, u32>,
        moves: usize,
    ) -> Result<(), EngineError> {
        self.flush_all_batches()?;
        let shard_states = self.collect_shard_states()?;
        self.table.install(overrides);
        let table = self.table.clone();
        let shards = self.shards;
        let engines = GretaEngine::<N>::repartition_states(
            &self.query,
            &self.registry,
            self.engine_config,
            &shard_states,
            shards,
            |g| {
                let h = group_key_hash(g);
                table
                    .shard_for_hash(h)
                    .unwrap_or_else(|| shard_of_hash(h, shards))
            },
        )?;
        self.stats.rebalances += 1;
        self.stats.groups_moved += moves as u64;
        // Fused rebalance + checkpoint barrier: the repartitioned engines
        // *are* the exact post-migration cut (the new table and counters
        // are already in `self`), so when a cadence checkpoint is owed
        // they are serialized directly — no second barrier drain.
        let fused_blobs: Option<Vec<Vec<u8>>> = (self.checkpoint_due && self.durability.is_some())
            .then(|| engines.iter().map(GretaEngine::export_state).collect());
        for (i, engine) in engines.into_iter().enumerate() {
            self.send(i, Msg::Install(Box::new(engine)))?;
        }
        if let Some(blobs) = fused_blobs {
            // Persist only after every install is queued: a snapshot I/O
            // failure then surfaces as a plain checkpoint error against a
            // fully committed migration, never a half-installed table.
            self.checkpoint_due = false;
            self.windows_since_checkpoint = 0;
            self.stats.fused_barriers += 1;
            self.persist_snapshot(&blobs)?;
        }
        Ok(())
    }

    /// Serialize, write, and commit a snapshot of the current cut: fsync
    /// the WAL, write the blob, advance the manifest, drop WAL segments
    /// and snapshots it made obsolete.
    fn persist_snapshot(&mut self, shard_states: &[Vec<u8>]) -> Result<(), EngineError> {
        let blob = self.encode_snapshot(shard_states);
        let d = self.durability.as_mut().expect("durability configured");
        // Order matters: WAL records covered by the manifest must be
        // durable before the manifest points past them.
        d.wal.sync().map_err(EngineError::from)?;
        d.epoch += 1;
        d.snapshots
            .write(d.epoch, &blob)
            .map_err(EngineError::from)?;
        Manifest {
            epoch: d.epoch,
            wal_index: self.stats.pushed,
            shards: self.shards as u32,
        }
        .store(&d.config.dir)
        .map_err(EngineError::from)?;
        d.wal
            .truncate_segments_before(self.stats.pushed)
            .map_err(EngineError::from)?;
        d.snapshots
            .purge_before(d.epoch)
            .map_err(EngineError::from)?;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// Serialize the ingest-side state + shard blobs into one snapshot.
    fn encode_snapshot(&self, shard_states: &[Vec<u8>]) -> Vec<u8> {
        use crate::state::{encode_events, encode_window_result, put_opt_u64};
        let mut out = Vec::new();
        out.push(SNAPSHOT_VERSION);
        put_u32(&mut out, self.shards as u32);
        // Result-shaping configuration the snapshot depends on: recovery
        // with different values would silently diverge from the original
        // run, so it is recorded and checked instead.
        put_u64(&mut out, self.reorder.slack());
        out.push(match self.late_policy {
            LatePolicy::Drop => 0,
            LatePolicy::Divert => 1,
            LatePolicy::Error => 2,
        });
        out.push(match self.merge {
            None => 0,
            Some(_) => 1,
        });
        for v in [
            self.stats.pushed,
            self.stats.released,
            self.stats.late_dropped,
            self.stats.late_diverted,
            self.stats.broadcasts,
            self.stats.watermarks,
            self.stats.frames,
            self.stats.checkpoints,
            self.stats.barrier_snapshots,
            self.stats.fused_barriers,
            self.stats.rebalances,
            self.stats.groups_moved,
            self.max_occupancy as u64,
        ] {
            put_u64(&mut out, v);
        }
        put_opt_u64(&mut out, self.last_close_idx);
        put_u32(&mut out, self.late_windows.len() as u32);
        for (&wid, &(dropped, diverted)) in &self.late_windows {
            put_u64(&mut out, wid);
            put_u64(&mut out, dropped);
            put_u64(&mut out, diverted);
        }
        self.table.encode(&mut out);
        self.group_stats.encode(&mut out);
        put_u64(&mut out, self.windows_since_rebalance);
        self.recent_events.encode(&mut out);
        put_u32(&mut out, self.stats.events_per_shard.len() as u32);
        for v in &self.stats.events_per_shard {
            put_u64(&mut out, *v);
        }
        self.reorder.export_state(&mut out);
        encode_events(self.diverted.iter(), &mut out);
        put_u32(&mut out, self.pending.len() as u32);
        for row in &self.pending {
            encode_window_result(row, &mut out);
        }
        if let Some(m) = &self.merge {
            m.export_state(&mut out);
        }
        put_u32(&mut out, shard_states.len() as u32);
        for blob in shard_states {
            put_u32(&mut out, blob.len() as u32);
            out.extend_from_slice(blob);
        }
        out
    }

    /// Inverse of [`encode_snapshot`](Self::encode_snapshot). Refuses a
    /// `config` whose result-shaping knobs (slack, late policy) differ
    /// from the checkpointed run's — recovering under different values
    /// would silently break the byte-identical-replay guarantee.
    fn decode_snapshot(
        bytes: &[u8],
        expect_shards: usize,
        config: &ExecutorConfig,
    ) -> Result<SnapshotParts<N>, EngineError> {
        use crate::state::{decode_events, decode_window_result, get_opt_u64};
        let r = &mut Reader::new(bytes);
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError(format!("unsupported snapshot version {version}")).into());
        }
        let shards = r.u32()? as usize;
        if shards != expect_shards {
            return Err(CodecError(format!(
                "snapshot has {shards} shard state(s), manifest says {expect_shards}"
            ))
            .into());
        }
        let slack = r.u64()?;
        if slack != config.slack {
            return Err(EngineError::Config(format!(
                "slack mismatch: checkpoint was taken with slack {slack}, \
                 config asks for {}",
                config.slack
            )));
        }
        let late_policy = match r.u8()? {
            0 => LatePolicy::Drop,
            1 => LatePolicy::Divert,
            2 => LatePolicy::Error,
            t => return Err(CodecError(format!("bad LatePolicy tag {t}")).into()),
        };
        if late_policy != config.late_policy {
            return Err(EngineError::Config(format!(
                "late-policy mismatch: checkpoint was taken with {late_policy:?}, \
                 config asks for {:?}",
                config.late_policy
            )));
        }
        let emission = match r.u8()? {
            0 => EmissionMode::Unordered,
            1 => EmissionMode::WindowOrdered,
            t => return Err(CodecError(format!("bad EmissionMode tag {t}")).into()),
        };
        if emission != config.emission {
            return Err(EngineError::Config(format!(
                "emission-mode mismatch: checkpoint was taken with {emission:?}, \
                 config asks for {:?}",
                config.emission
            )));
        }
        let stats = ExecutorStats {
            pushed: r.u64()?,
            released: r.u64()?,
            late_dropped: r.u64()?,
            late_diverted: r.u64()?,
            broadcasts: r.u64()?,
            watermarks: r.u64()?,
            frames: r.u64()?,
            checkpoints: r.u64()?,
            barrier_snapshots: r.u64()?,
            fused_barriers: r.u64()?,
            rebalances: r.u64()?,
            groups_moved: r.u64()?,
            ..Default::default()
        };
        let max_occupancy = r.u64()? as usize;
        let last_close_idx = get_opt_u64(r)?;
        let n_late = r.seq_len(24)?;
        let mut late_windows = BTreeMap::new();
        for _ in 0..n_late {
            let wid = r.u64()?;
            let dropped = r.u64()?;
            let diverted = r.u64()?;
            late_windows.insert(wid, (dropped, diverted));
        }
        let table = RoutingTable::decode(r, expect_shards)?;
        let group_stats = GroupSketch::decode(config.group_stats_capacity, r)?;
        let windows_since_rebalance = r.u64()?;
        let recent_events = GroupSketch::decode(config.group_stats_capacity, r)?;
        let n_shard_loads = r.seq_len(8)?;
        let mut stats = stats;
        stats.events_per_shard = Vec::with_capacity(n_shard_loads);
        for _ in 0..n_shard_loads {
            stats.events_per_shard.push(r.u64()?);
        }
        let reorder = ReorderBuffer::import_state(slack, r)?;
        let diverted = decode_events(r)?;
        let n_pending = r.seq_len(9)?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push(decode_window_result(r)?);
        }
        let merge = match emission {
            EmissionMode::Unordered => None,
            EmissionMode::WindowOrdered => Some(ResultMerge::import_state(r)?),
        };
        let n_states = r.seq_len(4)?;
        if n_states != shards {
            return Err(CodecError(format!(
                "snapshot header says {shards} shards but carries {n_states} state blobs"
            ))
            .into());
        }
        let mut shard_states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            shard_states.push(r.bytes()?.to_vec());
        }
        if !r.is_empty() {
            return Err(
                CodecError(format!("{} trailing bytes after snapshot", r.remaining())).into(),
            );
        }
        Ok(SnapshotParts {
            stats,
            max_occupancy,
            last_close_idx,
            late_windows,
            table,
            group_stats,
            recent_events,
            windows_since_rebalance,
            reorder,
            diverted,
            pending,
            merge,
            shard_states,
        })
    }

    /// Deliver `msg` to a shard without ever blocking this thread for good:
    /// while the shard's input queue is full, drain the result channel into
    /// the pending buffer (the pushing thread is the only result consumer,
    /// so parking in a blocking `send` while workers wait to emit rows
    /// would deadlock the pipeline).
    fn send(&mut self, shard: usize, msg: Msg<N>) -> Result<(), EngineError> {
        let mut msg = msg;
        loop {
            match self.senders[shard].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) => {
                    msg = back;
                    if !self.drain_ready() {
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected(_)) => return Err(self.reap_after_failure()),
            }
        }
    }

    /// A worker vanished: close all inputs, drain results while the
    /// surviving workers flush (joining a worker that is blocked sending
    /// rows would hang), and surface the first real worker error.
    fn reap_after_failure(&mut self) -> EngineError {
        self.senders.clear();
        self.finished = true;
        let mut err = EngineError::Worker("shard input channel closed".into());
        let mut found = false;
        let workers: Vec<_> = self.workers.drain(..).collect();
        for w in workers {
            while !w.is_finished() {
                self.drain_ready();
                std::thread::yield_now();
            }
            match w.join() {
                Ok(Err(e)) if !found => {
                    err = e;
                    found = true;
                }
                Ok(_) => {}
                Err(_) if !found => {
                    err = EngineError::Worker("shard worker panicked".into());
                }
                Err(_) => {}
            }
        }
        err
    }
}

impl<N: TrendNum> Drop for StreamExecutor<N> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // Close inputs, discard pending results, reap the workers. (With
        // durability on, the WAL flushes via its own Drop — a subsequent
        // `recover` replays it.)
        self.senders.clear();
        while self.results_rx.try_recv().is_ok() {}
        for w in self.workers.drain(..) {
            // Workers may be blocked sending results; keep draining while
            // they flush so the join cannot deadlock.
            while !w.is_finished() {
                let _ = self.results_rx.try_recv();
                std::thread::yield_now();
            }
            let _ = w.join();
        }
    }
}

fn worker_loop<N: TrendNum>(
    mut engine: GretaEngine<N>,
    shard: usize,
    rx: Receiver<Msg<N>>,
    results_tx: Sender<OutMsg<N>>,
    export_final: bool,
    ordered: bool,
) -> Result<WorkerReport, EngineError> {
    let report = |engine: &GretaEngine<N>| WorkerReport {
        stats: engine.stats(),
        peak_bytes: engine.peak_memory_bytes().max(engine.memory_bytes()),
        group_vertices: engine.group_vertices(),
        final_state: None,
    };
    // Per-shard emission counter and last frontier sent: rows are stamped
    // `(shard, seq)`, and a frontier message follows whenever the engine's
    // emission frontier advanced — after the rows it covers, so the
    // ordered merge can never release a window ahead of its rows.
    let mut seq = 0u64;
    let mut frontier = 0;
    for msg in rx.iter() {
        match msg {
            Msg::Events(batch) => {
                for e in &batch {
                    engine.process_ref(e)?;
                }
            }
            Msg::Watermark(t) => engine.advance_watermark(t),
            Msg::Snapshot(reply) => {
                // Rows of previous messages were already flushed below, so
                // the exported state and the emitted rows never overlap.
                let _ = reply.send((shard, engine.export_state()));
                continue;
            }
            Msg::Install(next) => {
                // Barrier-migration commit: adopt the repartitioned engine.
                // Its inherited watermark (the max across source engines)
                // may already be past some windows' close times — close
                // them now so their rows flow out with this drain instead
                // of waiting for the next message.
                engine = *next;
                engine.close_overdue();
            }
        }
        for row in engine.poll_results() {
            seq += 1;
            if results_tx
                .send(OutMsg::Row {
                    shard: shard as u32,
                    seq,
                    row,
                })
                .is_err()
            {
                // Executor dropped without finish(): stop quietly.
                return Ok(report(&engine));
            }
        }
        if ordered {
            let next = engine.emission_frontier();
            if next > frontier {
                frontier = next;
                if results_tx
                    .send(OutMsg::Frontier {
                        shard: shard as u32,
                        next_window: next,
                    })
                    .is_err()
                {
                    return Ok(report(&engine));
                }
            }
        }
    }
    for row in engine.finish() {
        seq += 1;
        if results_tx
            .send(OutMsg::Row {
                shard: shard as u32,
                seq,
                row,
            })
            .is_err()
        {
            break;
        }
    }
    // No explicit final frontier: the executor treats this worker's
    // channel disconnect as frontier = ∞.
    let mut rep = report(&engine);
    if export_final {
        rep.final_state = Some(engine.export_state());
    }
    Ok(rep)
}

/// Inline batch driver: the single-shard, zero-thread execution path that
/// [`GretaEngine::run`] wraps. Processing an in-order batch through an
/// engine and draining incrementally is exactly what one shard worker does.
pub(crate) fn drive_batch<N: TrendNum>(
    engine: &mut GretaEngine<N>,
    events: &[Event],
) -> Result<Vec<WindowResult<N>>, EngineError> {
    let mut out = Vec::new();
    for e in events {
        engine.process(e)?;
        out.extend(engine.poll_results());
    }
    out.extend(engine.finish());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::EventBuilder;
    use std::path::PathBuf;

    fn grouped_setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 100 SLIDE 50",
            &reg,
        )
        .unwrap();
        let events: Vec<Event> = (0..240u64)
            .map(|t| {
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", (t % 7) as i64)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build()
            })
            .collect();
        (reg, q, events)
    }

    fn sorted<N: TrendNum>(mut rows: Vec<WindowResult<N>>) -> Vec<WindowResult<N>> {
        rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        rows
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("greta-exec-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn sharded_executor_matches_sequential_engine() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        for shards in [1, 2, 4] {
            let mut exec = StreamExecutor::<u64>::new(
                q.clone(),
                reg.clone(),
                ExecutorConfig {
                    shards,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rows = Vec::new();
            for e in &events {
                exec.push(e.clone()).unwrap();
                rows.extend(exec.poll_results());
            }
            rows.extend(exec.finish().unwrap());
            assert_eq!(sorted(rows), expect, "shards={shards}");
            let stats = exec.stats();
            assert_eq!(stats.pushed, events.len() as u64);
            assert_eq!(stats.engine.events, events.len() as u64);
        }
    }

    #[test]
    fn batch_sizes_do_not_change_results() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut frames_seen = Vec::new();
        for batch_size in [1usize, 7, 64, 10_000] {
            let mut exec = StreamExecutor::<u64>::new(
                q.clone(),
                reg.clone(),
                ExecutorConfig {
                    shards: 3,
                    batch_size,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rows = Vec::new();
            for e in &events {
                exec.push(e.clone()).unwrap();
                rows.extend(exec.poll_results());
            }
            rows.extend(exec.finish().unwrap());
            assert_eq!(sorted(rows), expect, "batch_size={batch_size}");
            frames_seen.push(exec.stats().frames);
        }
        // Bigger batches mean fewer frames.
        assert!(
            frames_seen[0] > frames_seen[2],
            "batch=1 sent {} frames, batch=64 sent {}",
            frames_seen[0],
            frames_seen[2]
        );
    }

    #[test]
    fn results_stream_incrementally_not_only_at_finish() {
        let (reg, q, events) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut streamed = 0usize;
        for e in &events {
            exec.push(e.clone()).unwrap();
            streamed += exec.poll_results().len();
        }
        // Workers flush asynchronously; give the last close a moment.
        for _ in 0..100 {
            streamed += exec.poll_results().len();
            if streamed > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(streamed > 0, "no rows before finish()");
        exec.finish().unwrap();
    }

    #[test]
    fn late_policies() {
        let mk = |policy| {
            let mut reg = SchemaRegistry::new();
            reg.register_type("A", &[]).unwrap();
            let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg)
                .unwrap();
            let tid = reg.type_id("A").unwrap();
            let exec = StreamExecutor::<u64>::new(
                q,
                reg,
                ExecutorConfig {
                    shards: 1,
                    slack: 2,
                    late_policy: policy,
                    ..Default::default()
                },
            )
            .unwrap();
            (exec, tid)
        };
        let ev = |tid, t| Event::new_unchecked(tid, Time(t), vec![]);

        // Drop: the late event vanishes but is counted, globally and per
        // window.
        let (mut exec, tid) = mk(LatePolicy::Drop);
        for t in [10u64, 20, 5] {
            exec.push(ev(tid, t)).unwrap();
        }
        let rows = exec.finish().unwrap();
        let stats = exec.stats();
        assert_eq!(stats.late_dropped, 1);
        assert_eq!(
            stats.late_by_window,
            vec![WindowLateCounts {
                window: 0,
                dropped: 1,
                diverted: 0
            }]
        );
        assert_eq!(rows[0].values[0].to_f64(), 3.0); // {10},{20},{10,20}

        // Divert: the late event is handed back.
        let (mut exec, tid) = mk(LatePolicy::Divert);
        for t in [10u64, 20, 5] {
            exec.push(ev(tid, t)).unwrap();
        }
        exec.finish().unwrap();
        let diverted = exec.take_diverted();
        let stats = exec.stats();
        assert_eq!(stats.late_diverted, 1);
        assert_eq!(stats.late_by_window[0].diverted, 1);
        assert_eq!(diverted.len(), 1);
        assert_eq!(diverted[0].time, Time(5));

        // Error: push fails loudly.
        let (mut exec, tid) = mk(LatePolicy::Error);
        exec.push(ev(tid, 10)).unwrap();
        exec.push(ev(tid, 20)).unwrap();
        let err = exec.push(ev(tid, 5)).unwrap_err();
        assert!(matches!(err, EngineError::Late { got: 5, .. }), "{err}");
        exec.finish().unwrap();
    }

    #[test]
    fn slack_reorders_disordered_input() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let tid = reg.type_id("A").unwrap();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 1,
                slack: 5,
                late_policy: LatePolicy::Error,
                ..Default::default()
            },
        )
        .unwrap();
        for t in [2u64, 1, 4, 3, 5] {
            exec.push(Event::new_unchecked(tid, Time(t), vec![]))
                .unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(rows[0].values[0].to_f64(), 31.0); // 2^5 - 1
        assert_eq!(exec.stats().released, 5);
    }

    #[test]
    fn ungrouped_query_clamps_to_one_shard() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
        let exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exec.shards(), 1);
    }

    #[test]
    fn zero_shards_rejected_and_push_after_finish_errors() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
        assert!(StreamExecutor::<u64>::new(
            q.clone(),
            reg.clone(),
            ExecutorConfig {
                shards: 0,
                ..Default::default()
            },
        )
        .is_err());
        let tid = reg.type_id("A").unwrap();
        let mut exec = StreamExecutor::<u64>::new(q, reg, ExecutorConfig::default()).unwrap();
        exec.finish().unwrap();
        assert!(exec.finish().unwrap().is_empty()); // idempotent
        assert!(exec
            .push(Event::new_unchecked(tid, Time(1), vec![]))
            .is_err());
    }

    #[test]
    fn poll_free_caller_with_tiny_channels_cannot_deadlock() {
        // Regression: with a full result channel and full shard queues, a
        // caller that never polls used to park forever in push()/finish().
        // The sender now drains results into an internal buffer instead.
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                channel_capacity: 2,
                result_capacity: 1,
                batch_size: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap(); // no poll_results() on purpose
        }
        let rows = exec.finish().unwrap();
        assert_eq!(sorted(rows), expect);
        assert!(exec.stats().max_channel_occupancy >= 2);
    }

    #[test]
    fn broadcast_frames_are_pointer_identical_across_shards() {
        // The zero-copy event plane: a broadcast event reaches every shard
        // as an `Arc` clone of ONE allocation, never as a deep copy.
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 1000 SLIDE 1000",
            &reg,
        )
        .unwrap();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg.clone(),
            ExecutorConfig {
                shards: 3,
                batch_size: 10_000, // keep frames buffered so we can inspect them
                ..Default::default()
            },
        )
        .unwrap();
        let acc = EventBuilder::new(&reg, "Accident")
            .unwrap()
            .at(Time(1))
            .set("segment", 4)
            .unwrap()
            .build();
        let pos = EventBuilder::new(&reg, "Position")
            .unwrap()
            .at(Time(5))
            .set("vehicle", 7)
            .unwrap()
            .set("segment", 4)
            .unwrap()
            .build();
        exec.push(acc).unwrap();
        exec.push(pos).unwrap(); // advances the reorder horizon past t=1
        assert_eq!(exec.stats().broadcasts, 1);
        assert_eq!(exec.batch_bufs.len(), 3);
        let first = &exec.batch_bufs[0][0];
        for buf in &exec.batch_bufs[1..] {
            assert!(
                std::sync::Arc::ptr_eq(first, &buf[0]),
                "broadcast event was copied instead of shared"
            );
        }
        exec.finish().unwrap();
    }

    #[test]
    fn broadcast_types_reach_all_shards() {
        // Q3-style leading negation with a sub-key type, 3 shards.
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&reg, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&reg, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let events = vec![
            pos(1, 1, 1),
            pos(1, 2, 2),
            acc(2, 1),
            pos(3, 1, 1),
            pos(3, 2, 2),
        ];
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(sorted(rows), expect);
        assert_eq!(exec.stats().broadcasts, 1);
    }

    // ------------------------------------------------------------------
    // Dynamic rebalancing
    // ------------------------------------------------------------------

    /// A 90/10 hot-key stream over `hot` hot groups and a tail of cold
    /// ones: 90% of events round-robin the hot groups, 10% spread wide.
    fn skewed_setup(n: usize, hot: i64, cold: i64) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 40 SLIDE 20",
            &reg,
        )
        .unwrap();
        let events: Vec<Event> = (0..n as u64)
            .map(|t| {
                let grp = if t % 10 < 9 {
                    (t % hot as u64) as i64 // hot minority
                } else {
                    hot + (t % cold as u64) as i64 // cold tail
                };
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", grp)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build()
            })
            .collect();
        (reg, q, events)
    }

    fn aggressive_rebalance() -> RebalanceConfig {
        RebalanceConfig {
            check_every_windows: 2,
            imbalance_ratio: 1.2,
            min_moves: 1,
        }
    }

    #[test]
    fn skewed_stream_triggers_rebalance_and_results_stay_identical() {
        let (reg, q, events) = skewed_setup(400, 3, 23);
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 4,
                rebalance: Some(aggressive_rebalance()),
                ..Default::default()
            },
        )
        .unwrap();
        let mut rows = Vec::new();
        for e in &events {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        assert_eq!(sorted(rows), expect);
        let stats = exec.stats();
        assert!(
            stats.rebalances >= 1,
            "3 hot groups over 4 shards must trigger the detector"
        );
        assert_eq!(stats.routing_epoch, stats.rebalances);
        assert!(stats.groups_moved >= 1);
        // Per-group event counters survive the migrations: they must sum
        // to exactly the non-broadcast events released.
        let counted: u64 = stats.group_stats.iter().map(|(_, s)| s.events).sum();
        assert_eq!(counted, stats.released);
        // Engine-side vertex counters are reported per group at finish.
        assert!(stats.group_stats.iter().any(|(_, s)| s.vertices > 0));
    }

    #[test]
    fn balanced_stream_never_rebalances() {
        // Uniform groups: the detector must stay quiet even with an
        // aggressive cadence.
        let (reg, q, events) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                rebalance: Some(RebalanceConfig {
                    check_every_windows: 1,
                    imbalance_ratio: 3.0,
                    min_moves: 1,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        exec.finish().unwrap();
        let stats = exec.stats();
        assert_eq!(stats.rebalances, 0);
        assert_eq!(stats.routing_epoch, 0);
    }

    #[test]
    fn min_moves_suppresses_marginal_migrations() {
        let (reg, q, events) = skewed_setup(400, 3, 23);
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 4,
                rebalance: Some(RebalanceConfig {
                    min_moves: usize::MAX, // no plan can clear this bar
                    ..aggressive_rebalance()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        exec.finish().unwrap();
        assert_eq!(exec.stats().rebalances, 0);
    }

    #[test]
    fn rebalance_composes_with_durability_and_recovery() {
        // Crash after a rebalance: the snapshot carries the routing table
        // and group counters, and the recovered run stays byte-identical.
        let (reg, q, events) = skewed_setup(400, 3, 23);
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("rebalance-recover");
        let mk_cfg = || ExecutorConfig {
            shards: 4,
            rebalance: Some(aggressive_rebalance()),
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let mut committed = Vec::new();
        let (rebalances_before, epoch_before) = {
            let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg()).unwrap();
            for e in &events[..250] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
            let s = exec.stats();
            (s.rebalances, s.routing_epoch)
        }; // crash
        assert!(rebalances_before >= 1, "prefix must already have migrated");
        let mut exec = StreamExecutor::<u64>::recover(q.clone(), reg.clone(), mk_cfg()).unwrap();
        assert_eq!(exec.routing_epoch(), epoch_before);
        for e in &events[250..] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_eq!(sorted(committed), expect);
        assert!(exec.stats().rebalances >= rebalances_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    fn durable_config(dir: &std::path::Path, shards: usize) -> ExecutorConfig {
        ExecutorConfig {
            shards,
            durability: Some(DurabilityConfig::new(dir)),
            ..Default::default()
        }
    }

    #[test]
    fn checkpoint_then_crash_then_recover_is_byte_identical() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("ckpt-recover");
        let mut committed = Vec::new();
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 3))
                    .unwrap();
            for e in &events[..150] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
            assert!(exec.stats().checkpoints >= 1);
            // Crash: drop without finish(). Rows polled before the
            // checkpoint are kept (`committed`); un-polled rows live in
            // the snapshot and resurface through the recovered executor.
            // (Rows polled *after* a checkpoint would be re-emitted on
            // recovery — deterministic duplicates for an idempotent sink.)
        }
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 3))
                .unwrap();
        let mut rows = Vec::new();
        for e in &events[150..] {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        committed.extend(rows);
        assert_eq!(sorted(committed), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_first_checkpoint_replays_whole_wal() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("no-ckpt");
        {
            let mut cfg = durable_config(&dir, 2);
            // Cadence so large no automatic checkpoint fires.
            cfg.durability.as_mut().unwrap().snapshot_every_windows = u64::MAX;
            let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), cfg).unwrap();
            for e in &events[..57] {
                exec.push(e.clone()).unwrap();
            }
            // Crash without ever polling: every row must come from recovery.
        }
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 2))
                .unwrap();
        let mut rows = Vec::new();
        for e in &events[57..] {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        assert_eq!(sorted(rows), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_cadence_checkpoints_and_wal_truncation() {
        let (reg, q, events) = grouped_setup();
        let dir = tmpdir("cadence");
        let mut cfg = durable_config(&dir, 2);
        {
            let d = cfg.durability.as_mut().unwrap();
            d.snapshot_every_windows = 1;
            d.segment_bytes = 512; // force rotations so truncation can bite
        }
        let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), cfg).unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
            exec.poll_results();
        }
        exec.finish().unwrap();
        let stats = exec.stats();
        assert!(
            stats.checkpoints >= 3,
            "expected cadence checkpoints, got {}",
            stats.checkpoints
        );
        // Obsolete segments were truncated: the on-disk WAL no longer
        // reaches back to record 0.
        let err = Wal::replay(&dir, 0, TailPolicy::Tolerate, |_, _| {}).unwrap_err();
        assert!(matches!(
            err,
            greta_durability::DurabilityError::NothingToRecover(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_after_graceful_finish_resumes_empty() {
        // finish() takes a final checkpoint; recovering afterwards yields a
        // executor with the full history in its counters and nothing to
        // replay.
        let (reg, q, events) = grouped_setup();
        let dir = tmpdir("graceful");
        let mut exec =
            StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 2)).unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
            exec.poll_results();
        }
        exec.finish().unwrap();
        let mut recovered =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 2))
                .unwrap();
        assert_eq!(recovered.stats().pushed, events.len() as u64);
        let rows = recovered.finish().unwrap();
        assert!(rows.is_empty(), "graceful finish left {} rows", rows.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_refuses_dir_with_existing_state_and_recover_reshards() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("refuse");
        let mut committed = Vec::new();
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 2))
                    .unwrap();
            for e in &events[..120] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
        }
        // new() on a used dir is refused (would shadow recoverable state).
        let err = StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 2))
            .err()
            .expect("new() must refuse a dir with recoverable state");
        assert!(matches!(err, EngineError::Config(_)), "{err}");
        // recover() into a *different* shard count repartitions the
        // snapshot's per-group state under a fresh routing epoch — results
        // stay byte-identical to the uninterrupted run.
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 5))
                .unwrap();
        assert_eq!(exec.shards(), 5);
        assert!(exec.routing_epoch() > 0, "resharding bumps the epoch");
        for e in &events[120..] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_eq!(sorted(committed), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn logged_then_rejected_late_event_does_not_poison_recovery() {
        // Under LatePolicy::Error the event is WAL-logged before the late
        // check fails the push; replay must skip it the same way the
        // original caller did, not fail recovery forever.
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let tid = reg.type_id("A").unwrap();
        let dir = tmpdir("late-poison");
        let mk_cfg = || ExecutorConfig {
            shards: 1,
            slack: 2,
            late_policy: LatePolicy::Error,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        {
            let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg()).unwrap();
            let ev = |t| Event::new_unchecked(tid, Time(t), vec![]);
            exec.push(ev(10)).unwrap();
            exec.push(ev(20)).unwrap();
            // Late: logged, then rejected — the caller notes it and goes on.
            assert!(matches!(
                exec.push(ev(5)).unwrap_err(),
                EngineError::Late { got: 5, .. }
            ));
            exec.push(ev(30)).unwrap();
        } // crash
        let mut exec = StreamExecutor::<u64>::recover(q, reg, mk_cfg()).unwrap();
        assert_eq!(exec.stats().pushed, 4);
        let rows = exec.finish().unwrap();
        // Same result the uninterrupted run produces: trends over {10,20,30}.
        assert_eq!(rows[0].values[0].to_f64(), 7.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_refuses_mismatched_slack_or_late_policy() {
        let (reg, q, events) = grouped_setup();
        let dir = tmpdir("cfg-mismatch");
        let mk_cfg = |slack, late_policy| ExecutorConfig {
            shards: 2,
            slack,
            late_policy,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg(3, LatePolicy::Divert))
                    .unwrap();
            for e in &events[..150] {
                exec.push(e.clone()).unwrap();
            }
            exec.checkpoint().unwrap();
        }
        for bad in [mk_cfg(0, LatePolicy::Divert), mk_cfg(3, LatePolicy::Drop)] {
            let err = StreamExecutor::<u64>::recover(q.clone(), reg.clone(), bad)
                .err()
                .expect("recover must refuse result-shaping config changes");
            assert!(matches!(err, EngineError::Config(_)), "{err}");
        }
        // The matching config still works.
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), mk_cfg(3, LatePolicy::Divert))
                .unwrap();
        exec.finish().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_requires_durability() {
        let (reg, q, _) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(
            exec.checkpoint().unwrap_err(),
            EngineError::Config(_)
        ));
        exec.finish().unwrap();
    }

    #[test]
    fn recovery_preserves_reorder_slack_state_and_diverted() {
        // Out-of-order events pending in the reorder buffer at checkpoint
        // time survive the crash via the snapshot (they are *before* the
        // manifest's WAL cut).
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["grp"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN A+ GROUP-BY grp WITHIN 20 SLIDE 20",
            &reg,
        )
        .unwrap();
        let tid = reg.type_id("A").unwrap();
        let ev = |t: u64| Event::new_unchecked(tid, Time(t), vec![greta_types::Value::Int(0)]);
        let times: Vec<u64> = vec![2, 1, 4, 3, 6, 5, 8, 7, 30, 29, 31, 28, 50];
        let mk_cfg = |dir: &std::path::Path| ExecutorConfig {
            shards: 1,
            slack: 3,
            late_policy: LatePolicy::Divert,
            durability: Some(DurabilityConfig::new(dir)),
            ..Default::default()
        };
        // Oracle without durability.
        let mut oracle = StreamExecutor::<u64>::new(
            q.clone(),
            reg.clone(),
            ExecutorConfig {
                durability: None,
                ..mk_cfg(std::path::Path::new("/unused"))
            },
        )
        .unwrap();
        let mut expect = Vec::new();
        for &t in &times {
            oracle.push(ev(t)).unwrap();
        }
        expect.extend(oracle.finish().unwrap());
        let n_div_expect = {
            let d = oracle.take_diverted();
            d.len()
        };

        let dir = tmpdir("reorder-divert");
        let mut committed = Vec::new();
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg(&dir)).unwrap();
            for &t in &times[..7] {
                exec.push(ev(t)).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
        } // crash
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), mk_cfg(&dir)).unwrap();
        for &t in &times[7..] {
            exec.push(ev(t)).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_eq!(sorted(committed), sorted(expect));
        assert_eq!(exec.take_diverted().len(), n_div_expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
