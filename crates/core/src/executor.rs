//! Push-based, sharded, multi-query stream execution (paper §7 / §10.4
//! turned into a long-lived serving layer).
//!
//! [`StreamExecutor`] unifies what used to be three disconnected entry
//! points — batch [`GretaEngine::run`], fire-and-collect
//! [`run_parallel`](crate::parallel::run_parallel), and the unwired
//! [`ReorderBuffer`] — into one pipeline, and since the multi-query
//! refactor one ingest plane serves N registered queries:
//!
//! ```text
//!                 ┌────────────┐  per route group   ┌──────────────────┐
//!  push(event) ─▶ │ ReorderBuf │ ─▶ shard router ─▶ │ shard 0..N       │──┐
//!       │         │ (slack,    │    (hash of the    │ one GretaEngine  │  │ tagged
//!       ▼         │  late      │     group's key;   │ per (shard,query)│  │ result
//!  WAL append     │  policy)   │     broadcast for  └──────────────────┘  │ channel
//!  (tagged,       └────────────┘     negative types)┌──────────────────┐  │
//!   optional)           └────── watermarks ───────▶ │ shard N-1        │──┤
//!                                                   └──────────────────┘  ▼
//!                                     per-query merge ─▶ poll_results_of(q)
//! ```
//!
//! * **Ingestion** (paid once, not once per query): events may arrive out
//!   of order up to a configurable `slack`; later than that, the
//!   [`LatePolicy`] decides — drop (count), divert (keep for the caller),
//!   or error. With durability on, each event is WAL-appended exactly once
//!   no matter how many queries consume it.
//! * **Multi-query fan-out**: besides the *primary* query passed to
//!   [`new`](StreamExecutor::new), further queries join at runtime via
//!   [`register_query`](StreamExecutor::register_query) and leave via
//!   [`deregister_query`](StreamExecutor::deregister_query), each keyed by
//!   a [`QueryId`] and carrying its own compiled plan, [`EmissionMode`],
//!   result buffer, and (when ordered) [`ResultMerge`]. Queries whose
//!   `GROUP-BY` keys coincide ([`StreamRouting::routes_like`]) share one
//!   *route group*: the event is classified, hashed, and framed once for
//!   the whole set. Each shard worker hosts one [`GretaEngine`] per
//!   (shard, query).
//! * **Sharding** (§7): each `GROUP-BY` group is owned by exactly one shard
//!   worker, so per-shard results are disjoint and concatenate without
//!   merging. Events of broadcast types (negative-pattern / sub-key types)
//!   are delivered to every shard. Routing is deterministic: every query's
//!   results are independent of the shard count and byte-identical to its
//!   standalone single-query run over the same event suffix.
//! * **Batching**: events are accumulated into per-(group, shard)
//!   `Vec<EventRef>` frames ([`ExecutorConfig::batch_size`]) so channel
//!   synchronization is paid per frame, not per event. Frames are flushed
//!   whenever full and at every window-close boundary, so results still
//!   stream incrementally.
//! * **Zero-copy event plane**: an event is allocated once, when it enters
//!   [`push`](StreamExecutor::push) (or arrives pre-shared via
//!   [`push_ref`](StreamExecutor::push_ref)); everything downstream — the
//!   reorder buffer, shard frames, the broadcast fan-out, graph vertices,
//!   the divert buffer — holds `Arc` clones of that one allocation. A
//!   broadcast to N shards (or a fan-out to M route groups) costs pointer
//!   bumps, not deep copies.
//! * **Watermarks**: whenever the released watermark crosses any
//!   registered query's window-close boundary, buffered frames are flushed
//!   and the watermark is broadcast so shards that received no recent
//!   events still close their windows.
//! * **Barrier protocol**: checkpoint, rebalance, register, and deregister
//!   all use the same cut — flush buffered frames, send a barrier message
//!   down every FIFO shard channel, install the change under a bumped
//!   epoch. Coinciding rebalance + checkpoint barriers fuse into one
//!   drain; register/deregister barriers bump
//!   [`query_epoch`](StreamExecutor::query_epoch).
//! * **Durability** (off by default): with
//!   [`ExecutorConfig::durability`] set, every pushed event is appended to
//!   a write-ahead log *before* routing (tagged records — event /
//!   register / deregister — so the query registry itself is replayable),
//!   and every `snapshot_every_windows` closed windows the executor
//!   checkpoints — each shard serializes every engine it hosts
//!   ([`GretaEngine::export_state`]), the ingest side serializes the
//!   reorder buffer, counters, and the query registry, the blob goes to
//!   the snapshot store, the manifest advances, and obsolete WAL segments
//!   are deleted. [`StreamExecutor::recover`] restores the latest
//!   checkpoint — all registered queries included, byte-identically — and
//!   replays the WAL tail: the recovered executor emits exactly the rows
//!   an uninterrupted run would have emitted after that checkpoint (rows
//!   already emitted for earlier windows are not repeated; rows emitted
//!   between the checkpoint and the crash are re-emitted — results are
//!   deterministic, so an idempotent sink keyed on `(window, group)`
//!   yields exactly-once output).
//! * **Emission**: closed-window results flow through one bounded channel,
//!   tagged by query; [`StreamExecutor::poll_results`] drains the primary
//!   query, [`poll_results_of`](StreamExecutor::poll_results_of) any
//!   registered one, [`StreamExecutor::finish`] flushes the pipeline and
//!   joins the workers. With [`EmissionMode::WindowOrdered`], a per-query
//!   cross-shard min-watermark merge ([`ResultMerge`]) makes that query's
//!   polled stream window-monotone in canonical `(window, group)` order —
//!   byte-identical to the sorted unordered output — and
//!   [`min_frontier`](StreamExecutor::min_frontier) exposes the released
//!   watermark so one executor's ordered output can feed another
//!   executor's input (cascaded DAGs; see `ARCHITECTURE.md`).

use crate::agg::TrendNum;
use crate::engine::{EngineConfig, EngineStats, GretaEngine};
use crate::grouping::{group_key_hash, shard_of_hash, PartitionKey, RoutingTable, StreamRouting};
use crate::reorder::{ReorderBuffer, ResultMerge};
use crate::results::{sort_canonical, WindowResult};
use crate::sketch::GroupSketch;
use crate::window::WindowId;
use crate::EngineError;
use crate::MemoryFootprint;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError, TrySendError};
use greta_durability::{DurabilityConfig, Manifest, SnapshotStore, TailPolicy, Wal};
use greta_query::CompiledQuery;
use greta_types::codec::{put_str, put_u32, put_u64, Reader};
use greta_types::{CodecError, Event, EventRef, GroupStats, SchemaRegistry, Time};
use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;

/// What to do with an event that arrives later than the reorder slack
/// allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Silently drop the event (counted in [`ExecutorStats::late_dropped`]).
    #[default]
    Drop,
    /// Keep the event for the caller ([`StreamExecutor::take_diverted`]) —
    /// e.g. to route into a correction stream.
    Divert,
    /// Fail the `push` with [`EngineError::Late`].
    Error,
}

/// Ordering guarantee of one query's result stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmissionMode {
    /// Rows stream out as shards close windows: per-shard order, arbitrary
    /// interleaving across shards. Lowest latency; sort the concatenation
    /// of all drains (or rely on [`finish`](StreamExecutor::finish), which
    /// sorts its remainder) for the canonical order.
    #[default]
    Unordered,
    /// Rows stream out **window-monotone** in canonical `(window, group)`
    /// order: a cross-shard min-watermark merge
    /// ([`ResultMerge`]) holds each window's
    /// rows until every shard's emission frontier has passed it. Buffering
    /// is bounded by the number of open windows; the concatenation of all
    /// [`poll_results`](StreamExecutor::poll_results) drains plus the
    /// [`finish`](StreamExecutor::finish) remainder is byte-identical to
    /// the sorted `Unordered` output, with no sort-at-finish. Latency cost:
    /// a window's rows wait for the slowest shard to pass it (at most one
    /// window-close boundary behind `Unordered`).
    WindowOrdered,
}

/// Knobs of the executor's skew detector (dynamic shard rebalancing).
///
/// Real trend workloads are hot-key skewed: one hot sector/segment can pin
/// a single shard while the rest idle, capping throughput no matter how
/// many shards exist (the paper's §10.4 scaling model assumes uniform
/// groups). With rebalancing on, the executor counts routed events per
/// `GROUP-BY` group and, every `check_every_windows` closed windows,
/// compares the most-loaded shard against the mean. On imbalance it plans
/// a greedy longest-processing-time reassignment of the observed groups
/// and migrates state at a window-close barrier — results stay
/// byte-identical to any static assignment. The detector watches the
/// *primary* route group (the one the query passed to
/// [`StreamExecutor::new`] routes through); registered queries that share
/// it migrate with it, queries with their own key stay on the static hash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Run the skew check every this many closed windows.
    pub check_every_windows: u64,
    /// Trigger when `max shard load ≥ imbalance_ratio × mean shard load`
    /// (values ≤ 1.0 behave like 1.0; 2.0 means "one shard does double its
    /// fair share").
    pub imbalance_ratio: f64,
    /// Skip the migration when fewer than this many groups would move
    /// (suppresses churn from marginal plans).
    pub min_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            check_every_windows: 4,
            imbalance_ratio: 2.0,
            min_moves: 1,
        }
    }
}

/// Tuning knobs for [`StreamExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Shard workers. Clamped to 1 when the *primary* query has no
    /// `GROUP-BY` (nothing to partition by — the paper's scaling model).
    /// Must be ≥ 1.
    pub shards: usize,
    /// Reorder slack in ticks: events may arrive up to this much behind the
    /// maximum time stamp seen and still be processed in order.
    pub slack: u64,
    /// Policy for events later than `slack`.
    pub late_policy: LatePolicy,
    /// Per-shard input queue capacity (frames; backpressure beyond it).
    pub channel_capacity: usize,
    /// Result channel capacity (rows; callers that never poll get
    /// backpressure once this many rows are waiting).
    pub result_capacity: usize,
    /// Events accumulated per (route group, shard) before a frame is sent
    /// (1 = a frame per event, the pre-batching behaviour). Frames are
    /// also flushed at every window-close boundary, so results never wait
    /// on a lazy batch.
    pub batch_size: usize,
    /// Configuration for the per-shard engines (every hosted query's).
    pub engine: EngineConfig,
    /// Write-ahead log + snapshot configuration; `None` (the default) runs
    /// without any persistence.
    pub durability: Option<DurabilityConfig>,
    /// Dynamic shard rebalancing for skewed groups; `None` (the default)
    /// keeps the static hash assignment.
    pub rebalance: Option<RebalanceConfig>,
    /// The *primary* query's result-stream ordering guarantee (default:
    /// [`EmissionMode::Unordered`]); registered queries pick theirs at
    /// [`register_query`](StreamExecutor::register_query) time.
    pub emission: EmissionMode,
    /// Maximum groups tracked in [`ExecutorStats::group_stats`] (top-K +
    /// decayed-counter sketch; `0` = unbounded exact counting). Bounds the
    /// skew detector's memory on high-cardinality `GROUP-BY` streams.
    pub group_stats_capacity: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slack: 0,
            late_policy: LatePolicy::Drop,
            channel_capacity: 4096,
            result_capacity: 1 << 16,
            batch_size: 64,
            engine: EngineConfig::default(),
            durability: None,
            rebalance: None,
            emission: EmissionMode::default(),
            group_stats_capacity: 1024,
        }
    }
}

/// Identifier of one query hosted by a [`StreamExecutor`].
///
/// The query passed to [`StreamExecutor::new`] (or recovered as such) is
/// the *primary* query, always [`QueryId::PRIMARY`]; every
/// [`register_query`](StreamExecutor::register_query) call allocates the
/// next id. Ids are never reused within one executor (or across its
/// recoveries — the counter is checkpointed and WAL-replayed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The query the executor was constructed with.
    pub const PRIMARY: QueryId = QueryId(0);
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Per-query counters inside [`ExecutorStats::queries`].
#[derive(Debug, Clone, Default)]
pub struct QueryStreamStats {
    /// The query's id ([`QueryId::PRIMARY`] = the constructor query).
    pub id: QueryId,
    /// Rows produced for this query's caller so far (drained or waiting).
    pub rows: u64,
    /// Rows currently buffered for
    /// [`poll_results_of`](StreamExecutor::poll_results_of).
    pub pending_rows: usize,
    /// Ordered-merge released watermark: windows strictly below this id
    /// have been fully released in canonical order (0 under
    /// [`EmissionMode::Unordered`]).
    pub released_to: WindowId,
    /// Minimum cross-shard emission frontier — the window id every shard
    /// has passed (0 under [`EmissionMode::Unordered`]).
    pub min_frontier: WindowId,
    /// Whether this query routes through the primary route group (same
    /// `GROUP-BY` key plane — one classification and hash per event serves
    /// both).
    pub shares_primary_routing: bool,
    /// False once the query has been deregistered (its drained rows may
    /// still be pollable).
    pub active: bool,
}

/// Late-event counters of one window (backpressure / data-quality metric:
/// which windows lost input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowLateCounts {
    /// The latest window that would have contained the late event
    /// (`⌊t / slide⌋`, under the primary query's slide).
    pub window: WindowId,
    /// Events dropped under [`LatePolicy::Drop`].
    pub dropped: u64,
    /// Events kept under [`LatePolicy::Divert`].
    pub diverted: u64,
}

/// Executor counters.
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Events offered to [`StreamExecutor::push`].
    pub pushed: u64,
    /// Events released (in order) to the shards.
    pub released: u64,
    /// Late events dropped under [`LatePolicy::Drop`].
    pub late_dropped: u64,
    /// Late events kept under [`LatePolicy::Divert`].
    pub late_diverted: u64,
    /// Events delivered to every shard of the primary route group
    /// (broadcast types).
    pub broadcasts: u64,
    /// Watermark messages broadcast to the shards.
    pub watermarks: u64,
    /// `Vec<EventRef>` frames sent to shard queues (all route groups).
    pub frames: u64,
    /// Durability checkpoints completed.
    pub checkpoints: u64,
    /// Barrier snapshots taken across the shard workers (checkpoint cuts
    /// and migration cuts; a fused rebalance + checkpoint barrier counts
    /// once).
    pub barrier_snapshots: u64,
    /// Coinciding rebalance + checkpoint barriers served by one fused
    /// snapshot (each saved a full extra barrier drain).
    pub fused_barriers: u64,
    /// Barrier migrations performed by the skew detector.
    pub rebalances: u64,
    /// Groups whose shard assignment changed across all rebalances.
    pub groups_moved: u64,
    /// Version of the group → shard routing table (0 = the static hash
    /// assignment, bumped by every rebalance / resharded recovery).
    pub routing_epoch: u64,
    /// Version of the query registry: bumped by every successful
    /// [`register_query`](StreamExecutor::register_query) /
    /// [`deregister_query`](StreamExecutor::deregister_query) barrier.
    pub query_epoch: u64,
    /// Per-query stream counters, ascending by [`QueryId`] — one entry per
    /// hosted query, deregistered ones included (marked inactive).
    pub queries: Vec<QueryStreamStats>,
    /// Per-group load counters, sorted by group key: events are counted at
    /// routing time (only when [`ExecutorConfig::rebalance`] is set — this
    /// is the skew detector's signal), live graph vertices are filled in by
    /// [`finish`](StreamExecutor::finish) from the shard engines. Bounded
    /// to the [`ExecutorConfig::group_stats_capacity`] heaviest groups
    /// (space-saving sketch: counts of tracked groups never under-estimate,
    /// light groups may be evicted on high-cardinality streams).
    pub group_stats: Vec<(PartitionKey, GroupStats)>,
    /// Events delivered per shard by the primary route group (broadcasts
    /// count once per shard): the load-balance picture. On a skewed stream
    /// the pre-rebalance max of this vector is the parallel-throughput
    /// bottleneck; a successful migration flattens it.
    pub events_per_shard: Vec<u64>,
    /// Late drops/diverts per window, ascending by window id.
    pub late_by_window: Vec<WindowLateCounts>,
    /// Frames queued per shard input channel when
    /// [`stats`](StreamExecutor::stats) was called (empty after `finish`).
    pub channel_occupancy: Vec<usize>,
    /// Highest shard-queue occupancy (frames) observed at any flush.
    pub max_channel_occupancy: usize,
    /// Rows waiting in the result channel when
    /// [`stats`](StreamExecutor::stats) was called.
    pub result_occupancy: usize,
    /// The primary query's ordered-merge released watermark: windows
    /// strictly below this id have been fully released to the caller in
    /// canonical order. Only advances under
    /// [`EmissionMode::WindowOrdered`] (0 otherwise). This is the progress
    /// signal a downstream consumer — a cascaded executor DAG, a network
    /// subscription — can rely on: everything below it is final.
    pub merge_released_to: WindowId,
    /// Per-shard ordered-merge frontier lag of the primary query: how many
    /// windows each shard's emission frontier trails the *most advanced*
    /// shard's. A persistently laggy entry is the shard holding the
    /// ordered stream back (rows of windows between the frontiers are
    /// parked in the merge). Empty under [`EmissionMode::Unordered`].
    pub merge_frontier_lag: Vec<u64>,
    /// Rows parked in the primary query's ordered merge waiting for slow
    /// shards (bounded by open windows × groups). 0 under
    /// [`EmissionMode::Unordered`].
    pub merge_buffered_rows: usize,
    /// Aggregated per-shard engine counters, summed over every hosted
    /// query's engines (populated by `finish`).
    pub engine: EngineStats,
    /// Summed per-shard peak memory in bytes (populated by `finish`).
    pub peak_memory_bytes: usize,
}

/// One shard's serialized engine states: one `(query id, blob)` per
/// hosted query, in registry order.
type QueryBlobs = Vec<(u32, Vec<u8>)>;

enum Msg<N: TrendNum> {
    /// A batch of in-order shared events for one shard, tagged with the
    /// route group it was framed for (broadcast frames carry `Arc` clones
    /// of the same allocations). Only engines of queries in that group
    /// process it.
    Events { group: u32, frame: Vec<EventRef> },
    /// Close every window ending at or before this time (all queries).
    Watermark(Time),
    /// Serialize every hosted engine's state and reply with
    /// `(shard, [(query, blob)])`. Acts as a barrier: the states cover
    /// exactly the messages queued before it.
    Snapshot(Sender<(usize, QueryBlobs)>),
    /// Replace one query's engine on this shard with a repartitioned one
    /// (the commit step of a barrier migration). Channels are FIFO, so
    /// every frame routed under the new table is processed by the new
    /// engine.
    Install {
        query: u32,
        engine: Box<GretaEngine<N>>,
    },
    /// Register-barrier commit: host one more query's engine on this
    /// shard. FIFO channels guarantee the new engine sees exactly the
    /// frames routed after the registration cut.
    AddQuery {
        query: u32,
        group: u32,
        ordered: bool,
        engine: Box<GretaEngine<N>>,
        ack: Sender<usize>,
    },
    /// Deregister-barrier commit: finish and drop one query's engine,
    /// emitting its remaining rows (tagged) before acknowledging.
    RemoveQuery { query: u32, ack: Sender<usize> },
}

/// What shard workers put on the result channel.
enum OutMsg<N: TrendNum> {
    /// One result row, stamped with the owning query, the emitting shard,
    /// and that (query, shard)'s emission sequence number (strictly
    /// increasing; the ordered merge's sanity check).
    Row {
        query: u32,
        shard: u32,
        seq: u64,
        row: WindowResult<N>,
    },
    /// One (query, shard)'s emission frontier advanced: that engine will
    /// never emit a row for a window below `next_window`. Sent after the
    /// rows it covers (per-sender FIFO), so the merge never releases a
    /// window ahead of its rows.
    Frontier {
        query: u32,
        shard: u32,
        next_window: WindowId,
    },
}

struct WorkerReport {
    stats: EngineStats,
    peak_bytes: usize,
    /// Live graph vertices per group of the *primary* query's engine
    /// (skew reporting).
    group_vertices: Vec<(PartitionKey, u64)>,
    /// Post-`finish` engine states per hosted query, exported when
    /// durability is on so the terminal checkpoint reflects a
    /// fully-closed stream.
    final_states: Option<Vec<(u32, Vec<u8>)>>,
}

/// Durability runtime: open WAL + snapshot store + checkpoint bookkeeping.
struct DurabilityState {
    config: DurabilityConfig,
    wal: Wal,
    snapshots: SnapshotStore,
    /// Epoch of the last written snapshot (0 = none yet).
    epoch: u64,
    /// Reused WAL-record encode buffer.
    record_buf: Vec<u8>,
}

/// WAL record tags (first byte of every record since WAL format 2 — the
/// multi-query registry). `replay` dispatches on them; an event record is
/// the tag followed by the plain event encoding.
const WAL_EVENT: u8 = 0;
/// `[tag, u32 query id, u8 emission, str query text]`.
const WAL_REGISTER: u8 = 1;
/// `[tag, u32 query id]`.
const WAL_DEREGISTER: u8 = 2;

/// One hosted query: its plan, result shaping, and caller-facing buffers.
struct QuerySlot<N: TrendNum> {
    id: u32,
    /// Source text; `None` for the primary query (constructed from an
    /// already-compiled plan). Registered queries always carry it — it is
    /// what WAL replay and snapshots recompile from.
    text: Option<String>,
    /// Plan + schemas, kept to rebuild shard engines during barrier
    /// migrations and resharded recovery.
    query: CompiledQuery,
    emission: EmissionMode,
    /// Index into the executor's route groups.
    group: u32,
    /// Rows ready for this query's caller: under unordered emission,
    /// whatever was drained off the result channel; under
    /// [`EmissionMode::WindowOrdered`], rows the merge released — in
    /// canonical order.
    pending: Vec<WindowResult<N>>,
    /// Cross-shard min-watermark merge; `Some` iff this query's emission
    /// mode is [`EmissionMode::WindowOrdered`].
    merge: Option<ResultMerge<N>>,
    /// Window-close boundary index already broadcast for this query
    /// (⌊(wm−within)/slide⌋).
    last_close_idx: Option<u64>,
    window_within: u64,
    window_slide: u64,
    /// Rows produced for the caller so far (drained + pending).
    rows: u64,
    /// False once deregistered (pending rows may still be polled).
    active: bool,
}

/// One routed event plane: queries whose `GROUP-BY` keys coincide share a
/// group, so classification, hashing, and framing are paid once for all of
/// them.
struct RouteGroup {
    routing: StreamRouting,
    /// Versioned group → shard overrides; empty = pure hash routing. Only
    /// group 0 (the primary's) is ever rebalanced.
    table: RoutingTable,
    /// Per-shard event frames not yet sent.
    batch_bufs: Vec<Vec<EventRef>>,
    /// Active queries routing through this group (0 = the group is
    /// dormant and skipped by the router).
    members: usize,
}

/// Per-query bring-up bundle handed to [`StreamExecutor::assemble`].
struct SlotInit<N: TrendNum> {
    id: u32,
    text: Option<String>,
    query: CompiledQuery,
    emission: EmissionMode,
    routing: StreamRouting,
    engines: Vec<GretaEngine<N>>,
}

/// Worker-side pairing of one hosted query with its engine.
struct EngineSlot<N: TrendNum> {
    query: u32,
    group: u32,
    ordered: bool,
    engine: GretaEngine<N>,
    /// Per-(query, shard) emission counter (rows are stamped with it).
    seq: u64,
    /// Last emission frontier sent for this slot.
    frontier: WindowId,
}

/// Everything [`StreamExecutor::recover`] restores from a snapshot blob
/// for one registered (non-primary) query.
struct ExtraParts<N: TrendNum> {
    id: u32,
    text: String,
    emission: EmissionMode,
    last_close_idx: Option<u64>,
    rows: u64,
    pending: Vec<WindowResult<N>>,
    merge: Option<ResultMerge<N>>,
    shard_states: Vec<Vec<u8>>,
}

/// Everything [`StreamExecutor::recover`] restores from a snapshot blob
/// besides the per-shard engine states.
struct SnapshotParts<N: TrendNum> {
    stats: ExecutorStats,
    max_occupancy: usize,
    last_close_idx: Option<u64>,
    late_windows: BTreeMap<WindowId, (u64, u64)>,
    table: RoutingTable,
    group_stats: GroupSketch,
    recent_events: GroupSketch,
    windows_since_rebalance: u64,
    reorder: ReorderBuffer,
    diverted: Vec<EventRef>,
    pending: Vec<WindowResult<N>>,
    merge: Option<ResultMerge<N>>,
    shard_states: Vec<Vec<u8>>,
    next_query_id: u32,
    query_epoch: u64,
    extras: Vec<ExtraParts<N>>,
}

/// Bumped to 5 with the multi-query registry: snapshots append the
/// registered-query section (id, source text, emission mode, result
/// buffers, per-shard engine blobs for every non-primary query) after a
/// byte-identical v4 primary section, and WAL records carry a tag byte
/// (event / register / deregister). Snapshots taken by older revisions
/// are rejected instead of being silently misread; see `ARCHITECTURE.md`
/// for the upgrade notes.
const SNAPSHOT_VERSION: u8 = 5;

/// The push-based, sharded, multi-query GRETA runtime. See the
/// [module docs](self).
///
/// Results are emitted per query as windows close. Rows drained by one
/// [`poll_results`](Self::poll_results) /
/// [`poll_results_of`](Self::poll_results_of) call arrive in per-shard
/// order but may interleave across shards; [`finish`](Self::finish)
/// returns the primary remainder sorted by `(window, group)`. Sorting the
/// concatenation of all drains yields byte-identical output for any shard
/// count — for every hosted query.
pub struct StreamExecutor<N: TrendNum = f64> {
    shards: usize,
    registry: SchemaRegistry,
    engine_config: EngineConfig,
    /// Hosted queries, ascending by id; index 0 is always the primary.
    /// Deregistered queries stay (inactive) so their ids are never reused
    /// and their drained rows stay pollable.
    queries: Vec<QuerySlot<N>>,
    /// Routed event planes; index 0 is the primary's. Queries whose
    /// routings coincide share an entry.
    groups: Vec<RouteGroup>,
    /// Next id [`register_query`](Self::register_query) hands out.
    next_query_id: u32,
    /// Bumped by every register/deregister barrier.
    query_epoch: u64,
    rebalance: Option<RebalanceConfig>,
    /// Per-group counters: events bumped at routing time when rebalancing
    /// is on, vertices filled from worker reports at `finish`. Bounded to
    /// the `group_stats_capacity` heaviest groups.
    group_stats: GroupSketch,
    /// Per-group events since the last skew check (taken and cleared by
    /// every check). The detector works on these interval counts, not the
    /// lifetime totals, so skew that emerges late in a long stream is
    /// seen immediately instead of being averaged away by history.
    recent_events: GroupSketch,
    /// Windows closed since the last skew check (cadence counter).
    windows_since_rebalance: u64,
    /// A skew check is owed; run after the current routing pass so a
    /// migration barrier never splits a reorder release batch.
    rebalance_due: bool,
    reorder: ReorderBuffer,
    late_policy: LatePolicy,
    senders: Vec<Sender<Msg<N>>>,
    results_rx: Receiver<OutMsg<N>>,
    workers: Vec<JoinHandle<Result<WorkerReport, EngineError>>>,
    diverted: Vec<EventRef>,
    stats: ExecutorStats,
    /// Reused scratch for reorder-buffer releases (no per-event alloc).
    release_scratch: Vec<EventRef>,
    batch_size: usize,
    /// Late drop/divert counts keyed by the event's latest window.
    late_windows: BTreeMap<WindowId, (u64, u64)>,
    max_occupancy: usize,
    durability: Option<DurabilityState>,
    /// Windows closed since the last checkpoint (cadence counter, driven
    /// by the primary query's window-close boundaries).
    windows_since_checkpoint: u64,
    /// A cadence checkpoint is owed; taken after the current routing pass
    /// so the snapshot cut never splits a reorder release batch.
    checkpoint_due: bool,
    finished: bool,
}
/// One decoded WAL record (tag-dispatched).
enum TailRec {
    Event(EventRef),
    Register {
        id: u32,
        emission: EmissionMode,
        text: String,
    },
    Deregister(u32),
}

fn encode_emission(e: EmissionMode) -> u8 {
    match e {
        EmissionMode::Unordered => 0,
        EmissionMode::WindowOrdered => 1,
    }
}

fn decode_emission(tag: u8) -> Result<EmissionMode, CodecError> {
    match tag {
        0 => Ok(EmissionMode::Unordered),
        1 => Ok(EmissionMode::WindowOrdered),
        t => Err(CodecError(format!("bad EmissionMode tag {t}"))),
    }
}

/// Borrowing twin of [`TailRec`] for the encode side: WAL appends encode
/// from live references, so the record view never owns its payload.
enum TailRecRef<'a> {
    Event(&'a Event),
    Register {
        id: u32,
        emission: EmissionMode,
        text: &'a str,
    },
    Deregister(u32),
}

/// Encode one WAL record into `buf` (cleared first). Symmetric with
/// [`decode_tail_record`]: same tag dispatch, same field order.
fn encode_tail_record(buf: &mut Vec<u8>, rec: TailRecRef<'_>) {
    buf.clear();
    match rec {
        TailRecRef::Event(e) => {
            buf.push(WAL_EVENT);
            e.encode(buf);
        }
        TailRecRef::Register { id, emission, text } => {
            buf.push(WAL_REGISTER);
            put_u32(buf, id);
            buf.push(encode_emission(emission));
            put_str(buf, text);
        }
        TailRecRef::Deregister(id) => {
            buf.push(WAL_DEREGISTER);
            put_u32(buf, id);
        }
    }
}

fn decode_tail_record(payload: &[u8]) -> Result<TailRec, CodecError> {
    let r = &mut Reader::new(payload);
    match r.u8()? {
        WAL_EVENT => Ok(TailRec::Event(Event::decode(r)?.into_ref())),
        WAL_REGISTER => {
            let id = r.u32()?;
            let emission = decode_emission(r.u8()?)?;
            let text = r.str()?.to_string();
            Ok(TailRec::Register { id, emission, text })
        }
        WAL_DEREGISTER => Ok(TailRec::Deregister(r.u32()?)),
        t => Err(CodecError(format!("bad WAL record tag {t}"))),
    }
}

impl<N: TrendNum> StreamExecutor<N> {
    /// Spawn the shard workers for the primary `query` under `config`.
    ///
    /// With [`ExecutorConfig::durability`] set, the directory must be
    /// fresh: reusing a directory that already holds a manifest or WAL
    /// records is refused so that state from a previous run is never
    /// silently overwritten — use [`recover`](Self::recover) (or point at
    /// a new directory) instead.
    pub fn new(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: ExecutorConfig,
    ) -> Result<Self, EngineError> {
        let (routing, shards) = Self::validated_routing(&query, &registry, &config)?;
        let durability = match &config.durability {
            None => None,
            Some(dcfg) => {
                if Manifest::load(&dcfg.dir)?.is_some() {
                    return Err(EngineError::Config(format!(
                        "durability dir {} already contains a manifest; \
                         use StreamExecutor::recover or a fresh directory",
                        dcfg.dir.display()
                    )));
                }
                let wal = Wal::open(&dcfg.dir, dcfg.segment_bytes, dcfg.fsync)?;
                if wal.next_index() > 0 {
                    return Err(EngineError::Config(format!(
                        "durability dir {} already contains WAL records; \
                         use StreamExecutor::recover or a fresh directory",
                        dcfg.dir.display()
                    )));
                }
                let snapshots = SnapshotStore::open(&dcfg.dir)?;
                Some(DurabilityState {
                    config: dcfg.clone(),
                    wal,
                    snapshots,
                    epoch: 0,
                    record_buf: Vec::new(),
                })
            }
        };
        let engines = (0..shards)
            .map(|_| GretaEngine::with_config(query.clone(), registry.clone(), config.engine))
            .collect::<Result<Vec<_>, _>>()?;
        let init = SlotInit {
            id: 0,
            text: None,
            query,
            emission: config.emission,
            routing,
            engines,
        };
        Self::assemble(registry, &config, vec![init], 1, 0, durability)
    }

    /// Restore an executor from the durability directory in
    /// `config.durability` and replay the WAL tail.
    ///
    /// `query` and `registry` must match the original run's primary query,
    /// but `config.shards` may differ from the checkpoint's: the
    /// snapshot's per-group engine state is then repartitioned onto the
    /// new shard count under a fresh routing epoch, so a stream can be
    /// recovered into a wider (or narrower) executor with byte-identical
    /// results. Every query registered at the time of the checkpoint is
    /// restored byte-identically from its recorded source text and engine
    /// state, and register/deregister records in the WAL tail are
    /// replayed in their original stream positions, so the recovered
    /// registry matches the pre-crash one exactly. The recovered executor
    /// continues the stream exactly where the WAL ends: rows for windows
    /// that closed after the last checkpoint are (re-)emitted through
    /// [`poll_results`](Self::poll_results)/[`finish`](Self::finish), rows
    /// for earlier windows are not repeated. If the process crashed before
    /// the first checkpoint, the whole WAL is replayed into fresh state. A
    /// torn final WAL frame (crash mid-append) is repaired; checksum
    /// corruption anywhere is a clean [`EngineError::Durability`].
    pub fn recover(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: ExecutorConfig,
    ) -> Result<Self, EngineError> {
        let dcfg = config.durability.clone().ok_or_else(|| {
            EngineError::Config("recover requires ExecutorConfig::durability".into())
        })?;
        // Opening the WAL first repairs a torn tail before replay.
        let wal = Wal::open(&dcfg.dir, dcfg.segment_bytes, dcfg.fsync)?;
        let snapshots = SnapshotStore::open(&dcfg.dir)?;
        let manifest = Manifest::load(&dcfg.dir)?;

        let (mut exec, replay_from) = match manifest {
            None => {
                // Crash before the first checkpoint: fresh state, full replay.
                let (routing, shards) = Self::validated_routing(&query, &registry, &config)?;
                let engines = (0..shards)
                    .map(|_| {
                        GretaEngine::with_config(query.clone(), registry.clone(), config.engine)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let durability = Some(DurabilityState {
                    config: dcfg.clone(),
                    wal,
                    snapshots,
                    epoch: 0,
                    record_buf: Vec::new(),
                });
                let init = SlotInit {
                    id: 0,
                    text: None,
                    query,
                    emission: config.emission,
                    routing,
                    engines,
                };
                (
                    Self::assemble(registry, &config, vec![init], 1, 0, durability)?,
                    0,
                )
            }
            Some(m) => {
                let (routing, expected) = Self::validated_routing(&query, &registry, &config)?;
                let old_shards = m.shards as usize;
                let blob = snapshots.read(m.epoch)?;
                let mut parts: SnapshotParts<N> =
                    Self::decode_snapshot(&blob, old_shards, &config)?;
                let resharded = expected != old_shards;
                if resharded {
                    // Resharded recovery: the old epoch's pinned assignment
                    // is meaningless for a different count, so routing
                    // restarts from the pure hash under a fresh epoch.
                    parts.table.reset_for_shards();
                }
                let primary_engines = if resharded {
                    GretaEngine::<N>::repartition_states(
                        &query,
                        &registry,
                        config.engine,
                        &parts.shard_states,
                        expected,
                        |g| routing.shard_of_group_key(g, expected),
                    )?
                } else {
                    parts
                        .shard_states
                        .iter()
                        .map(|bytes| {
                            GretaEngine::import_state(
                                query.clone(),
                                registry.clone(),
                                config.engine,
                                bytes,
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?
                };
                let mut inits = vec![SlotInit {
                    id: 0,
                    text: None,
                    query: query.clone(),
                    emission: config.emission,
                    routing,
                    engines: primary_engines,
                }];
                // Registered queries: recompile from the recorded text and
                // restore (or repartition) their per-shard engine states.
                type Restore<N> = (
                    u32,
                    Option<u64>,
                    u64,
                    Vec<WindowResult<N>>,
                    Option<ResultMerge<N>>,
                );
                let mut restores: Vec<Restore<N>> = Vec::new();
                for ex in std::mem::take(&mut parts.extras) {
                    let exq = CompiledQuery::parse(&ex.text, &registry).map_err(|e| {
                        EngineError::Config(format!(
                            "registered query {} failed to recompile: {e}",
                            ex.id
                        ))
                    })?;
                    let exr = StreamRouting::new(&exq, &registry);
                    exr.validate(&exq, &registry)?;
                    let engines = if resharded {
                        let exr = &exr;
                        GretaEngine::<N>::repartition_states(
                            &exq,
                            &registry,
                            config.engine,
                            &ex.shard_states,
                            expected,
                            |g| exr.shard_of_group_key(g, expected),
                        )?
                    } else {
                        ex.shard_states
                            .iter()
                            .map(|bytes| {
                                GretaEngine::import_state(
                                    exq.clone(),
                                    registry.clone(),
                                    config.engine,
                                    bytes,
                                )
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    };
                    restores.push((ex.id, ex.last_close_idx, ex.rows, ex.pending, ex.merge));
                    inits.push(SlotInit {
                        id: ex.id,
                        text: Some(ex.text),
                        query: exq,
                        emission: ex.emission,
                        routing: exr,
                        engines,
                    });
                }
                let durability = Some(DurabilityState {
                    config: dcfg.clone(),
                    wal,
                    snapshots,
                    epoch: m.epoch,
                    record_buf: Vec::new(),
                });
                let mut exec = Self::assemble(
                    registry,
                    &config,
                    inits,
                    parts.next_query_id,
                    parts.query_epoch,
                    durability,
                )?;
                exec.stats = parts.stats;
                if resharded {
                    // The old per-shard attribution is meaningless for the
                    // new count; restart the load picture.
                    exec.stats.events_per_shard = vec![0; expected];
                }
                exec.max_occupancy = parts.max_occupancy;
                exec.queries[0].last_close_idx = parts.last_close_idx;
                exec.late_windows = parts.late_windows;
                exec.groups[0].table = parts.table;
                exec.group_stats = parts.group_stats;
                exec.recent_events = parts.recent_events;
                exec.windows_since_rebalance = parts.windows_since_rebalance;
                exec.reorder = parts.reorder;
                exec.diverted = parts.diverted;
                exec.queries[0].pending = parts.pending;
                if let Some(mut merge) = parts.merge {
                    if resharded {
                        // Fresh workers report their own frontiers; the
                        // released watermark (and buffered rows) carry over
                        // so the ordered stream resumes without repeats.
                        merge.reset_for_shards(expected);
                    }
                    exec.queries[0].merge = Some(merge);
                }
                for (id, last_close_idx, rows, pending, merge) in restores {
                    let slot = exec
                        .queries
                        .iter_mut()
                        .find(|s| s.id == id)
                        .expect("assembled registered slot");
                    slot.last_close_idx = last_close_idx;
                    slot.rows = rows;
                    slot.pending = pending;
                    if let Some(mut m) = merge {
                        if resharded {
                            m.reset_for_shards(expected);
                        }
                        slot.merge = Some(m);
                    }
                }
                (exec, m.wal_index)
            }
        };

        // Replay the WAL tail through the normal ingest path (without
        // re-appending): events flow through reorder + routing, register /
        // deregister records re-run their barriers at the original stream
        // positions. A torn final frame was already repaired by open.
        let mut tail: Vec<TailRec> = Vec::new();
        let mut decode_err: Option<CodecError> = None;
        Wal::replay(
            &dcfg.dir,
            replay_from,
            TailPolicy::Tolerate,
            |_, payload| {
                if decode_err.is_some() {
                    return;
                }
                match decode_tail_record(payload) {
                    Ok(rec) => tail.push(rec),
                    Err(e) => decode_err = Some(e),
                }
            },
        )
        .map_err(EngineError::from)?;
        if let Some(e) = decode_err {
            return Err(e.into());
        }
        for rec in tail {
            match rec {
                TailRec::Event(e) => {
                    exec.stats.pushed += 1;
                    match exec.ingest(e) {
                        // Under LatePolicy::Error the original push() surfaced
                        // the Late error to the caller *after* logging the
                        // event, and the pipeline stayed usable — mirror that
                        // here so one logged-then-rejected record cannot
                        // poison recovery.
                        Err(EngineError::Late { .. }) => {}
                        other => other?,
                    }
                    if exec.rebalance_due {
                        exec.run_rebalance_check()?;
                    }
                    if exec.checkpoint_due {
                        exec.checkpoint()?;
                    }
                }
                TailRec::Register { id, emission, text } => {
                    let q = CompiledQuery::parse(&text, &exec.registry).map_err(|e| {
                        EngineError::Config(format!(
                            "registered query {id} failed to recompile: {e}"
                        ))
                    })?;
                    exec.apply_register(id, text, emission, q)?;
                }
                TailRec::Deregister(id) => {
                    // Rows the live run handed back at deregistration stay
                    // in the inactive slot's pending buffer — like every
                    // other post-checkpoint row, the caller re-reads them
                    // via poll_results_of.
                    exec.apply_deregister(id)?;
                }
            }
        }
        Ok(exec)
    }

    /// Routing construction + shard-count validation shared by `new` and
    /// `recover` (the returned routing is handed on to [`assemble`]).
    fn validated_routing(
        query: &CompiledQuery,
        registry: &SchemaRegistry,
        config: &ExecutorConfig,
    ) -> Result<(StreamRouting, usize), EngineError> {
        if config.shards == 0 {
            return Err(EngineError::Config("shards must be ≥ 1".into()));
        }
        let routing = StreamRouting::new(query, registry);
        routing.validate(query, registry)?;
        let shards = if query.group_by.is_empty() {
            1
        } else {
            config.shards
        };
        Ok((routing, shards))
    }

    /// Wire channels and spawn one worker per shard, each hosting one
    /// engine per query in `inits` (index 0 = the primary). Queries whose
    /// routings coincide are folded into shared route groups.
    fn assemble(
        registry: SchemaRegistry,
        config: &ExecutorConfig,
        inits: Vec<SlotInit<N>>,
        next_query_id: u32,
        query_epoch: u64,
        durability: Option<DurabilityState>,
    ) -> Result<Self, EngineError> {
        let shards = inits[0].engines.len();
        let (results_tx, results_rx) = channel::bounded(config.result_capacity.max(1));
        let mut groups: Vec<RouteGroup> = Vec::new();
        let mut slots: Vec<QuerySlot<N>> = Vec::with_capacity(inits.len());
        let mut per_shard: Vec<Vec<EngineSlot<N>>> = (0..shards).map(|_| Vec::new()).collect();
        for init in inits {
            let SlotInit {
                id,
                text,
                query,
                emission,
                routing,
                engines,
            } = init;
            debug_assert_eq!(engines.len(), shards);
            let g = match groups.iter().position(|g| g.routing.routes_like(&routing)) {
                Some(g) => {
                    groups[g].members += 1;
                    g
                }
                None => {
                    groups.push(RouteGroup {
                        routing,
                        table: RoutingTable::default(),
                        batch_bufs: (0..shards).map(|_| Vec::new()).collect(),
                        members: 1,
                    });
                    groups.len() - 1
                }
            };
            let ordered = emission == EmissionMode::WindowOrdered;
            for (shard, engine) in engines.into_iter().enumerate() {
                per_shard[shard].push(EngineSlot {
                    query: id,
                    group: g as u32,
                    ordered,
                    engine,
                    seq: 0,
                    frontier: 0,
                });
            }
            slots.push(QuerySlot {
                id,
                text,
                emission,
                group: g as u32,
                pending: Vec::new(),
                merge: ordered.then(|| ResultMerge::new(shards)),
                last_close_idx: None,
                window_within: query.window.within,
                window_slide: query.window.slide,
                rows: 0,
                active: true,
                query,
            });
        }
        let export_final = durability.is_some();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, engine_slots) in per_shard.into_iter().enumerate() {
            let (tx, rx) = channel::bounded::<Msg<N>>(config.channel_capacity.max(1));
            senders.push(tx);
            let results_tx = results_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("greta-shard-{shard}"))
                    .spawn(move || {
                        worker_loop::<N>(engine_slots, shard, rx, results_tx, export_final)
                    })
                    .map_err(|e| EngineError::Worker(e.to_string()))?,
            );
        }
        drop(results_tx); // workers hold the only senders now
        Ok(StreamExecutor {
            shards,
            registry,
            engine_config: config.engine,
            queries: slots,
            groups,
            next_query_id,
            query_epoch,
            rebalance: config.rebalance,
            group_stats: GroupSketch::new(config.group_stats_capacity),
            recent_events: GroupSketch::new(config.group_stats_capacity),
            windows_since_rebalance: 0,
            rebalance_due: false,
            reorder: ReorderBuffer::new(config.slack),
            late_policy: config.late_policy,
            senders,
            results_rx,
            workers,
            diverted: Vec::new(),
            stats: ExecutorStats {
                events_per_shard: vec![0; shards],
                ..Default::default()
            },
            release_scratch: Vec::new(),
            batch_size: config.batch_size.max(1),
            late_windows: BTreeMap::new(),
            max_occupancy: 0,
            durability,
            windows_since_checkpoint: 0,
            checkpoint_due: false,
            finished: false,
        })
    }

    /// Number of shard workers actually running.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Version of the group → shard routing table: 0 while the static hash
    /// assignment is in effect, bumped by every barrier migration (and by a
    /// resharded recovery).
    pub fn routing_epoch(&self) -> u64 {
        self.groups[0].table.epoch()
    }

    /// Version of the query registry: bumped by every successful
    /// [`register_query`](Self::register_query) /
    /// [`deregister_query`](Self::deregister_query) barrier (0 = only the
    /// primary query has ever been hosted).
    pub fn query_epoch(&self) -> u64 {
        self.query_epoch
    }

    /// Ids of the currently active queries, ascending ([`QueryId::PRIMARY`]
    /// first).
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries
            .iter()
            .filter(|s| s.active)
            .map(|s| QueryId(s.id))
            .collect()
    }

    /// Source text of a registered query (`None` for
    /// [`QueryId::PRIMARY`], which was constructed from an
    /// already-compiled plan, and for unknown ids).
    pub fn query_text(&self, id: QueryId) -> Option<&str> {
        self.queries
            .iter()
            .find(|s| s.id == id.0)
            .and_then(|s| s.text.as_deref())
    }

    fn slot(&self, id: u32) -> Option<&QuerySlot<N>> {
        self.queries.iter().find(|s| s.id == id)
    }

    fn slot_mut(&mut self, id: u32) -> Option<&mut QuerySlot<N>> {
        self.queries.iter_mut().find(|s| s.id == id)
    }

    /// Register another query on this executor's ingest plane at runtime.
    ///
    /// The query is compiled from `text` against the executor's schema
    /// registry and validated first — an invalid query is rejected before
    /// anything is logged or installed. It then joins via a barrier (the
    /// same machinery as rebalancing): buffered frames are flushed, every
    /// shard installs a fresh engine for the query under a bumped
    /// [`query_epoch`](Self::query_epoch), and FIFO channels guarantee the
    /// new engines see exactly the events released after the cut — so the
    /// query's results are byte-identical to a standalone single-query run
    /// over the same event suffix, at any shard count. If its `GROUP-BY`
    /// key plane coincides with an already-hosted query's, the two share
    /// one route group (the event is classified and hashed once for both).
    /// With durability on, the registration is WAL-logged so
    /// [`recover`](Self::recover) re-runs it at the same stream position.
    ///
    /// Results are drained per query:
    /// [`poll_results_of`](Self::poll_results_of) with the returned id.
    ///
    /// ```
    /// use greta_core::{EmissionMode, ExecutorConfig, QueryId, StreamExecutor};
    /// use greta_query::CompiledQuery;
    /// use greta_types::{EventBuilder, SchemaRegistry, Time};
    ///
    /// let mut reg = SchemaRegistry::new();
    /// reg.register_type("M", &["grp", "load"]).unwrap();
    /// let count_q = "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
    ///                GROUP-BY grp WITHIN 100 SLIDE 50";
    /// let q = CompiledQuery::parse(count_q, &reg).unwrap();
    /// let mut exec = StreamExecutor::<u64>::new(
    ///     q,
    ///     reg.clone(),
    ///     ExecutorConfig { shards: 2, ..Default::default() },
    /// )
    /// .unwrap();
    ///
    /// // A second query joins the shared ingest plane at runtime: same
    /// // GROUP-BY key, so routing is shared; different window shape.
    /// let id = exec
    ///     .register_query(
    ///         "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
    ///          GROUP-BY grp WITHIN 50 SLIDE 50",
    ///         EmissionMode::Unordered,
    ///     )
    ///     .unwrap();
    /// assert_eq!(id, QueryId(1));
    ///
    /// for t in 0..200u64 {
    ///     let e = EventBuilder::new(&reg, "M")
    ///         .unwrap()
    ///         .at(Time(t))
    ///         .set("grp", (t % 3) as i64)
    ///         .unwrap()
    ///         .set("load", ((t * 31) % 17) as f64)
    ///         .unwrap()
    ///         .build();
    ///     exec.push(e).unwrap();
    /// }
    /// let primary_rows = exec.finish().unwrap();
    /// let count_rows = exec.poll_results_of(id).unwrap();
    /// assert!(!primary_rows.is_empty());
    /// assert!(!count_rows.is_empty());
    /// ```
    pub fn register_query(
        &mut self,
        text: &str,
        emission: EmissionMode,
    ) -> Result<QueryId, EngineError> {
        if self.finished {
            return Err(EngineError::Config(
                "register_query after finish() on StreamExecutor".into(),
            ));
        }
        let query = CompiledQuery::parse(text, &self.registry)
            .map_err(|e| EngineError::Config(format!("query error: {e}")))?;
        // Validate before WAL-logging: an invalid registration must never
        // enter the log (replay would fail at the same spot forever).
        let probe = StreamRouting::new(&query, &self.registry);
        probe.validate(&query, &self.registry)?;
        let id = self.next_query_id;
        if let Some(d) = &mut self.durability {
            encode_tail_record(
                &mut d.record_buf,
                TailRecRef::Register { id, emission, text },
            );
            d.wal.append(&d.record_buf).map_err(EngineError::from)?;
        }
        self.apply_register(id, text.to_string(), emission, query)?;
        Ok(QueryId(id))
    }

    /// Install a registered query (shared by `register_query` and WAL
    /// replay — the latter must not re-append to the log).
    fn apply_register(
        &mut self,
        id: u32,
        text: String,
        emission: EmissionMode,
        query: CompiledQuery,
    ) -> Result<(), EngineError> {
        let routing = StreamRouting::new(&query, &self.registry);
        routing.validate(&query, &self.registry)?;
        let group = match self
            .groups
            .iter()
            .position(|g| g.routing.routes_like(&routing))
        {
            Some(g) => {
                self.groups[g].members += 1;
                g
            }
            None => {
                self.groups.push(RouteGroup {
                    routing,
                    table: RoutingTable::default(),
                    batch_bufs: (0..self.shards).map(|_| Vec::new()).collect(),
                    members: 1,
                });
                self.groups.len() - 1
            }
        };
        let ordered = emission == EmissionMode::WindowOrdered;
        let engines = (0..self.shards)
            .map(|_| {
                GretaEngine::with_config(query.clone(), self.registry.clone(), self.engine_config)
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The registration cut: frames buffered before this point must
        // reach the old engines only, so flush them ahead of the AddQuery
        // barrier (FIFO channels then order everything after it behind
        // the new engine's install).
        self.flush_all_batches()?;
        let (ack_tx, ack_rx) = channel::bounded::<usize>(self.shards);
        for (i, engine) in engines.into_iter().enumerate() {
            self.send(
                i,
                Msg::AddQuery {
                    query: id,
                    group: group as u32,
                    ordered,
                    engine: Box::new(engine),
                    ack: ack_tx.clone(),
                },
            )?;
        }
        drop(ack_tx);
        self.await_acks(&ack_rx)?;
        self.queries.push(QuerySlot {
            id,
            text: Some(text),
            emission,
            group: group as u32,
            pending: Vec::new(),
            merge: ordered.then(|| ResultMerge::new(self.shards)),
            last_close_idx: None,
            window_within: query.window.within,
            window_slide: query.window.slide,
            rows: 0,
            active: true,
            query,
        });
        self.next_query_id = self.next_query_id.max(id + 1);
        self.query_epoch += 1;
        Ok(())
    }

    /// Remove a registered query from the executor and return its
    /// remaining rows.
    ///
    /// The removal is a barrier: buffered frames are flushed, every shard
    /// finishes the query's engine (closing its open windows and emitting
    /// their rows), and the registry drops the query under a bumped
    /// [`query_epoch`](Self::query_epoch). The returned rows are the
    /// query's not-yet-polled remainder in canonical `(window, group)`
    /// order — together with everything previously drained via
    /// [`poll_results_of`](Self::poll_results_of) they are byte-identical
    /// to a standalone run of the query over the same events, ended at the
    /// deregistration point. The primary query cannot be deregistered
    /// (use [`finish`](Self::finish) to stop the stream). With durability
    /// on, the removal is WAL-logged so [`recover`](Self::recover)
    /// re-runs it at the same stream position.
    ///
    /// ```
    /// use greta_core::{EmissionMode, ExecutorConfig, QueryId, StreamExecutor};
    /// use greta_query::CompiledQuery;
    /// use greta_types::{EventBuilder, SchemaRegistry, Time};
    ///
    /// let mut reg = SchemaRegistry::new();
    /// reg.register_type("M", &["grp", "load"]).unwrap();
    /// let text = "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
    ///             GROUP-BY grp WITHIN 100 SLIDE 50";
    /// let q = CompiledQuery::parse(text, &reg).unwrap();
    /// let mut exec = StreamExecutor::<u64>::new(
    ///     q,
    ///     reg.clone(),
    ///     ExecutorConfig { shards: 2, ..Default::default() },
    /// )
    /// .unwrap();
    /// let id = exec.register_query(text, EmissionMode::Unordered).unwrap();
    /// for t in 0..120u64 {
    ///     let e = EventBuilder::new(&reg, "M")
    ///         .unwrap()
    ///         .at(Time(t))
    ///         .set("grp", (t % 3) as i64)
    ///         .unwrap()
    ///         .set("load", ((t * 31) % 17) as f64)
    ///         .unwrap()
    ///         .build();
    ///     exec.push(e).unwrap();
    /// }
    /// // Mid-stream removal: open windows close, remaining rows come back.
    /// let rows = exec.deregister_query(id).unwrap();
    /// assert!(!rows.is_empty());
    /// assert!(!exec.query_ids().contains(&id));
    /// exec.finish().unwrap();
    /// ```
    pub fn deregister_query(&mut self, id: QueryId) -> Result<Vec<WindowResult<N>>, EngineError> {
        if self.finished {
            return Err(EngineError::Config(
                "deregister_query after finish() on StreamExecutor".into(),
            ));
        }
        if id == QueryId::PRIMARY {
            return Err(EngineError::Config(
                "the primary query cannot be deregistered; finish() the executor instead".into(),
            ));
        }
        match self.slot(id.0) {
            None => {
                return Err(EngineError::Config(format!("unknown query {id}")));
            }
            Some(s) if !s.active => {
                return Err(EngineError::Config(format!(
                    "query {id} is already deregistered"
                )));
            }
            Some(_) => {}
        }
        if let Some(d) = &mut self.durability {
            encode_tail_record(&mut d.record_buf, TailRecRef::Deregister(id.0));
            d.wal.append(&d.record_buf).map_err(EngineError::from)?;
        }
        self.apply_deregister(id.0)?;
        let slot = self.slot_mut(id.0).expect("slot checked above");
        Ok(std::mem::take(&mut slot.pending))
    }

    /// Tear down a registered query (shared by `deregister_query` and WAL
    /// replay). The slot stays, inactive, with its remaining rows in
    /// `pending` — canonical order either way (the ordered merge releases
    /// canonically; unordered remainders are sorted here).
    fn apply_deregister(&mut self, id: u32) -> Result<(), EngineError> {
        {
            let Some(slot) = self.slot(id) else {
                return Err(EngineError::Config(format!("unknown query q{id}")));
            };
            if !slot.active || id == 0 {
                return Err(EngineError::Config(format!(
                    "query q{id} cannot be deregistered"
                )));
            }
        }
        // Flush so every event released before the cut reaches the
        // query's engines before they are finished.
        self.flush_all_batches()?;
        let (ack_tx, ack_rx) = channel::bounded::<usize>(self.shards);
        for i in 0..self.senders.len() {
            self.send(
                i,
                Msg::RemoveQuery {
                    query: id,
                    ack: ack_tx.clone(),
                },
            )?;
        }
        drop(ack_tx);
        self.await_acks(&ack_rx)?;
        // Every shard acked after emitting its final rows; pull them in.
        self.drain_ready();
        let slot = self.slot_mut(id).expect("slot checked above");
        slot.active = false;
        if let Some(mut m) = slot.merge.take() {
            let before = slot.pending.len();
            m.close(&mut slot.pending);
            slot.rows += (slot.pending.len() - before) as u64;
        } else {
            sort_canonical(&mut slot.pending);
        }
        let group = slot.group as usize;
        self.groups[group].members -= 1;
        self.query_epoch += 1;
        Ok(())
    }

    /// Wait for one ack per shard, draining the result channel while
    /// blocked (workers may be mid-emission; parking without draining
    /// would deadlock the pipeline).
    fn await_acks(&mut self, rx: &Receiver<usize>) -> Result<(), EngineError> {
        let mut got = 0usize;
        while got < self.shards {
            match rx.try_recv() {
                Ok(_) => got += 1,
                Err(TryRecvError::Empty) => {
                    if !self.drain_ready() {
                        std::thread::yield_now();
                    }
                }
                Err(TryRecvError::Disconnected) => return Err(self.reap_after_failure()),
            }
        }
        Ok(())
    }

    /// Offer one event. Events may arrive out of order within the
    /// configured slack; beyond it the [`LatePolicy`] applies. With
    /// durability on, the event is WAL-logged before anything else — once,
    /// no matter how many queries are registered. When a shard's input
    /// queue is full, the call drains ready results into the per-query
    /// buffers while it waits (so a caller that never polls cannot
    /// deadlock the pipeline) and returns once the event is queued.
    pub fn push(&mut self, e: Event) -> Result<(), EngineError> {
        self.push_ref(e.into_ref())
    }

    /// [`push`](Self::push) without the allocation: the caller hands over a
    /// shared event, and the executor never copies the payload again — the
    /// reorder buffer, shard frames, broadcast fan-out, and graph vertices
    /// all hold clones of this `Arc`.
    pub fn push_ref(&mut self, e: EventRef) -> Result<(), EngineError> {
        if self.finished {
            return Err(EngineError::Config(
                "push after finish() on StreamExecutor".into(),
            ));
        }
        if let Some(d) = &mut self.durability {
            encode_tail_record(&mut d.record_buf, TailRecRef::Event(&e));
            d.wal.append(&d.record_buf).map_err(EngineError::from)?;
        }
        self.stats.pushed += 1;
        self.ingest(e)?;
        if self.rebalance_due {
            // Before a due checkpoint, so the checkpoint records the
            // post-migration table and state.
            self.run_rebalance_check()?;
        }
        if self.checkpoint_due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Reorder + route one event (shared by `push` and WAL replay).
    fn ingest(&mut self, e: EventRef) -> Result<(), EngineError> {
        let mut released = std::mem::take(&mut self.release_scratch);
        match self.reorder.push_into(e, &mut released) {
            Ok(()) => {
                let r = self.route_all(&mut released);
                released.clear();
                self.release_scratch = released;
                r
            }
            Err(late) => {
                self.release_scratch = released;
                let slide = self.queries[0].window_slide.max(1);
                let wid = late.time.ticks() / slide;
                let slot = self.late_windows.entry(wid).or_default();
                match self.late_policy {
                    LatePolicy::Drop => {
                        self.stats.late_dropped += 1;
                        slot.0 += 1;
                    }
                    LatePolicy::Divert => {
                        self.stats.late_diverted += 1;
                        slot.1 += 1;
                        self.diverted.push(late);
                    }
                    LatePolicy::Error => {
                        return Err(EngineError::Late {
                            slack: self.reorder.slack(),
                            watermark: self.reorder.watermark().map(Time::ticks).unwrap_or(0),
                            got: late.time.ticks(),
                        })
                    }
                }
                Ok(())
            }
        }
    }

    /// Absorb one worker message into the owning query's buffers: under
    /// unordered emission rows go straight to that query's ready buffer
    /// (frontier stamps are dropped); under
    /// [`EmissionMode::WindowOrdered`] rows park in the query's merge and
    /// frontier advances release complete windows into its ready buffer in
    /// canonical order.
    fn absorb(&mut self, msg: OutMsg<N>) {
        match msg {
            OutMsg::Row {
                query,
                shard,
                seq,
                row,
            } => {
                let Some(slot) = self.queries.iter_mut().find(|s| s.id == query) else {
                    return;
                };
                match &mut slot.merge {
                    None => {
                        slot.pending.push(row);
                        slot.rows += 1;
                    }
                    Some(m) => m.offer(shard as usize, seq, row),
                }
            }
            OutMsg::Frontier {
                query,
                shard,
                next_window,
            } => {
                let Some(slot) = self.queries.iter_mut().find(|s| s.id == query) else {
                    return;
                };
                if let Some(m) = &mut slot.merge {
                    let before = slot.pending.len();
                    m.advance(shard as usize, next_window, &mut slot.pending);
                    slot.rows += (slot.pending.len() - before) as u64;
                }
            }
        }
    }

    /// Drain the result channel without blocking; true if anything came.
    fn drain_ready(&mut self) -> bool {
        let mut any = false;
        while let Ok(msg) = self.results_rx.try_recv() {
            self.absorb(msg);
            any = true;
        }
        any
    }

    /// Drain every result row the *primary* query emitted so far, without
    /// blocking. Windows are emitted as the watermark passes their end, so
    /// results stream while events are still being pushed. Under
    /// [`EmissionMode::WindowOrdered`] the drained rows are
    /// window-monotone in canonical `(window, group)` order, across calls:
    /// concatenating every drain with the [`finish`](Self::finish)
    /// remainder reproduces the sorted unordered output byte for byte.
    /// Registered queries are drained separately via
    /// [`poll_results_of`](Self::poll_results_of).
    pub fn poll_results(&mut self) -> Vec<WindowResult<N>> {
        self.drain_ready();
        std::mem::take(&mut self.queries[0].pending)
    }

    /// Drain every result row query `id` emitted so far, without blocking
    /// ([`poll_results`](Self::poll_results) scoped to one query;
    /// `poll_results_of(QueryId::PRIMARY)` is equivalent to it). Rows of a
    /// deregistered query remain pollable here — including after
    /// [`recover`](Self::recover) replayed the deregistration. Errors on
    /// an id this executor never hosted.
    pub fn poll_results_of(&mut self, id: QueryId) -> Result<Vec<WindowResult<N>>, EngineError> {
        self.drain_ready();
        let slot = self
            .queries
            .iter_mut()
            .find(|s| s.id == id.0)
            .ok_or_else(|| EngineError::Config(format!("unknown query {id}")))?;
        Ok(std::mem::take(&mut slot.pending))
    }

    /// The released watermark of query `id`'s ordered merge: the smallest
    /// emission frontier across its shard engines. Windows strictly below
    /// it have been fully released in canonical order — everything below
    /// is final, which is exactly the progress signal a cascaded
    /// downstream executor (or any exactly-once sink) needs before it
    /// consumes the query's output as its own input. See
    /// `examples/cascade.rs` for the wiring. Errors unless the query runs
    /// under [`EmissionMode::WindowOrdered`].
    ///
    /// ```
    /// use greta_core::{EmissionMode, ExecutorConfig, QueryId, StreamExecutor};
    /// use greta_query::CompiledQuery;
    /// use greta_types::{EventBuilder, SchemaRegistry, Time};
    ///
    /// let mut reg = SchemaRegistry::new();
    /// reg.register_type("M", &["grp", "load"]).unwrap();
    /// let q = CompiledQuery::parse(
    ///     "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
    ///      GROUP-BY grp WITHIN 100 SLIDE 50",
    ///     &reg,
    /// )
    /// .unwrap();
    /// let mut exec = StreamExecutor::<u64>::new(
    ///     q,
    ///     reg.clone(),
    ///     ExecutorConfig {
    ///         shards: 2,
    ///         emission: EmissionMode::WindowOrdered,
    ///         ..Default::default()
    ///     },
    /// )
    /// .unwrap();
    /// for t in 0..300u64 {
    ///     let e = EventBuilder::new(&reg, "M")
    ///         .unwrap()
    ///         .at(Time(t))
    ///         .set("grp", (t % 3) as i64)
    ///         .unwrap()
    ///         .set("load", ((t * 31) % 17) as f64)
    ///         .unwrap()
    ///         .build();
    ///     exec.push(e).unwrap();
    /// }
    /// // Frontier stamps travel on the result channel; poll until the
    /// // workers' watermark round trip lands. Every window below the
    /// // frontier is final: safe to hand to a downstream executor.
    /// let mut frontier = exec.min_frontier(QueryId::PRIMARY).unwrap();
    /// while frontier == 0 {
    ///     let _rows = exec.poll_results();
    ///     frontier = exec.min_frontier(QueryId::PRIMARY).unwrap();
    /// }
    /// exec.finish().unwrap();
    /// ```
    pub fn min_frontier(&self, id: QueryId) -> Result<WindowId, EngineError> {
        let slot = self
            .slot(id.0)
            .ok_or_else(|| EngineError::Config(format!("unknown query {id}")))?;
        match &slot.merge {
            Some(m) => Ok(m.min_frontier()),
            None => Err(EngineError::Config(format!(
                "min_frontier requires EmissionMode::WindowOrdered (query {id} is unordered)"
            ))),
        }
    }

    /// End of stream: flush the reorder buffer, close all remaining
    /// windows of every hosted query, take a final checkpoint (durability
    /// on), join the workers, and return the *primary* query's remaining
    /// rows in canonical `(window, group)` order (registered queries'
    /// remainders stay pollable via
    /// [`poll_results_of`](Self::poll_results_of)). Also finalizes
    /// [`stats`](Self::stats). Idempotent. Equivalent to
    /// [`drain`](Self::drain) — this is the historical name.
    pub fn finish(&mut self) -> Result<Vec<WindowResult<N>>, EngineError> {
        self.drain()
    }

    /// Graceful stop, the serving-layer entry point: stop accepting input,
    /// flush the reorder buffer, close all remaining windows of every
    /// hosted query (flushing each ordered merge), take a terminal
    /// checkpoint (durability on), join the workers, and return the
    /// primary query's remaining rows in canonical `(window, group)` order
    /// — without consuming `self`, so a server can still read
    /// [`stats`](Self::stats), [`take_diverted`](Self::take_diverted),
    /// and every registered query's remainder
    /// ([`poll_results_of`](Self::poll_results_of)) afterwards.
    /// Idempotent; byte-identical to [`finish`](Self::finish).
    ///
    /// With durability on, the terminal checkpoint is taken *after* every
    /// window closed: [`recover`](Self::recover) from the same directory
    /// resumes with the full history in its counters and nothing to
    /// re-emit (regression-tested).
    ///
    /// Under [`EmissionMode::WindowOrdered`] the remainder comes straight
    /// off the merge — already ordered, nothing to sort (the fast path);
    /// under [`EmissionMode::Unordered`] the remainder is sorted here.
    pub fn drain(&mut self) -> Result<Vec<WindowResult<N>>, EngineError> {
        if self.finished {
            return Ok(Vec::new());
        }
        let mut tail = self.reorder.flush();
        let route_result = self
            .route_all(&mut tail)
            .and_then(|()| self.flush_all_batches());
        self.finished = true;
        // Close the input channels regardless, so workers always terminate.
        self.senders.clear();
        for g in &mut self.groups {
            g.batch_bufs.clear();
        }
        // Drain concurrently with the workers' final flush: recv() ends
        // when every worker has dropped its result sender.
        while let Ok(msg) = self.results_rx.recv() {
            self.absorb(msg);
        }
        for slot in &mut self.queries {
            if let Some(m) = &mut slot.merge {
                // Every worker terminated: no window can receive further
                // rows for any query.
                let before = slot.pending.len();
                m.close(&mut slot.pending);
                slot.rows += (slot.pending.len() - before) as u64;
            }
        }
        let mut rows = std::mem::take(&mut self.queries[0].pending);
        let primary_ordered = self.queries[0].merge.is_some();
        let mut first_err = route_result.err();
        let mut final_states: Vec<Option<QueryBlobs>> = Vec::with_capacity(self.workers.len());
        for w in self.workers.drain(..) {
            match w.join() {
                Ok(Ok(report)) => {
                    let s = &mut self.stats.engine;
                    s.events += report.stats.events;
                    s.vertices += report.stats.vertices;
                    s.edges += report.stats.edges;
                    s.results += report.stats.results;
                    self.stats.peak_memory_bytes += report.peak_bytes;
                    for (group, vertices) in report.group_vertices {
                        self.group_stats.add_vertices(&group, vertices);
                    }
                    final_states.push(report.final_states);
                }
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or(Some(EngineError::Worker("shard worker panicked".into())))
                }
            }
        }
        // Canonicalize registered queries' unordered remainders so
        // post-finish poll_results_of (and the terminal snapshot) are
        // deterministic.
        for slot in self.queries.iter_mut().skip(1) {
            if slot.merge.is_none() {
                sort_canonical(&mut slot.pending);
            }
        }
        if first_err.is_none() && self.durability.is_some() {
            // Terminal checkpoint *after* the workers closed every window:
            // a graceful shutdown leaves a truncated log and a snapshot
            // from which recovery resumes with nothing to re-emit.
            let per_shard: Vec<Vec<(u32, Vec<u8>)>> = final_states.into_iter().flatten().collect();
            if per_shard.len() == self.shards {
                first_err = self.persist_snapshot(&per_shard).err();
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if !primary_ordered {
            sort_canonical(&mut rows);
        } else {
            debug_assert!(
                rows.windows(2)
                    .all(|w| w[0].order_key() <= w[1].order_key()),
                "ordered emission produced an out-of-order finish remainder"
            );
        }
        Ok(rows)
    }

    /// Executor counters. Engine aggregates and peak memory are only
    /// populated once [`finish`](Self::finish) has run; channel occupancy
    /// is sampled at the moment of the call. Per-query stream counters are
    /// in [`ExecutorStats::queries`].
    pub fn stats(&self) -> ExecutorStats {
        let mut s = self.stats.clone();
        s.routing_epoch = self.groups[0].table.epoch();
        s.query_epoch = self.query_epoch;
        s.group_stats = self.group_stats.top_sorted();
        s.late_by_window = self
            .late_windows
            .iter()
            .map(|(&window, &(dropped, diverted))| WindowLateCounts {
                window,
                dropped,
                diverted,
            })
            .collect();
        s.channel_occupancy = self.senders.iter().map(Sender::len).collect();
        s.max_channel_occupancy = self.max_occupancy;
        s.result_occupancy = self.results_rx.len();
        if let Some(m) = &self.queries[0].merge {
            s.merge_released_to = m.released_to();
            let frontiers = m.frontiers();
            let max = frontiers.iter().copied().max().unwrap_or(0);
            s.merge_frontier_lag = frontiers.iter().map(|&f| max - f).collect();
            s.merge_buffered_rows = m.buffered_rows();
        }
        s.queries = self
            .queries
            .iter()
            .map(|slot| QueryStreamStats {
                id: QueryId(slot.id),
                rows: slot.rows,
                pending_rows: slot.pending.len(),
                released_to: slot
                    .merge
                    .as_ref()
                    .map(ResultMerge::released_to)
                    .unwrap_or(0),
                min_frontier: slot
                    .merge
                    .as_ref()
                    .map(ResultMerge::min_frontier)
                    .unwrap_or(0),
                shares_primary_routing: slot.group == 0,
                active: slot.active,
            })
            .collect();
        s
    }

    /// Highest time stamp released from the reorder buffer so far (the
    /// ingest watermark): any event pushed with a smaller stamp is late.
    /// `None` until the first release.
    pub fn watermark(&self) -> Option<Time> {
        self.reorder.watermark()
    }

    /// Whether this executor runs with a write-ahead log
    /// ([`ExecutorConfig::durability`]): when true, every event accepted
    /// by [`push`](Self::push) was appended to the WAL before routing.
    pub fn durability_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Number of records appended to the WAL so far (events plus
    /// register/deregister records). Appended is not yet durable under
    /// [`greta_durability::FsyncPolicy`]s that buffer between syncs — use
    /// [`sync_wal`](Self::sync_wal) for the watermark an ingest
    /// acknowledgement can carry. `None` without durability.
    pub fn durable_index(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.next_index())
    }

    /// Flush and fsync the WAL, then return the durable record index:
    /// every event whose `push` returned before the call is now
    /// recoverable by [`recover`](Self::recover) regardless of the
    /// configured [`greta_durability::FsyncPolicy`]. This is the
    /// group-commit point a
    /// server acknowledges a batch at. `Ok(None)` without durability.
    pub fn sync_wal(&mut self) -> Result<Option<u64>, EngineError> {
        match self.durability.as_mut() {
            None => Ok(None),
            Some(d) => {
                d.wal.sync().map_err(EngineError::from)?;
                Ok(Some(d.wal.next_index()))
            }
        }
    }

    /// Take the events diverted under [`LatePolicy::Divert`] so far.
    pub fn take_diverted(&mut self) -> Vec<EventRef> {
        std::mem::take(&mut self.diverted)
    }

    /// Shard owning the event's group in route group `g` under the current
    /// routing epoch (`None` = broadcast). For the primary group with
    /// rebalancing on, also bumps the group's event counter — the skew
    /// detector's signal. Every path works off the event's routing hash:
    /// no group key is materialized per event (only once, when a group is
    /// first tracked by the sketch).
    fn group_dest_shard(&mut self, g: usize, e: &EventRef) -> Option<usize> {
        if self.groups[g].routing.is_broadcast(e.type_id) {
            return None;
        }
        if (g != 0 || self.rebalance.is_none()) && self.groups[g].table.is_empty() {
            // Static-assignment fast path: hash straight off the event.
            return self.groups[g].routing.shard_of(e, self.shards);
        }
        let h = self.groups[g].routing.group_hash(e);
        let shard = self.groups[g]
            .table
            .shard_for_hash(h)
            .unwrap_or_else(|| shard_of_hash(h, self.shards));
        if g == 0 && self.rebalance.is_some() {
            let routing = &self.groups[g].routing;
            self.recent_events.bump_events(h, || routing.group_key(e));
            self.group_stats.bump_events(h, || routing.group_key(e));
        }
        Some(shard)
    }

    /// Frame one released event for route group `g` (all of the group's
    /// member queries see the same frame).
    // lint:hot-path
    fn route_to_group(&mut self, g: usize, e: &EventRef) -> Result<(), EngineError> {
        match self.group_dest_shard(g, e) {
            None => {
                if g == 0 {
                    self.stats.broadcasts += 1;
                }
                for i in 0..self.shards {
                    if g == 0 {
                        self.stats.events_per_shard[i] += 1;
                    }
                    // lint:allow(hot-path): EventRef is an Arc — clone() is a refcount bump, not a payload copy
                    self.groups[g].batch_bufs[i].push(e.clone());
                    if self.groups[g].batch_bufs[i].len() >= self.batch_size {
                        self.flush_group_shard(g, i)?;
                    }
                }
            }
            Some(shard) => {
                if g == 0 {
                    self.stats.events_per_shard[shard] += 1;
                }
                // lint:allow(hot-path): EventRef is an Arc — clone() is a refcount bump, not a payload copy
                self.groups[g].batch_bufs[shard].push(e.clone());
                if self.groups[g].batch_bufs[shard].len() >= self.batch_size {
                    self.flush_group_shard(g, shard)?;
                }
            }
        }
        Ok(())
    }

    // lint:hot-path
    fn route_all(&mut self, released: &mut Vec<EventRef>) -> Result<(), EngineError> {
        for ev in released.iter() {
            self.stats.released += 1;
            let wm = ev.time;
            for g in 0..self.groups.len() {
                if self.groups[g].members == 0 {
                    continue;
                }
                self.route_to_group(g, ev)?;
            }
            self.note_watermark(wm)?;
        }
        released.clear();
        Ok(())
    }

    /// React to the released watermark reaching `wm`: if it crossed any
    /// hosted query's window-close boundary since the last broadcast,
    /// flush every buffered frame (the watermark must not overtake its
    /// events) and broadcast the watermark — shards that received no
    /// recent events still close their windows, for every query. The
    /// *primary* query's closed windows drive the checkpoint and
    /// rebalance cadences (single-query behaviour is unchanged byte for
    /// byte).
    // lint:hot-path
    fn note_watermark(&mut self, wm: Time) -> Result<(), EngineError> {
        let t = wm.ticks();
        let mut any_closed = false;
        let mut primary_closed = 0u64;
        for slot in &mut self.queries {
            if !slot.active || t < slot.window_within {
                continue;
            }
            let close_idx = (t - slot.window_within) / slot.window_slide.max(1);
            if slot.last_close_idx == Some(close_idx) {
                continue;
            }
            let closed = match slot.last_close_idx {
                Some(prev) => close_idx - prev,
                None => close_idx + 1,
            };
            slot.last_close_idx = Some(close_idx);
            any_closed = true;
            if slot.id == 0 {
                primary_closed = closed;
            }
        }
        if !any_closed {
            return Ok(());
        }
        self.stats.watermarks += 1;
        self.flush_all_batches()?;
        for i in 0..self.senders.len() {
            self.send(i, Msg::Watermark(wm))?;
        }
        if primary_closed > 0 {
            if let Some(d) = &self.durability {
                self.windows_since_checkpoint += primary_closed;
                if self.windows_since_checkpoint >= d.config.snapshot_every_windows.max(1) {
                    // Defer to the end of the current routing pass: a
                    // snapshot cut mid-release would lose the
                    // not-yet-routed remainder.
                    self.checkpoint_due = true;
                }
            }
            if let Some(r) = &self.rebalance {
                if self.shards > 1 {
                    self.windows_since_rebalance += primary_closed;
                    if self.windows_since_rebalance >= r.check_every_windows.max(1) {
                        // Deferred like checkpoints: the migration barrier
                        // must not split a reorder release batch.
                        self.rebalance_due = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Send route group `g`'s buffered frame for shard `i`, if any.
    /// (`Vec::with_capacity` replacing the taken buffer is the one
    /// amortized allocation per frame — deliberately not in the denied
    /// set.)
    // lint:hot-path
    fn flush_group_shard(&mut self, g: usize, i: usize) -> Result<(), EngineError> {
        if self.groups[g].batch_bufs[i].is_empty() {
            return Ok(());
        }
        let frame = std::mem::replace(
            &mut self.groups[g].batch_bufs[i],
            Vec::with_capacity(self.batch_size),
        );
        self.max_occupancy = self.max_occupancy.max(self.senders[i].len() + 1);
        self.stats.frames += 1;
        self.send(
            i,
            Msg::Events {
                group: g as u32,
                frame,
            },
        )
    }

    // lint:hot-path
    fn flush_all_batches(&mut self) -> Result<(), EngineError> {
        for g in 0..self.groups.len() {
            for i in 0..self.shards {
                self.flush_group_shard(g, i)?;
            }
        }
        Ok(())
    }

    /// Force a checkpoint now (durability must be configured): flush all
    /// frames, barrier-snapshot every hosted engine, persist the blob
    /// (query registry included), advance the manifest, and drop WAL
    /// segments and snapshots it made obsolete.
    ///
    /// Output-commit contract: rows already polled before the checkpoint
    /// are *not* in the snapshot and will never be re-emitted; rows not
    /// yet polled are carried inside the snapshot and re-delivered by the
    /// recovered executor. Rows polled *after* the last checkpoint are
    /// re-emitted on recovery — results are deterministic, so a sink
    /// keyed on `(window, group)` deduplicates them into exactly-once.
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        if self.durability.is_none() {
            return Err(EngineError::Config(
                "checkpoint requires ExecutorConfig::durability".into(),
            ));
        }
        if self.finished {
            return Err(EngineError::Config(
                "checkpoint after finish() on StreamExecutor".into(),
            ));
        }
        self.checkpoint_due = false;
        self.windows_since_checkpoint = 0;
        self.flush_all_batches()?;
        let per_shard = self.collect_shard_states()?;
        self.persist_snapshot(&per_shard)
    }

    /// Barrier-snapshot every hosted engine: every message queued before
    /// the Snapshot request is processed before the shard replies, so the
    /// combined state is the exact cut at `stats.pushed` pushed events
    /// (events still in the reorder buffer live on the ingest side). Each
    /// shard replies with one `(query, blob)` per hosted query. Rows
    /// emitted before the barrier are drained into the per-query buffers.
    /// Callers must flush batched frames first.
    ///
    /// The barrier/ack/row-drain protocol this implements (and the
    /// invariants it must uphold: all shards cut at the same sequence,
    /// no row crosses a barrier, snapshot accounting balances, remainders
    /// are delivered exactly once) is exhaustively model-checked over all
    /// interleavings in [`crate::protocol_model`].
    fn collect_shard_states(&mut self) -> Result<Vec<QueryBlobs>, EngineError> {
        self.stats.barrier_snapshots += 1;
        let (reply_tx, reply_rx) = channel::bounded::<(usize, QueryBlobs)>(self.shards);
        for i in 0..self.senders.len() {
            self.send(i, Msg::Snapshot(reply_tx.clone()))?;
        }
        drop(reply_tx);
        let mut per_shard: Vec<Vec<(u32, Vec<u8>)>> =
            (0..self.shards).map(|_| Vec::new()).collect();
        let mut got = 0usize;
        while got < self.shards {
            match reply_rx.try_recv() {
                Ok((shard, blobs)) => {
                    per_shard[shard] = blobs;
                    got += 1;
                }
                Err(TryRecvError::Empty) => {
                    // Workers may be blocked emitting rows; keep draining.
                    if !self.drain_ready() {
                        std::thread::yield_now();
                    }
                }
                Err(TryRecvError::Disconnected) => return Err(self.reap_after_failure()),
            }
        }
        // Rows (and frontier stamps) emitted before the barrier are all in
        // flight by now; pull them in so a snapshot carries the un-polled
        // rows and each merge's frontier reflects the cut.
        self.drain_ready();
        Ok(per_shard)
    }

    /// Run the skew detector and, on imbalance, migrate group state to a
    /// new assignment at the current window-close barrier.
    ///
    /// Detection: the per-group event counts *since the last check* are
    /// summed per shard under the current table; the check fires when the
    /// most-loaded shard carries at least
    /// [`RebalanceConfig::imbalance_ratio`] times the mean. Interval
    /// counts (not lifetime totals) mean skew that emerges late in a long
    /// stream is seen within one check period instead of being averaged
    /// away by balanced history. The plan is a greedy
    /// longest-processing-time pass over the interval's groups (hottest
    /// first onto the least-loaded shard) — deterministic, so a recovered
    /// executor replays identical migrations. Only groups whose planned
    /// shard differs from what the table-plus-hash already yields are
    /// pinned, so the override table stays proportional to actual moves.
    /// Plans moving fewer than [`RebalanceConfig::min_moves`] groups are
    /// discarded (the old pins are kept).
    fn run_rebalance_check(&mut self) -> Result<(), EngineError> {
        self.rebalance_due = false;
        self.windows_since_rebalance = 0;
        let Some(cfg) = self.rebalance else {
            return Ok(());
        };
        if self.shards <= 1 || self.recent_events.is_empty() {
            return Ok(());
        }
        // Hottest-first, key-tie-broken: deterministic across runs (the
        // sketch's evictions are deterministic too, so a recovered
        // executor replays identical plans).
        let groups: Vec<(PartitionKey, u64)> = self.recent_events.take_hottest_first();
        let total: u64 = groups.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return Ok(());
        }
        let table = &self.groups[0].table;
        let shards = self.shards;
        let current = |k: &PartitionKey| {
            let h = group_key_hash(k);
            table
                .shard_for_hash(h)
                .unwrap_or_else(|| shard_of_hash(h, shards))
        };
        let mut loads = vec![0u64; shards];
        for (k, n) in &groups {
            loads[current(k)] += n;
        }
        let max_load = loads.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / shards as f64;
        if (max_load as f64) < cfg.imbalance_ratio.max(1.0) * mean {
            return Ok(());
        }
        let mut new_loads = vec![0u64; shards];
        let mut overrides = HashMap::new();
        let mut moves = 0usize;
        for (k, n) in &groups {
            let dest = new_loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i)
                .unwrap_or(0);
            new_loads[dest] += *n;
            if dest != current(k) {
                moves += 1;
            }
            // A pin that agrees with the hash fallback is a no-op: leave
            // it out so the table (and every snapshot carrying it) stays
            // proportional to the groups actually displaced.
            if dest != shard_of_hash(group_key_hash(k), shards) {
                overrides.insert(k.clone(), dest as u32);
            }
        }
        if moves < cfg.min_moves.max(1) {
            return Ok(());
        }
        self.migrate(overrides, moves)
    }

    /// Barrier migration to a new group → shard assignment for the
    /// primary route group:
    ///
    /// 1. flush buffered frames and barrier-snapshot every hosted engine
    ///    (drains all in-flight work — the stream is cut at a point where
    ///    no event is between the router and an engine);
    /// 2. install the new table under a bumped routing epoch;
    /// 3. repartition the snapshots of every query routed through the
    ///    primary group so each group's graphs, incremental aggregates,
    ///    and replay context follow it to its new owner (queries on their
    ///    own key plane keep their engines);
    /// 4. send each shard its rebuilt engines. Channels are FIFO and
    ///    nothing is routed between the barrier and the install, so every
    ///    frame routed under epoch `e+1` is processed by an epoch-`e+1`
    ///    engine — results stay byte-identical to any static assignment.
    ///
    /// When a cadence checkpoint is owed at the same window close, the two
    /// barriers are **fused**: the repartitioned engine states *are* the
    /// post-migration cut, so they are serialized and persisted directly
    /// instead of running a second back-to-back barrier snapshot right
    /// after the install.
    fn migrate(
        &mut self,
        overrides: HashMap<PartitionKey, u32>,
        moves: usize,
    ) -> Result<(), EngineError> {
        self.flush_all_batches()?;
        let per_shard = self.collect_shard_states()?;
        self.groups[0].table.install(overrides);
        let table = self.groups[0].table.clone();
        let shards = self.shards;
        let members: Vec<(u32, CompiledQuery)> = self
            .queries
            .iter()
            .filter(|s| s.active && s.group == 0)
            .map(|s| (s.id, s.query.clone()))
            .collect();
        let member_ids: Vec<u32> = members.iter().map(|(id, _)| *id).collect();
        // Fused rebalance + checkpoint barrier: the repartitioned engines
        // *are* the exact post-migration cut (the new table and counters
        // are already in `self`), so when a cadence checkpoint is owed
        // they are serialized directly — no second barrier drain.
        let mut fused_states: Option<Vec<QueryBlobs>> =
            (self.checkpoint_due && self.durability.is_some()).then(|| {
                per_shard
                    .iter()
                    .map(|blobs| {
                        blobs
                            .iter()
                            .filter(|(q, _)| !member_ids.contains(q))
                            .cloned()
                            .collect()
                    })
                    .collect()
            });
        for (qid, query) in &members {
            let states: Vec<Vec<u8>> = per_shard
                .iter()
                .map(|blobs| {
                    blobs
                        .iter()
                        .find(|(q, _)| q == qid)
                        .map(|(_, b)| b.clone())
                        .unwrap_or_default()
                })
                .collect();
            let t = table.clone();
            let engines = GretaEngine::<N>::repartition_states(
                query,
                &self.registry,
                self.engine_config,
                &states,
                shards,
                move |g| {
                    let h = group_key_hash(g);
                    t.shard_for_hash(h)
                        .unwrap_or_else(|| shard_of_hash(h, shards))
                },
            )?;
            if let Some(fs) = &mut fused_states {
                for (i, engine) in engines.iter().enumerate() {
                    fs[i].push((*qid, engine.export_state()));
                }
            }
            for (i, engine) in engines.into_iter().enumerate() {
                self.send(
                    i,
                    Msg::Install {
                        query: *qid,
                        engine: Box::new(engine),
                    },
                )?;
            }
        }
        self.stats.rebalances += 1;
        self.stats.groups_moved += moves as u64;
        if let Some(blobs) = fused_states {
            // Persist only after every install is queued: a snapshot I/O
            // failure then surfaces as a plain checkpoint error against a
            // fully committed migration, never a half-installed table.
            self.checkpoint_due = false;
            self.windows_since_checkpoint = 0;
            self.stats.fused_barriers += 1;
            self.persist_snapshot(&blobs)?;
        }
        Ok(())
    }

    /// Serialize, write, and commit a snapshot of the current cut: fsync
    /// the WAL, write the blob, advance the manifest, drop WAL segments
    /// and snapshots it made obsolete. The manifest records the WAL's
    /// next record index (events *and* registry records), so replay
    /// resumes exactly past the records the snapshot covers.
    fn persist_snapshot(&mut self, per_shard: &[Vec<(u32, Vec<u8>)>]) -> Result<(), EngineError> {
        let blob = self.encode_snapshot(per_shard);
        let d = self.durability.as_mut().expect("durability configured");
        // Order matters: WAL records covered by the manifest must be
        // durable before the manifest points past them.
        d.wal.sync().map_err(EngineError::from)?;
        let wal_index = d.wal.next_index();
        d.epoch += 1;
        d.snapshots
            .write(d.epoch, &blob)
            .map_err(EngineError::from)?;
        Manifest {
            epoch: d.epoch,
            wal_index,
            shards: self.shards as u32,
        }
        .store(&d.config.dir)
        .map_err(EngineError::from)?;
        d.wal
            .truncate_segments_before(wal_index)
            .map_err(EngineError::from)?;
        d.snapshots
            .purge_before(d.epoch)
            .map_err(EngineError::from)?;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// Serialize the ingest-side state + every hosted query's shard blobs
    /// into one snapshot: a v4-compatible primary section first, then the
    /// registered-query registry.
    fn encode_snapshot(&self, per_shard: &[Vec<(u32, Vec<u8>)>]) -> Vec<u8> {
        use crate::state::{encode_events, encode_window_result, put_opt_u64};
        let mut out = Vec::new();
        out.push(SNAPSHOT_VERSION);
        put_u32(&mut out, self.shards as u32);
        // Result-shaping configuration the snapshot depends on: recovery
        // with different values would silently diverge from the original
        // run, so it is recorded and checked instead.
        put_u64(&mut out, self.reorder.slack());
        out.push(match self.late_policy {
            LatePolicy::Drop => 0,
            LatePolicy::Divert => 1,
            LatePolicy::Error => 2,
        });
        out.push(encode_emission(self.queries[0].emission));
        for v in [
            self.stats.pushed,
            self.stats.released,
            self.stats.late_dropped,
            self.stats.late_diverted,
            self.stats.broadcasts,
            self.stats.watermarks,
            self.stats.frames,
            self.stats.checkpoints,
            self.stats.barrier_snapshots,
            self.stats.fused_barriers,
            self.stats.rebalances,
            self.stats.groups_moved,
            self.max_occupancy as u64,
        ] {
            put_u64(&mut out, v);
        }
        put_opt_u64(&mut out, self.queries[0].last_close_idx);
        put_u32(&mut out, self.late_windows.len() as u32);
        for (&wid, &(dropped, diverted)) in &self.late_windows {
            put_u64(&mut out, wid);
            put_u64(&mut out, dropped);
            put_u64(&mut out, diverted);
        }
        self.groups[0].table.encode(&mut out);
        self.group_stats.encode(&mut out);
        put_u64(&mut out, self.windows_since_rebalance);
        self.recent_events.encode(&mut out);
        put_u32(&mut out, self.stats.events_per_shard.len() as u32);
        for v in &self.stats.events_per_shard {
            put_u64(&mut out, *v);
        }
        self.reorder.export_state(&mut out);
        encode_events(self.diverted.iter(), &mut out);
        put_u32(&mut out, self.queries[0].pending.len() as u32);
        for row in &self.queries[0].pending {
            encode_window_result(row, &mut out);
        }
        if let Some(m) = &self.queries[0].merge {
            m.export_state(&mut out);
        }
        let empty: Vec<u8> = Vec::new();
        put_u32(&mut out, per_shard.len() as u32);
        for blobs in per_shard {
            let blob = blobs
                .iter()
                .find(|(q, _)| *q == 0)
                .map(|(_, b)| b)
                .unwrap_or(&empty);
            put_u32(&mut out, blob.len() as u32);
            out.extend_from_slice(blob);
        }
        // ── Registry section (v5) ──────────────────────────────────────
        put_u32(&mut out, self.next_query_id);
        put_u64(&mut out, self.query_epoch);
        let extras: Vec<&QuerySlot<N>> = self.queries.iter().skip(1).filter(|s| s.active).collect();
        put_u32(&mut out, extras.len() as u32);
        for slot in extras {
            put_u32(&mut out, slot.id);
            put_str(&mut out, slot.text.as_deref().unwrap_or(""));
            out.push(encode_emission(slot.emission));
            put_opt_u64(&mut out, slot.last_close_idx);
            put_u64(&mut out, slot.rows);
            put_u32(&mut out, slot.pending.len() as u32);
            for row in &slot.pending {
                encode_window_result(row, &mut out);
            }
            if let Some(m) = &slot.merge {
                m.export_state(&mut out);
            }
            put_u32(&mut out, self.shards as u32);
            for blobs in per_shard {
                let blob = blobs
                    .iter()
                    .find(|(q, _)| *q == slot.id)
                    .map(|(_, b)| b)
                    .unwrap_or(&empty);
                put_u32(&mut out, blob.len() as u32);
                out.extend_from_slice(blob);
            }
        }
        out
    }

    /// Inverse of [`encode_snapshot`](Self::encode_snapshot). Refuses a
    /// `config` whose result-shaping knobs (slack, late policy, primary
    /// emission mode) differ from the checkpointed run's — recovering
    /// under different values would silently break the
    /// byte-identical-replay guarantee.
    fn decode_snapshot(
        bytes: &[u8],
        expect_shards: usize,
        config: &ExecutorConfig,
    ) -> Result<SnapshotParts<N>, EngineError> {
        use crate::state::{decode_events, decode_window_result, get_opt_u64};
        let r = &mut Reader::new(bytes);
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError(format!("unsupported snapshot version {version}")).into());
        }
        let shards = r.u32()? as usize;
        if shards != expect_shards {
            return Err(CodecError(format!(
                "snapshot has {shards} shard state(s), manifest says {expect_shards}"
            ))
            .into());
        }
        let slack = r.u64()?;
        if slack != config.slack {
            return Err(EngineError::Config(format!(
                "slack mismatch: checkpoint was taken with slack {slack}, \
                 config asks for {}",
                config.slack
            )));
        }
        let late_policy = match r.u8()? {
            0 => LatePolicy::Drop,
            1 => LatePolicy::Divert,
            2 => LatePolicy::Error,
            t => return Err(CodecError(format!("bad LatePolicy tag {t}")).into()),
        };
        if late_policy != config.late_policy {
            return Err(EngineError::Config(format!(
                "late-policy mismatch: checkpoint was taken with {late_policy:?}, \
                 config asks for {:?}",
                config.late_policy
            )));
        }
        let emission = decode_emission(r.u8()?)?;
        if emission != config.emission {
            return Err(EngineError::Config(format!(
                "emission-mode mismatch: checkpoint was taken with {emission:?}, \
                 config asks for {:?}",
                config.emission
            )));
        }
        let stats = ExecutorStats {
            pushed: r.u64()?,
            released: r.u64()?,
            late_dropped: r.u64()?,
            late_diverted: r.u64()?,
            broadcasts: r.u64()?,
            watermarks: r.u64()?,
            frames: r.u64()?,
            checkpoints: r.u64()?,
            barrier_snapshots: r.u64()?,
            fused_barriers: r.u64()?,
            rebalances: r.u64()?,
            groups_moved: r.u64()?,
            ..Default::default()
        };
        let max_occupancy = r.u64()? as usize;
        let last_close_idx = get_opt_u64(r)?;
        let n_late = r.seq_len(24)?;
        let mut late_windows = BTreeMap::new();
        for _ in 0..n_late {
            let wid = r.u64()?;
            let dropped = r.u64()?;
            let diverted = r.u64()?;
            late_windows.insert(wid, (dropped, diverted));
        }
        let table = RoutingTable::decode(r, expect_shards)?;
        let group_stats = GroupSketch::decode(config.group_stats_capacity, r)?;
        let windows_since_rebalance = r.u64()?;
        let recent_events = GroupSketch::decode(config.group_stats_capacity, r)?;
        let n_shard_loads = r.seq_len(8)?;
        let mut stats = stats;
        stats.events_per_shard = Vec::with_capacity(n_shard_loads);
        for _ in 0..n_shard_loads {
            stats.events_per_shard.push(r.u64()?);
        }
        let reorder = ReorderBuffer::import_state(slack, r)?;
        let diverted = decode_events(r)?;
        let n_pending = r.seq_len(9)?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push(decode_window_result(r)?);
        }
        let merge = match emission {
            EmissionMode::Unordered => None,
            EmissionMode::WindowOrdered => Some(ResultMerge::import_state(r)?),
        };
        let n_states = r.seq_len(4)?;
        if n_states != shards {
            return Err(CodecError(format!(
                "snapshot header says {shards} shards but carries {n_states} state blobs"
            ))
            .into());
        }
        let mut shard_states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            shard_states.push(r.bytes()?.to_vec());
        }
        // ── Registry section (v5) ──────────────────────────────────────
        let next_query_id = r.u32()?;
        let query_epoch = r.u64()?;
        let n_extra = r.seq_len(22)?;
        let mut extras = Vec::with_capacity(n_extra);
        for _ in 0..n_extra {
            let id = r.u32()?;
            let text = r.str()?.to_string();
            let ex_emission = decode_emission(r.u8()?)?;
            let ex_last_close_idx = get_opt_u64(r)?;
            let rows = r.u64()?;
            let n_pending = r.seq_len(9)?;
            let mut ex_pending = Vec::with_capacity(n_pending);
            for _ in 0..n_pending {
                ex_pending.push(decode_window_result(r)?);
            }
            let ex_merge = match ex_emission {
                EmissionMode::Unordered => None,
                EmissionMode::WindowOrdered => Some(ResultMerge::import_state(r)?),
            };
            let n_ex_states = r.seq_len(4)?;
            if n_ex_states != shards {
                return Err(CodecError(format!(
                    "registered query {id} carries {n_ex_states} state blobs, expected {shards}"
                ))
                .into());
            }
            let mut ex_states = Vec::with_capacity(n_ex_states);
            for _ in 0..n_ex_states {
                ex_states.push(r.bytes()?.to_vec());
            }
            extras.push(ExtraParts {
                id,
                text,
                emission: ex_emission,
                last_close_idx: ex_last_close_idx,
                rows,
                pending: ex_pending,
                merge: ex_merge,
                shard_states: ex_states,
            });
        }
        if !r.is_empty() {
            return Err(
                CodecError(format!("{} trailing bytes after snapshot", r.remaining())).into(),
            );
        }
        Ok(SnapshotParts {
            stats,
            max_occupancy,
            last_close_idx,
            late_windows,
            table,
            group_stats,
            recent_events,
            windows_since_rebalance,
            reorder,
            diverted,
            pending,
            merge,
            shard_states,
            next_query_id,
            query_epoch,
            extras,
        })
    }

    /// Deliver `msg` to a shard without ever blocking this thread for good:
    /// while the shard's input queue is full, drain the result channel into
    /// the per-query buffers (the pushing thread is the only result
    /// consumer, so parking in a blocking `send` while workers wait to
    /// emit rows would deadlock the pipeline).
    fn send(&mut self, shard: usize, msg: Msg<N>) -> Result<(), EngineError> {
        let mut msg = msg;
        loop {
            match self.senders[shard].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) => {
                    msg = back;
                    if !self.drain_ready() {
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected(_)) => return Err(self.reap_after_failure()),
            }
        }
    }

    /// A worker vanished: close all inputs, drain results while the
    /// surviving workers flush (joining a worker that is blocked sending
    /// rows would hang), and surface the first real worker error.
    fn reap_after_failure(&mut self) -> EngineError {
        self.senders.clear();
        self.finished = true;
        let mut err = EngineError::Worker("shard input channel closed".into());
        let mut found = false;
        let workers: Vec<_> = self.workers.drain(..).collect();
        for w in workers {
            while !w.is_finished() {
                self.drain_ready();
                std::thread::yield_now();
            }
            match w.join() {
                Ok(Err(e)) if !found => {
                    err = e;
                    found = true;
                }
                Ok(_) => {}
                Err(_) if !found => {
                    err = EngineError::Worker("shard worker panicked".into());
                }
                Err(_) => {}
            }
        }
        err
    }
}

impl<N: TrendNum> Drop for StreamExecutor<N> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // Close inputs, discard pending results, reap the workers. (With
        // durability on, the WAL flushes via its own Drop — a subsequent
        // `recover` replays it.)
        self.senders.clear();
        while self.results_rx.try_recv().is_ok() {}
        for w in self.workers.drain(..) {
            // Workers may be blocked sending results; keep draining while
            // they flush so the join cannot deadlock.
            while !w.is_finished() {
                let _ = self.results_rx.try_recv();
                std::thread::yield_now();
            }
            let _ = w.join();
        }
    }
}

/// Emit one engine slot's ready rows (and, when ordered, its advanced
/// emission frontier). Returns false if the executor hung up.
fn flush_engine_slot<N: TrendNum>(
    slot: &mut EngineSlot<N>,
    shard: usize,
    results_tx: &Sender<OutMsg<N>>,
) -> bool {
    for row in slot.engine.poll_results() {
        slot.seq += 1;
        if results_tx
            .send(OutMsg::Row {
                query: slot.query,
                shard: shard as u32,
                seq: slot.seq,
                row,
            })
            .is_err()
        {
            return false;
        }
    }
    if slot.ordered {
        let next = slot.engine.emission_frontier();
        if next > slot.frontier {
            slot.frontier = next;
            if results_tx
                .send(OutMsg::Frontier {
                    query: slot.query,
                    shard: shard as u32,
                    next_window: next,
                })
                .is_err()
            {
                return false;
            }
        }
    }
    true
}

fn worker_loop<N: TrendNum>(
    mut slots: Vec<EngineSlot<N>>,
    shard: usize,
    rx: Receiver<Msg<N>>,
    results_tx: Sender<OutMsg<N>>,
    export_final: bool,
) -> Result<WorkerReport, EngineError> {
    let report = |slots: &[EngineSlot<N>]| {
        let mut stats = EngineStats::default();
        let mut peak_bytes = 0usize;
        let mut group_vertices = Vec::new();
        for s in slots {
            let es = s.engine.stats();
            stats.events += es.events;
            stats.vertices += es.vertices;
            stats.edges += es.edges;
            stats.results += es.results;
            peak_bytes += s.engine.peak_memory_bytes().max(s.engine.memory_bytes());
            if s.query == 0 {
                group_vertices = s.engine.group_vertices();
            }
        }
        WorkerReport {
            stats,
            peak_bytes,
            group_vertices,
            final_states: None,
        }
    };
    for msg in rx.iter() {
        match msg {
            Msg::Events { group, frame } => {
                // Every query in the frame's route group processes the
                // same shared events (Arc clones — no copies).
                for s in slots.iter_mut().filter(|s| s.group == group) {
                    for e in &frame {
                        s.engine.process_ref(e)?;
                    }
                }
            }
            Msg::Watermark(t) => {
                for s in slots.iter_mut() {
                    s.engine.advance_watermark(t);
                }
            }
            Msg::Snapshot(reply) => {
                // Rows of previous messages were already flushed below, so
                // the exported states and the emitted rows never overlap.
                let blobs = slots
                    .iter()
                    .map(|s| (s.query, s.engine.export_state()))
                    .collect();
                let _ = reply.send((shard, blobs));
                continue;
            }
            Msg::Install { query, engine } => {
                // Barrier-migration commit: adopt the repartitioned engine.
                // Its inherited watermark (the max across source engines)
                // may already be past some windows' close times — close
                // them now so their rows flow out with this drain instead
                // of waiting for the next message.
                if let Some(s) = slots.iter_mut().find(|s| s.query == query) {
                    s.engine = *engine;
                    s.engine.close_overdue();
                }
            }
            Msg::AddQuery {
                query,
                group,
                ordered,
                engine,
                ack,
            } => {
                // Register-barrier commit: FIFO channels guarantee this
                // engine sees exactly the frames sent after the cut.
                slots.push(EngineSlot {
                    query,
                    group,
                    ordered,
                    engine: *engine,
                    seq: 0,
                    frontier: 0,
                });
                let _ = ack.send(shard);
                continue;
            }
            Msg::RemoveQuery { query, ack } => {
                // Deregister-barrier commit: finish the engine (closing
                // its open windows), emit the remainder tagged, then ack —
                // the executor drains the rows before tearing the slot
                // down, so nothing is lost.
                if let Some(pos) = slots.iter().position(|s| s.query == query) {
                    let mut s = slots.remove(pos);
                    for row in s.engine.finish() {
                        s.seq += 1;
                        if results_tx
                            .send(OutMsg::Row {
                                query: s.query,
                                shard: shard as u32,
                                seq: s.seq,
                                row,
                            })
                            .is_err()
                        {
                            return Ok(report(&slots));
                        }
                    }
                    if s.ordered
                        && results_tx
                            .send(OutMsg::Frontier {
                                query: s.query,
                                shard: shard as u32,
                                next_window: WindowId::MAX,
                            })
                            .is_err()
                    {
                        return Ok(report(&slots));
                    }
                }
                let _ = ack.send(shard);
                continue;
            }
        }
        let all_sent = slots
            .iter_mut()
            .all(|slot| flush_engine_slot(slot, shard, &results_tx));
        if !all_sent {
            // Executor dropped without finish(): stop quietly.
            return Ok(report(&slots));
        }
    }
    for slot in slots.iter_mut() {
        for row in slot.engine.finish() {
            slot.seq += 1;
            if results_tx
                .send(OutMsg::Row {
                    query: slot.query,
                    shard: shard as u32,
                    seq: slot.seq,
                    row,
                })
                .is_err()
            {
                break;
            }
        }
    }
    // No explicit final frontier: the executor treats this worker's
    // channel disconnect as frontier = ∞.
    let mut rep = report(&slots);
    if export_final {
        rep.final_states = Some(
            slots
                .iter()
                .map(|s| (s.query, s.engine.export_state()))
                .collect(),
        );
    }
    Ok(rep)
}

/// Inline batch driver: the single-shard, zero-thread execution path that
/// [`GretaEngine::run`] wraps. Processing an in-order batch through an
/// engine and draining incrementally is exactly what one shard worker does.
pub(crate) fn drive_batch<N: TrendNum>(
    engine: &mut GretaEngine<N>,
    events: &[Event],
) -> Result<Vec<WindowResult<N>>, EngineError> {
    let mut out = Vec::new();
    for e in events {
        engine.process(e)?;
        out.extend(engine.poll_results());
    }
    out.extend(engine.finish());
    Ok(out)
}
#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::EventBuilder;
    use std::path::PathBuf;

    fn grouped_setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 100 SLIDE 50",
            &reg,
        )
        .unwrap();
        let events: Vec<Event> = (0..240u64)
            .map(|t| {
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", (t % 7) as i64)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build()
            })
            .collect();
        (reg, q, events)
    }

    fn sorted<N: TrendNum>(mut rows: Vec<WindowResult<N>>) -> Vec<WindowResult<N>> {
        rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        rows
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("greta-exec-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn sharded_executor_matches_sequential_engine() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        for shards in [1, 2, 4] {
            let mut exec = StreamExecutor::<u64>::new(
                q.clone(),
                reg.clone(),
                ExecutorConfig {
                    shards,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rows = Vec::new();
            for e in &events {
                exec.push(e.clone()).unwrap();
                rows.extend(exec.poll_results());
            }
            rows.extend(exec.finish().unwrap());
            assert_eq!(sorted(rows), expect, "shards={shards}");
            let stats = exec.stats();
            assert_eq!(stats.pushed, events.len() as u64);
            assert_eq!(stats.engine.events, events.len() as u64);
        }
    }

    #[test]
    fn batch_sizes_do_not_change_results() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut frames_seen = Vec::new();
        for batch_size in [1usize, 7, 64, 10_000] {
            let mut exec = StreamExecutor::<u64>::new(
                q.clone(),
                reg.clone(),
                ExecutorConfig {
                    shards: 3,
                    batch_size,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rows = Vec::new();
            for e in &events {
                exec.push(e.clone()).unwrap();
                rows.extend(exec.poll_results());
            }
            rows.extend(exec.finish().unwrap());
            assert_eq!(sorted(rows), expect, "batch_size={batch_size}");
            frames_seen.push(exec.stats().frames);
        }
        // Bigger batches mean fewer frames.
        assert!(
            frames_seen[0] > frames_seen[2],
            "batch=1 sent {} frames, batch=64 sent {}",
            frames_seen[0],
            frames_seen[2]
        );
    }

    #[test]
    fn results_stream_incrementally_not_only_at_finish() {
        let (reg, q, events) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut streamed = 0usize;
        for e in &events {
            exec.push(e.clone()).unwrap();
            streamed += exec.poll_results().len();
        }
        // Workers flush asynchronously; give the last close a moment.
        for _ in 0..100 {
            streamed += exec.poll_results().len();
            if streamed > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(streamed > 0, "no rows before finish()");
        exec.finish().unwrap();
    }

    #[test]
    fn late_policies() {
        let mk = |policy| {
            let mut reg = SchemaRegistry::new();
            reg.register_type("A", &[]).unwrap();
            let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg)
                .unwrap();
            let tid = reg.type_id("A").unwrap();
            let exec = StreamExecutor::<u64>::new(
                q,
                reg,
                ExecutorConfig {
                    shards: 1,
                    slack: 2,
                    late_policy: policy,
                    ..Default::default()
                },
            )
            .unwrap();
            (exec, tid)
        };
        let ev = |tid, t| Event::new_unchecked(tid, Time(t), vec![]);

        // Drop: the late event vanishes but is counted, globally and per
        // window.
        let (mut exec, tid) = mk(LatePolicy::Drop);
        for t in [10u64, 20, 5] {
            exec.push(ev(tid, t)).unwrap();
        }
        let rows = exec.finish().unwrap();
        let stats = exec.stats();
        assert_eq!(stats.late_dropped, 1);
        assert_eq!(
            stats.late_by_window,
            vec![WindowLateCounts {
                window: 0,
                dropped: 1,
                diverted: 0
            }]
        );
        assert_eq!(rows[0].values[0].to_f64(), 3.0); // {10},{20},{10,20}

        // Divert: the late event is handed back.
        let (mut exec, tid) = mk(LatePolicy::Divert);
        for t in [10u64, 20, 5] {
            exec.push(ev(tid, t)).unwrap();
        }
        exec.finish().unwrap();
        let diverted = exec.take_diverted();
        let stats = exec.stats();
        assert_eq!(stats.late_diverted, 1);
        assert_eq!(stats.late_by_window[0].diverted, 1);
        assert_eq!(diverted.len(), 1);
        assert_eq!(diverted[0].time, Time(5));

        // Error: push fails loudly.
        let (mut exec, tid) = mk(LatePolicy::Error);
        exec.push(ev(tid, 10)).unwrap();
        exec.push(ev(tid, 20)).unwrap();
        let err = exec.push(ev(tid, 5)).unwrap_err();
        assert!(matches!(err, EngineError::Late { got: 5, .. }), "{err}");
        exec.finish().unwrap();
    }

    #[test]
    fn slack_reorders_disordered_input() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let tid = reg.type_id("A").unwrap();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 1,
                slack: 5,
                late_policy: LatePolicy::Error,
                ..Default::default()
            },
        )
        .unwrap();
        for t in [2u64, 1, 4, 3, 5] {
            exec.push(Event::new_unchecked(tid, Time(t), vec![]))
                .unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(rows[0].values[0].to_f64(), 31.0); // 2^5 - 1
        assert_eq!(exec.stats().released, 5);
    }

    #[test]
    fn ungrouped_query_clamps_to_one_shard() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
        let exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exec.shards(), 1);
    }

    #[test]
    fn zero_shards_rejected_and_push_after_finish_errors() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
        assert!(StreamExecutor::<u64>::new(
            q.clone(),
            reg.clone(),
            ExecutorConfig {
                shards: 0,
                ..Default::default()
            },
        )
        .is_err());
        let tid = reg.type_id("A").unwrap();
        let mut exec = StreamExecutor::<u64>::new(q, reg, ExecutorConfig::default()).unwrap();
        exec.finish().unwrap();
        assert!(exec.finish().unwrap().is_empty()); // idempotent
        assert!(exec
            .push(Event::new_unchecked(tid, Time(1), vec![]))
            .is_err());
    }

    #[test]
    fn poll_free_caller_with_tiny_channels_cannot_deadlock() {
        // Regression: with a full result channel and full shard queues, a
        // caller that never polls used to park forever in push()/finish().
        // The sender now drains results into an internal buffer instead.
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                channel_capacity: 2,
                result_capacity: 1,
                batch_size: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap(); // no poll_results() on purpose
        }
        let rows = exec.finish().unwrap();
        assert_eq!(sorted(rows), expect);
        assert!(exec.stats().max_channel_occupancy >= 2);
    }

    #[test]
    fn broadcast_frames_are_pointer_identical_across_shards() {
        // The zero-copy event plane: a broadcast event reaches every shard
        // as an `Arc` clone of ONE allocation, never as a deep copy.
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 1000 SLIDE 1000",
            &reg,
        )
        .unwrap();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg.clone(),
            ExecutorConfig {
                shards: 3,
                batch_size: 10_000, // keep frames buffered so we can inspect them
                ..Default::default()
            },
        )
        .unwrap();
        let acc = EventBuilder::new(&reg, "Accident")
            .unwrap()
            .at(Time(1))
            .set("segment", 4)
            .unwrap()
            .build();
        let pos = EventBuilder::new(&reg, "Position")
            .unwrap()
            .at(Time(5))
            .set("vehicle", 7)
            .unwrap()
            .set("segment", 4)
            .unwrap()
            .build();
        exec.push(acc).unwrap();
        exec.push(pos).unwrap(); // advances the reorder horizon past t=1
        assert_eq!(exec.stats().broadcasts, 1);
        assert_eq!(exec.groups[0].batch_bufs.len(), 3);
        let first = &exec.groups[0].batch_bufs[0][0];
        for buf in &exec.groups[0].batch_bufs[1..] {
            assert!(
                std::sync::Arc::ptr_eq(first, &buf[0]),
                "broadcast event was copied instead of shared"
            );
        }
        exec.finish().unwrap();
    }

    #[test]
    fn broadcast_types_reach_all_shards() {
        // Q3-style leading negation with a sub-key type, 3 shards.
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&reg, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&reg, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let events = vec![
            pos(1, 1, 1),
            pos(1, 2, 2),
            acc(2, 1),
            pos(3, 1, 1),
            pos(3, 2, 2),
        ];
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(sorted(rows), expect);
        assert_eq!(exec.stats().broadcasts, 1);
    }

    // ------------------------------------------------------------------
    // Dynamic rebalancing
    // ------------------------------------------------------------------

    /// A 90/10 hot-key stream over `hot` hot groups and a tail of cold
    /// ones: 90% of events round-robin the hot groups, 10% spread wide.
    fn skewed_setup(n: usize, hot: i64, cold: i64) -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 40 SLIDE 20",
            &reg,
        )
        .unwrap();
        let events: Vec<Event> = (0..n as u64)
            .map(|t| {
                let grp = if t % 10 < 9 {
                    (t % hot as u64) as i64 // hot minority
                } else {
                    hot + (t % cold as u64) as i64 // cold tail
                };
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", grp)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build()
            })
            .collect();
        (reg, q, events)
    }

    fn aggressive_rebalance() -> RebalanceConfig {
        RebalanceConfig {
            check_every_windows: 2,
            imbalance_ratio: 1.2,
            min_moves: 1,
        }
    }

    #[test]
    fn skewed_stream_triggers_rebalance_and_results_stay_identical() {
        let (reg, q, events) = skewed_setup(400, 3, 23);
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 4,
                rebalance: Some(aggressive_rebalance()),
                ..Default::default()
            },
        )
        .unwrap();
        let mut rows = Vec::new();
        for e in &events {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        assert_eq!(sorted(rows), expect);
        let stats = exec.stats();
        assert!(
            stats.rebalances >= 1,
            "3 hot groups over 4 shards must trigger the detector"
        );
        assert_eq!(stats.routing_epoch, stats.rebalances);
        assert!(stats.groups_moved >= 1);
        // Per-group event counters survive the migrations: they must sum
        // to exactly the non-broadcast events released.
        let counted: u64 = stats.group_stats.iter().map(|(_, s)| s.events).sum();
        assert_eq!(counted, stats.released);
        // Engine-side vertex counters are reported per group at finish.
        assert!(stats.group_stats.iter().any(|(_, s)| s.vertices > 0));
    }

    #[test]
    fn balanced_stream_never_rebalances() {
        // Uniform groups: the detector must stay quiet even with an
        // aggressive cadence.
        let (reg, q, events) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                rebalance: Some(RebalanceConfig {
                    check_every_windows: 1,
                    imbalance_ratio: 3.0,
                    min_moves: 1,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        exec.finish().unwrap();
        let stats = exec.stats();
        assert_eq!(stats.rebalances, 0);
        assert_eq!(stats.routing_epoch, 0);
    }

    #[test]
    fn min_moves_suppresses_marginal_migrations() {
        let (reg, q, events) = skewed_setup(400, 3, 23);
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 4,
                rebalance: Some(RebalanceConfig {
                    min_moves: usize::MAX, // no plan can clear this bar
                    ..aggressive_rebalance()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        exec.finish().unwrap();
        assert_eq!(exec.stats().rebalances, 0);
    }

    #[test]
    fn rebalance_composes_with_durability_and_recovery() {
        // Crash after a rebalance: the snapshot carries the routing table
        // and group counters, and the recovered run stays byte-identical.
        let (reg, q, events) = skewed_setup(400, 3, 23);
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("rebalance-recover");
        let mk_cfg = || ExecutorConfig {
            shards: 4,
            rebalance: Some(aggressive_rebalance()),
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let mut committed = Vec::new();
        let (rebalances_before, epoch_before) = {
            let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg()).unwrap();
            for e in &events[..250] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
            let s = exec.stats();
            (s.rebalances, s.routing_epoch)
        }; // crash
        assert!(rebalances_before >= 1, "prefix must already have migrated");
        let mut exec = StreamExecutor::<u64>::recover(q.clone(), reg.clone(), mk_cfg()).unwrap();
        assert_eq!(exec.routing_epoch(), epoch_before);
        for e in &events[250..] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_eq!(sorted(committed), expect);
        assert!(exec.stats().rebalances >= rebalances_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    fn durable_config(dir: &std::path::Path, shards: usize) -> ExecutorConfig {
        ExecutorConfig {
            shards,
            durability: Some(DurabilityConfig::new(dir)),
            ..Default::default()
        }
    }

    #[test]
    fn checkpoint_then_crash_then_recover_is_byte_identical() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("ckpt-recover");
        let mut committed = Vec::new();
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 3))
                    .unwrap();
            for e in &events[..150] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
            assert!(exec.stats().checkpoints >= 1);
            // Crash: drop without finish(). Rows polled before the
            // checkpoint are kept (`committed`); un-polled rows live in
            // the snapshot and resurface through the recovered executor.
            // (Rows polled *after* a checkpoint would be re-emitted on
            // recovery — deterministic duplicates for an idempotent sink.)
        }
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 3))
                .unwrap();
        let mut rows = Vec::new();
        for e in &events[150..] {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        committed.extend(rows);
        assert_eq!(sorted(committed), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_first_checkpoint_replays_whole_wal() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("no-ckpt");
        {
            let mut cfg = durable_config(&dir, 2);
            // Cadence so large no automatic checkpoint fires.
            cfg.durability.as_mut().unwrap().snapshot_every_windows = u64::MAX;
            let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), cfg).unwrap();
            for e in &events[..57] {
                exec.push(e.clone()).unwrap();
            }
            // Crash without ever polling: every row must come from recovery.
        }
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 2))
                .unwrap();
        let mut rows = Vec::new();
        for e in &events[57..] {
            exec.push(e.clone()).unwrap();
            rows.extend(exec.poll_results());
        }
        rows.extend(exec.finish().unwrap());
        assert_eq!(sorted(rows), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_cadence_checkpoints_and_wal_truncation() {
        let (reg, q, events) = grouped_setup();
        let dir = tmpdir("cadence");
        let mut cfg = durable_config(&dir, 2);
        {
            let d = cfg.durability.as_mut().unwrap();
            d.snapshot_every_windows = 1;
            d.segment_bytes = 512; // force rotations so truncation can bite
        }
        let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), cfg).unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
            exec.poll_results();
        }
        exec.finish().unwrap();
        let stats = exec.stats();
        assert!(
            stats.checkpoints >= 3,
            "expected cadence checkpoints, got {}",
            stats.checkpoints
        );
        // Obsolete segments were truncated: the on-disk WAL no longer
        // reaches back to record 0.
        let err = Wal::replay(&dir, 0, TailPolicy::Tolerate, |_, _| {}).unwrap_err();
        assert!(matches!(
            err,
            greta_durability::DurabilityError::NothingToRecover(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_after_graceful_finish_resumes_empty() {
        // finish() takes a final checkpoint; recovering afterwards yields a
        // executor with the full history in its counters and nothing to
        // replay.
        let (reg, q, events) = grouped_setup();
        let dir = tmpdir("graceful");
        let mut exec =
            StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 2)).unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
            exec.poll_results();
        }
        exec.finish().unwrap();
        let mut recovered =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 2))
                .unwrap();
        assert_eq!(recovered.stats().pushed, events.len() as u64);
        let rows = recovered.finish().unwrap();
        assert!(rows.is_empty(), "graceful finish left {} rows", rows.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_refuses_dir_with_existing_state_and_recover_reshards() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let dir = tmpdir("refuse");
        let mut committed = Vec::new();
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 2))
                    .unwrap();
            for e in &events[..120] {
                exec.push(e.clone()).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
        }
        // new() on a used dir is refused (would shadow recoverable state).
        let err = StreamExecutor::<u64>::new(q.clone(), reg.clone(), durable_config(&dir, 2))
            .err()
            .expect("new() must refuse a dir with recoverable state");
        assert!(matches!(err, EngineError::Config(_)), "{err}");
        // recover() into a *different* shard count repartitions the
        // snapshot's per-group state under a fresh routing epoch — results
        // stay byte-identical to the uninterrupted run.
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), durable_config(&dir, 5))
                .unwrap();
        assert_eq!(exec.shards(), 5);
        assert!(exec.routing_epoch() > 0, "resharding bumps the epoch");
        for e in &events[120..] {
            exec.push(e.clone()).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_eq!(sorted(committed), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn logged_then_rejected_late_event_does_not_poison_recovery() {
        // Under LatePolicy::Error the event is WAL-logged before the late
        // check fails the push; replay must skip it the same way the
        // original caller did, not fail recovery forever.
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let tid = reg.type_id("A").unwrap();
        let dir = tmpdir("late-poison");
        let mk_cfg = || ExecutorConfig {
            shards: 1,
            slack: 2,
            late_policy: LatePolicy::Error,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        {
            let mut exec = StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg()).unwrap();
            let ev = |t| Event::new_unchecked(tid, Time(t), vec![]);
            exec.push(ev(10)).unwrap();
            exec.push(ev(20)).unwrap();
            // Late: logged, then rejected — the caller notes it and goes on.
            assert!(matches!(
                exec.push(ev(5)).unwrap_err(),
                EngineError::Late { got: 5, .. }
            ));
            exec.push(ev(30)).unwrap();
        } // crash
        let mut exec = StreamExecutor::<u64>::recover(q, reg, mk_cfg()).unwrap();
        assert_eq!(exec.stats().pushed, 4);
        let rows = exec.finish().unwrap();
        // Same result the uninterrupted run produces: trends over {10,20,30}.
        assert_eq!(rows[0].values[0].to_f64(), 7.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_refuses_mismatched_slack_or_late_policy() {
        let (reg, q, events) = grouped_setup();
        let dir = tmpdir("cfg-mismatch");
        let mk_cfg = |slack, late_policy| ExecutorConfig {
            shards: 2,
            slack,
            late_policy,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg(3, LatePolicy::Divert))
                    .unwrap();
            for e in &events[..150] {
                exec.push(e.clone()).unwrap();
            }
            exec.checkpoint().unwrap();
        }
        for bad in [mk_cfg(0, LatePolicy::Divert), mk_cfg(3, LatePolicy::Drop)] {
            let err = StreamExecutor::<u64>::recover(q.clone(), reg.clone(), bad)
                .err()
                .expect("recover must refuse result-shaping config changes");
            assert!(matches!(err, EngineError::Config(_)), "{err}");
        }
        // The matching config still works.
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), mk_cfg(3, LatePolicy::Divert))
                .unwrap();
        exec.finish().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_requires_durability() {
        let (reg, q, _) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(
            exec.checkpoint().unwrap_err(),
            EngineError::Config(_)
        ));
        exec.finish().unwrap();
    }

    #[test]
    fn recovery_preserves_reorder_slack_state_and_diverted() {
        // Out-of-order events pending in the reorder buffer at checkpoint
        // time survive the crash via the snapshot (they are *before* the
        // manifest's WAL cut).
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &["grp"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN A+ GROUP-BY grp WITHIN 20 SLIDE 20",
            &reg,
        )
        .unwrap();
        let tid = reg.type_id("A").unwrap();
        let ev = |t: u64| Event::new_unchecked(tid, Time(t), vec![greta_types::Value::Int(0)]);
        let times: Vec<u64> = vec![2, 1, 4, 3, 6, 5, 8, 7, 30, 29, 31, 28, 50];
        let mk_cfg = |dir: &std::path::Path| ExecutorConfig {
            shards: 1,
            slack: 3,
            late_policy: LatePolicy::Divert,
            durability: Some(DurabilityConfig::new(dir)),
            ..Default::default()
        };
        // Oracle without durability.
        let mut oracle = StreamExecutor::<u64>::new(
            q.clone(),
            reg.clone(),
            ExecutorConfig {
                durability: None,
                ..mk_cfg(std::path::Path::new("/unused"))
            },
        )
        .unwrap();
        let mut expect = Vec::new();
        for &t in &times {
            oracle.push(ev(t)).unwrap();
        }
        expect.extend(oracle.finish().unwrap());
        let n_div_expect = {
            let d = oracle.take_diverted();
            d.len()
        };

        let dir = tmpdir("reorder-divert");
        let mut committed = Vec::new();
        {
            let mut exec =
                StreamExecutor::<u64>::new(q.clone(), reg.clone(), mk_cfg(&dir)).unwrap();
            for &t in &times[..7] {
                exec.push(ev(t)).unwrap();
                committed.extend(exec.poll_results());
            }
            exec.checkpoint().unwrap();
        } // crash
        let mut exec =
            StreamExecutor::<u64>::recover(q.clone(), reg.clone(), mk_cfg(&dir)).unwrap();
        for &t in &times[7..] {
            exec.push(ev(t)).unwrap();
            committed.extend(exec.poll_results());
        }
        committed.extend(exec.finish().unwrap());
        assert_eq!(sorted(committed), sorted(expect));
        assert_eq!(exec.take_diverted().len(), n_div_expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
