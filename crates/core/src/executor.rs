//! Push-based, sharded stream execution (paper §7 / §10.4 turned into a
//! long-lived serving layer).
//!
//! [`StreamExecutor`] unifies what used to be three disconnected entry
//! points — batch [`GretaEngine::run`], fire-and-collect
//! [`run_parallel`](crate::parallel::run_parallel), and the unwired
//! [`ReorderBuffer`] — into one pipeline:
//!
//! ```text
//!                 ┌────────────┐    hash(group key)   ┌─────────────┐
//!  push(event) ─▶ │ ReorderBuf │ ──▶ shard router ──▶ │ shard 0..N  │──┐
//!                 │ (slack,    │     (broadcast for   │ GretaEngine │  │ bounded
//!                 │  late      │      negative-       └─────────────┘  │ results
//!                 │  policy)   │      pattern types)  ┌─────────────┐  │ channel
//!                 └────────────┘ ──── watermarks ───▶ │ shard N-1   │──┤
//!                                                     └─────────────┘  ▼
//!                                              poll_results() / finish()
//! ```
//!
//! * **Ingestion**: events may arrive out of order up to a configurable
//!   `slack`; later than that, the [`LatePolicy`] decides — drop (count),
//!   divert (keep for the caller), or error.
//! * **Sharding** (§7): each `GROUP-BY` group is owned by exactly one shard
//!   worker, so per-shard results are disjoint and concatenate without
//!   merging. Events of broadcast types (negative-pattern / sub-key types)
//!   are delivered to every shard, which keeps its own copy of the (tiny)
//!   negative graphs — the same trade the paper's parallel evaluation
//!   makes. Routing is deterministic: the same stream shards identically
//!   on every run, and results are independent of the shard count.
//! * **Watermarks**: whenever the released watermark crosses a window-close
//!   boundary, it is broadcast so shards that received no recent events
//!   still close their windows — results stream out incrementally instead
//!   of materializing at the end.
//! * **Emission**: closed-window results flow through a bounded channel;
//!   [`StreamExecutor::poll_results`] drains it without blocking,
//!   [`StreamExecutor::finish`] flushes the pipeline and joins the workers.
//!
//! The legacy entry points are thin wrappers: `GretaEngine::run` drives the
//! inline single-shard path ([`drive_batch`]), `run_parallel` builds an
//! executor, feeds it, and sorts the combined output.

use crate::agg::TrendNum;
use crate::engine::{EngineConfig, EngineStats, GretaEngine};
use crate::grouping::StreamRouting;
use crate::reorder::ReorderBuffer;
use crate::results::WindowResult;
use crate::EngineError;
use crate::MemoryFootprint;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use greta_query::CompiledQuery;
use greta_types::{Event, SchemaRegistry, Time};
use std::thread::JoinHandle;

/// What to do with an event that arrives later than the reorder slack
/// allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Silently drop the event (counted in [`ExecutorStats::late_dropped`]).
    #[default]
    Drop,
    /// Keep the event for the caller ([`StreamExecutor::take_diverted`]) —
    /// e.g. to route into a correction stream.
    Divert,
    /// Fail the `push` with [`EngineError::Late`].
    Error,
}

/// Tuning knobs for [`StreamExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Shard workers. Clamped to 1 for queries without `GROUP-BY` (nothing
    /// to partition by — the paper's scaling model). Must be ≥ 1.
    pub shards: usize,
    /// Reorder slack in ticks: events may arrive up to this much behind the
    /// maximum time stamp seen and still be processed in order.
    pub slack: u64,
    /// Policy for events later than `slack`.
    pub late_policy: LatePolicy,
    /// Per-shard input queue capacity (events; backpressure beyond it).
    pub channel_capacity: usize,
    /// Result channel capacity (rows; callers that never poll get
    /// backpressure once this many rows are waiting).
    pub result_capacity: usize,
    /// Configuration for the per-shard engines.
    pub engine: EngineConfig,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            slack: 0,
            late_policy: LatePolicy::Drop,
            channel_capacity: 4096,
            result_capacity: 1 << 16,
            engine: EngineConfig::default(),
        }
    }
}

/// Executor counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorStats {
    /// Events offered to [`StreamExecutor::push`].
    pub pushed: u64,
    /// Events released (in order) to the shards.
    pub released: u64,
    /// Late events dropped under [`LatePolicy::Drop`].
    pub late_dropped: u64,
    /// Late events kept under [`LatePolicy::Divert`].
    pub late_diverted: u64,
    /// Events delivered to every shard (broadcast types).
    pub broadcasts: u64,
    /// Watermark messages broadcast to the shards.
    pub watermarks: u64,
    /// Aggregated per-shard engine counters (populated by `finish`).
    pub engine: EngineStats,
    /// Summed per-shard peak memory in bytes (populated by `finish`).
    pub peak_memory_bytes: usize,
}

enum Msg {
    Event(Event),
    Watermark(Time),
}

struct WorkerReport {
    stats: EngineStats,
    peak_bytes: usize,
}

/// The push-based, sharded GRETA runtime. See the [module docs](self).
///
/// Results are emitted as windows close. Rows drained by one
/// [`poll_results`](Self::poll_results) call arrive in per-shard order but
/// may interleave across shards; [`finish`](Self::finish) returns its
/// remainder sorted by `(window, group)`. Sorting the concatenation of all
/// drains yields byte-identical output for any shard count.
pub struct StreamExecutor<N: TrendNum = f64> {
    shards: usize,
    routing: StreamRouting,
    reorder: ReorderBuffer,
    late_policy: LatePolicy,
    senders: Vec<Sender<Msg>>,
    results_rx: Receiver<WindowResult<N>>,
    workers: Vec<JoinHandle<Result<WorkerReport, EngineError>>>,
    diverted: Vec<Event>,
    /// Rows drained off the result channel while a shard queue was full;
    /// returned by the next `poll_results`/`finish`.
    pending: Vec<WindowResult<N>>,
    stats: ExecutorStats,
    /// Window-close boundary index already broadcast (⌊(wm−within)/slide⌋).
    last_close_idx: Option<u64>,
    window_within: u64,
    window_slide: u64,
    finished: bool,
}

impl<N: TrendNum> StreamExecutor<N> {
    /// Spawn the shard workers for `query` under `config`.
    pub fn new(
        query: CompiledQuery,
        registry: SchemaRegistry,
        config: ExecutorConfig,
    ) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::Config("shards must be ≥ 1".into()));
        }
        let routing = StreamRouting::new(&query, &registry);
        routing.validate(&query, &registry)?;
        let shards = if query.group_by.is_empty() {
            1
        } else {
            config.shards
        };
        let (results_tx, results_rx) = channel::bounded(config.result_capacity.max(1));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<Msg>(config.channel_capacity.max(1));
            senders.push(tx);
            let query = query.clone();
            let registry = registry.clone();
            let engine_config = config.engine;
            let results_tx = results_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("greta-shard-{shard}"))
                    .spawn(move || worker_loop::<N>(query, registry, engine_config, rx, results_tx))
                    .map_err(|e| EngineError::Worker(e.to_string()))?,
            );
        }
        drop(results_tx); // workers hold the only senders now
        Ok(StreamExecutor {
            shards,
            routing,
            reorder: ReorderBuffer::new(config.slack),
            late_policy: config.late_policy,
            senders,
            results_rx,
            workers,
            diverted: Vec::new(),
            pending: Vec::new(),
            stats: ExecutorStats::default(),
            last_close_idx: None,
            window_within: query.window.within,
            window_slide: query.window.slide,
            finished: false,
        })
    }

    /// Number of shard workers actually running.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Offer one event. Events may arrive out of order within the
    /// configured slack; beyond it the [`LatePolicy`] applies. When a
    /// shard's input queue is full, the call drains ready results into an
    /// internal buffer while it waits (so a caller that never polls cannot
    /// deadlock the pipeline) and returns once the event is queued.
    pub fn push(&mut self, e: Event) -> Result<(), EngineError> {
        if self.finished {
            return Err(EngineError::Config(
                "push after finish() on StreamExecutor".into(),
            ));
        }
        self.stats.pushed += 1;
        match self.reorder.push(e) {
            Ok(released) => self.route_all(released),
            Err(late) => {
                match self.late_policy {
                    LatePolicy::Drop => self.stats.late_dropped += 1,
                    LatePolicy::Divert => {
                        self.stats.late_diverted += 1;
                        self.diverted.push(late);
                    }
                    LatePolicy::Error => {
                        return Err(EngineError::Late {
                            slack: self.reorder.slack(),
                            watermark: self.reorder.watermark().map(Time::ticks).unwrap_or(0),
                            got: late.time.ticks(),
                        })
                    }
                }
                Ok(())
            }
        }
    }

    /// Drain every result row emitted so far, without blocking. Windows are
    /// emitted as the watermark passes their end, so results stream while
    /// events are still being pushed.
    pub fn poll_results(&mut self) -> Vec<WindowResult<N>> {
        let mut out = std::mem::take(&mut self.pending);
        while let Ok(row) = self.results_rx.try_recv() {
            out.push(row);
        }
        out
    }

    /// End of stream: flush the reorder buffer, close all remaining
    /// windows, join the workers, and return the remaining rows sorted by
    /// `(window, group)`. Also finalizes [`stats`](Self::stats). Idempotent.
    pub fn finish(&mut self) -> Result<Vec<WindowResult<N>>, EngineError> {
        if self.finished {
            return Ok(Vec::new());
        }
        self.finished = true;
        let tail = self.reorder.flush();
        let route_result = self.route_all(tail);
        // Close the input channels regardless, so workers always terminate.
        self.senders.clear();
        // Drain concurrently with the workers' final flush: recv() ends
        // when every worker has dropped its result sender.
        let mut rows = std::mem::take(&mut self.pending);
        while let Ok(row) = self.results_rx.recv() {
            rows.push(row);
        }
        let mut first_err = route_result.err();
        for w in self.workers.drain(..) {
            match w.join() {
                Ok(Ok(report)) => {
                    let s = &mut self.stats.engine;
                    s.events += report.stats.events;
                    s.vertices += report.stats.vertices;
                    s.edges += report.stats.edges;
                    s.results += report.stats.results;
                    self.stats.peak_memory_bytes += report.peak_bytes;
                }
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or(Some(EngineError::Worker("shard worker panicked".into())))
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        Ok(rows)
    }

    /// Executor counters. Engine aggregates and peak memory are only
    /// populated once [`finish`](Self::finish) has run.
    pub fn stats(&self) -> ExecutorStats {
        self.stats
    }

    /// Take the events diverted under [`LatePolicy::Divert`] so far.
    pub fn take_diverted(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.diverted)
    }

    fn route_all(&mut self, released: Vec<Event>) -> Result<(), EngineError> {
        for e in released {
            self.stats.released += 1;
            let wm = e.time;
            match self.routing.shard_of(&e, self.shards) {
                None => {
                    self.stats.broadcasts += 1;
                    for i in 0..self.senders.len() {
                        let msg = Msg::Event(e.clone());
                        self.send(i, msg)?;
                    }
                }
                Some(shard) => self.send(shard, Msg::Event(e))?,
            }
            self.broadcast_watermark(wm)?;
        }
        Ok(())
    }

    /// Broadcast `wm` iff it crossed a window-close boundary since the last
    /// broadcast — watermarks only matter when they close windows, so this
    /// keeps watermark traffic at one message per shard per closed window.
    fn broadcast_watermark(&mut self, wm: Time) -> Result<(), EngineError> {
        let t = wm.ticks();
        if t < self.window_within {
            return Ok(());
        }
        let close_idx = (t - self.window_within) / self.window_slide.max(1);
        if self.last_close_idx == Some(close_idx) {
            return Ok(());
        }
        self.last_close_idx = Some(close_idx);
        self.stats.watermarks += 1;
        for i in 0..self.senders.len() {
            self.send(i, Msg::Watermark(wm))?;
        }
        Ok(())
    }

    /// Deliver `msg` to a shard without ever blocking this thread for good:
    /// while the shard's input queue is full, drain the result channel into
    /// the pending buffer (the pushing thread is the only result consumer,
    /// so parking in a blocking `send` while workers wait to emit rows
    /// would deadlock the pipeline).
    fn send(&mut self, shard: usize, msg: Msg) -> Result<(), EngineError> {
        let mut msg = msg;
        loop {
            match self.senders[shard].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) => {
                    msg = back;
                    let mut drained = false;
                    while let Ok(row) = self.results_rx.try_recv() {
                        self.pending.push(row);
                        drained = true;
                    }
                    if !drained {
                        std::thread::yield_now();
                    }
                }
                Err(TrySendError::Disconnected(_)) => return Err(self.reap_after_failure()),
            }
        }
    }

    /// A worker vanished: close all inputs, drain results while the
    /// surviving workers flush (joining a worker that is blocked sending
    /// rows would hang), and surface the first real worker error.
    fn reap_after_failure(&mut self) -> EngineError {
        self.senders.clear();
        self.finished = true;
        let mut err = EngineError::Worker("shard input channel closed".into());
        let mut found = false;
        for w in self.workers.drain(..) {
            while !w.is_finished() {
                while let Ok(row) = self.results_rx.try_recv() {
                    self.pending.push(row);
                }
                std::thread::yield_now();
            }
            match w.join() {
                Ok(Err(e)) if !found => {
                    err = e;
                    found = true;
                }
                Ok(_) => {}
                Err(_) if !found => {
                    err = EngineError::Worker("shard worker panicked".into());
                }
                Err(_) => {}
            }
        }
        err
    }
}

impl<N: TrendNum> Drop for StreamExecutor<N> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // Close inputs, discard pending results, reap the workers.
        self.senders.clear();
        while self.results_rx.try_recv().is_ok() {}
        for w in self.workers.drain(..) {
            // Workers may be blocked sending results; keep draining while
            // they flush so the join cannot deadlock.
            while !w.is_finished() {
                let _ = self.results_rx.try_recv();
                std::thread::yield_now();
            }
            let _ = w.join();
        }
    }
}

fn worker_loop<N: TrendNum>(
    query: CompiledQuery,
    registry: SchemaRegistry,
    config: EngineConfig,
    rx: Receiver<Msg>,
    results_tx: Sender<WindowResult<N>>,
) -> Result<WorkerReport, EngineError> {
    let mut engine = GretaEngine::<N>::with_config(query, registry, config)?;
    let report = |engine: &GretaEngine<N>| WorkerReport {
        stats: engine.stats(),
        peak_bytes: engine.peak_memory_bytes().max(engine.memory_bytes()),
    };
    for msg in rx.iter() {
        match msg {
            Msg::Event(e) => engine.process(&e)?,
            Msg::Watermark(t) => engine.advance_watermark(t),
        }
        for row in engine.poll_results() {
            if results_tx.send(row).is_err() {
                // Executor dropped without finish(): stop quietly.
                return Ok(report(&engine));
            }
        }
    }
    for row in engine.finish() {
        if results_tx.send(row).is_err() {
            break;
        }
    }
    Ok(report(&engine))
}

/// Inline batch driver: the single-shard, zero-thread execution path that
/// [`GretaEngine::run`] wraps. Processing an in-order batch through an
/// engine and draining incrementally is exactly what one shard worker does.
pub(crate) fn drive_batch<N: TrendNum>(
    engine: &mut GretaEngine<N>,
    events: &[Event],
) -> Result<Vec<WindowResult<N>>, EngineError> {
    let mut out = Vec::new();
    for e in events {
        engine.process(e)?;
        out.extend(engine.poll_results());
    }
    out.extend(engine.finish());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::EventBuilder;

    fn grouped_setup() -> (SchemaRegistry, CompiledQuery, Vec<Event>) {
        let mut reg = SchemaRegistry::new();
        reg.register_type("M", &["grp", "load"]).unwrap();
        let q = CompiledQuery::parse(
            "RETURN grp, COUNT(*) PATTERN M+ WHERE M.load < NEXT(M).load \
             GROUP-BY grp WITHIN 100 SLIDE 50",
            &reg,
        )
        .unwrap();
        let events: Vec<Event> = (0..240u64)
            .map(|t| {
                EventBuilder::new(&reg, "M")
                    .unwrap()
                    .at(Time(t))
                    .set("grp", (t % 7) as i64)
                    .unwrap()
                    .set("load", ((t * 31) % 17) as f64)
                    .unwrap()
                    .build()
            })
            .collect();
        (reg, q, events)
    }

    fn sorted<N: TrendNum>(mut rows: Vec<WindowResult<N>>) -> Vec<WindowResult<N>> {
        rows.sort_by(|a, b| a.window.cmp(&b.window).then_with(|| a.group.cmp(&b.group)));
        rows
    }

    #[test]
    fn sharded_executor_matches_sequential_engine() {
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        for shards in [1, 2, 4] {
            let mut exec = StreamExecutor::<u64>::new(
                q.clone(),
                reg.clone(),
                ExecutorConfig {
                    shards,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rows = Vec::new();
            for e in &events {
                exec.push(e.clone()).unwrap();
                rows.extend(exec.poll_results());
            }
            rows.extend(exec.finish().unwrap());
            assert_eq!(sorted(rows), expect, "shards={shards}");
            let stats = exec.stats();
            assert_eq!(stats.pushed, events.len() as u64);
            assert_eq!(stats.engine.events, events.len() as u64);
        }
    }

    #[test]
    fn results_stream_incrementally_not_only_at_finish() {
        let (reg, q, events) = grouped_setup();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut streamed = 0usize;
        for e in &events {
            exec.push(e.clone()).unwrap();
            streamed += exec.poll_results().len();
        }
        // Workers flush asynchronously; give the last close a moment.
        for _ in 0..100 {
            streamed += exec.poll_results().len();
            if streamed > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(streamed > 0, "no rows before finish()");
        exec.finish().unwrap();
    }

    #[test]
    fn late_policies() {
        let mk = |policy| {
            let mut reg = SchemaRegistry::new();
            reg.register_type("A", &[]).unwrap();
            let q = CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg)
                .unwrap();
            let tid = reg.type_id("A").unwrap();
            let exec = StreamExecutor::<u64>::new(
                q,
                reg,
                ExecutorConfig {
                    shards: 1,
                    slack: 2,
                    late_policy: policy,
                    ..Default::default()
                },
            )
            .unwrap();
            (exec, tid)
        };
        let ev = |tid, t| Event::new_unchecked(tid, Time(t), vec![]);

        // Drop: the late event vanishes but is counted.
        let (mut exec, tid) = mk(LatePolicy::Drop);
        for t in [10u64, 20, 5] {
            exec.push(ev(tid, t)).unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(exec.stats().late_dropped, 1);
        assert_eq!(rows[0].values[0].to_f64(), 3.0); // {10},{20},{10,20}

        // Divert: the late event is handed back.
        let (mut exec, tid) = mk(LatePolicy::Divert);
        for t in [10u64, 20, 5] {
            exec.push(ev(tid, t)).unwrap();
        }
        exec.finish().unwrap();
        let diverted = exec.take_diverted();
        assert_eq!(exec.stats().late_diverted, 1);
        assert_eq!(diverted.len(), 1);
        assert_eq!(diverted[0].time, Time(5));

        // Error: push fails loudly.
        let (mut exec, tid) = mk(LatePolicy::Error);
        exec.push(ev(tid, 10)).unwrap();
        exec.push(ev(tid, 20)).unwrap();
        let err = exec.push(ev(tid, 5)).unwrap_err();
        assert!(matches!(err, EngineError::Late { got: 5, .. }), "{err}");
        exec.finish().unwrap();
    }

    #[test]
    fn slack_reorders_disordered_input() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let tid = reg.type_id("A").unwrap();
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 1,
                slack: 5,
                late_policy: LatePolicy::Error,
                ..Default::default()
            },
        )
        .unwrap();
        for t in [2u64, 1, 4, 3, 5] {
            exec.push(Event::new_unchecked(tid, Time(t), vec![]))
                .unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(rows[0].values[0].to_f64(), 31.0); // 2^5 - 1
        assert_eq!(exec.stats().released, 5);
    }

    #[test]
    fn ungrouped_query_clamps_to_one_shard() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
        let exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exec.shards(), 1);
    }

    #[test]
    fn zero_shards_rejected_and_push_after_finish_errors() {
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10", &reg).unwrap();
        assert!(StreamExecutor::<u64>::new(
            q.clone(),
            reg.clone(),
            ExecutorConfig {
                shards: 0,
                ..Default::default()
            },
        )
        .is_err());
        let tid = reg.type_id("A").unwrap();
        let mut exec = StreamExecutor::<u64>::new(q, reg, ExecutorConfig::default()).unwrap();
        exec.finish().unwrap();
        assert!(exec.finish().unwrap().is_empty()); // idempotent
        assert!(exec
            .push(Event::new_unchecked(tid, Time(1), vec![]))
            .is_err());
    }

    #[test]
    fn poll_free_caller_with_tiny_channels_cannot_deadlock() {
        // Regression: with a full result channel and full shard queues, a
        // caller that never polls used to park forever in push()/finish().
        // The sender now drains results into an internal buffer instead.
        let (reg, q, events) = grouped_setup();
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 2,
                channel_capacity: 2,
                result_capacity: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap(); // no poll_results() on purpose
        }
        let rows = exec.finish().unwrap();
        assert_eq!(sorted(rows), expect);
    }

    #[test]
    fn broadcast_types_reach_all_shards() {
        // Q3-style leading negation with a sub-key type, 3 shards.
        let mut reg = SchemaRegistry::new();
        reg.register_type("Accident", &["segment"]).unwrap();
        reg.register_type("Position", &["vehicle", "segment"])
            .unwrap();
        let q = CompiledQuery::parse(
            "RETURN segment, COUNT(*) PATTERN SEQ(NOT Accident X, Position P+) \
             WHERE [P.vehicle, segment] GROUP-BY segment WITHIN 100 SLIDE 100",
            &reg,
        )
        .unwrap();
        let pos = |t: u64, v: i64, s: i64| {
            EventBuilder::new(&reg, "Position")
                .unwrap()
                .at(Time(t))
                .set("vehicle", v)
                .unwrap()
                .set("segment", s)
                .unwrap()
                .build()
        };
        let acc = |t: u64, s: i64| {
            EventBuilder::new(&reg, "Accident")
                .unwrap()
                .at(Time(t))
                .set("segment", s)
                .unwrap()
                .build()
        };
        let events = vec![
            pos(1, 1, 1),
            pos(1, 2, 2),
            acc(2, 1),
            pos(3, 1, 1),
            pos(3, 2, 2),
        ];
        let mut engine = GretaEngine::<u64>::new(q.clone(), reg.clone()).unwrap();
        let expect = sorted(engine.run(&events).unwrap());
        let mut exec = StreamExecutor::<u64>::new(
            q,
            reg,
            ExecutorConfig {
                shards: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for e in &events {
            exec.push(e.clone()).unwrap();
        }
        let rows = exec.finish().unwrap();
        assert_eq!(sorted(rows), expect);
        assert_eq!(exec.stats().broadcasts, 1);
    }
}
