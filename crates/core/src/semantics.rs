//! Event-selection semantics (paper §9, Table 1).
//!
//! | semantics            | skipped events | # trends    |
//! |----------------------|----------------|-------------|
//! | skip-till-any-match  | any            | exponential |
//! | skip-till-next-match | irrelevant     | polynomial  |
//! | contiguous           | none           | polynomial  |
//!
//! The semantics only changes which previous events count as *adjacent*
//! (fewer graph edges ⇒ fewer trends); the aggregation calculus is
//! unchanged (paper §9).

/// Which events may be skipped between adjacent trend events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Semantics {
    /// Detect **all** trends: every compatible previous event is a
    /// predecessor (the paper's focus; worst-case exponential trend count).
    #[default]
    SkipTillAny,
    /// Skip only events that cannot be matched: per predecessor state, only
    /// the **latest** compatible event is a predecessor.
    SkipTillNext,
    /// Skip nothing: only the immediately preceding event of the partition
    /// may be a predecessor.
    Contiguous,
}

impl Semantics {
    /// Human-readable name (used by the bench harness output).
    pub fn name(self) -> &'static str {
        match self {
            Semantics::SkipTillAny => "skip-till-any-match",
            Semantics::SkipTillNext => "skip-till-next-match",
            Semantics::Contiguous => "contiguous",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_skip_till_any() {
        assert_eq!(Semantics::default(), Semantics::SkipTillAny);
        assert_eq!(Semantics::SkipTillNext.name(), "skip-till-next-match");
    }
}
