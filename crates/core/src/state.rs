//! Binary (de)serialization of runtime state — the building blocks of
//! durability snapshots.
//!
//! Each piece of engine state gets a small, versionless record encoding
//! (the containing snapshot blob carries the version byte): partition keys,
//! per-vertex aggregate states, graph vertices, and emitted result rows.
//! Container modules ([`graph`](crate::graph), [`engine`](crate::engine),
//! [`reorder`](crate::reorder)) compose these into whole-component state
//! blobs; the [`executor`](crate::executor) composes those into the
//! per-epoch snapshot the durability layer persists.

use crate::agg::{AggState, TrendNum};
use crate::grouping::PartitionKey;
use crate::results::{OutValue, WindowResult};
use crate::storage::Vertex;
use greta_query::StateId;
use greta_types::codec::{put_u16, put_u32, put_u64, Reader};
use greta_types::{CodecError, Event, EventRef, Time, Value};

/// Append an `Option<u64>` (presence byte + value).
pub(crate) fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

/// Decode an `Option<u64>` written by [`put_opt_u64`].
pub(crate) fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        t => Err(CodecError(format!("bad Option tag {t}"))),
    }
}

/// Append a partition key (`None` marks a sub-key hole).
pub(crate) fn encode_key(k: &PartitionKey, out: &mut Vec<u8>) {
    put_u32(out, k.0.len() as u32);
    for v in &k.0 {
        match v {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

/// Decode a partition key written by [`encode_key`].
pub(crate) fn decode_key(r: &mut Reader<'_>) -> Result<PartitionKey, CodecError> {
    let n = r.seq_len(1)?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(match r.u8()? {
            0 => None,
            1 => Some(Value::decode(r)?),
            t => return Err(CodecError(format!("bad key slot tag {t}"))),
        });
    }
    Ok(PartitionKey(vals))
}

/// Append an aggregate state (slot counts written explicitly so decoding
/// never trusts the layout).
pub(crate) fn encode_agg_state<N: TrendNum>(st: &AggState<N>, out: &mut Vec<u8>) {
    st.count.encode(out);
    put_u32(out, st.counts_e.len() as u32);
    for n in st.counts_e.iter() {
        n.encode(out);
    }
    put_u32(out, st.mins.len() as u32);
    for m in st.mins.iter() {
        put_u64(out, m.to_bits());
    }
    put_u32(out, st.maxs.len() as u32);
    for m in st.maxs.iter() {
        put_u64(out, m.to_bits());
    }
    put_u32(out, st.sums.len() as u32);
    for n in st.sums.iter() {
        n.encode(out);
    }
}

/// Decode an aggregate state written by [`encode_agg_state`].
pub(crate) fn decode_agg_state<N: TrendNum>(r: &mut Reader<'_>) -> Result<AggState<N>, CodecError> {
    let count = N::decode(r)?;
    let n = r.seq_len(1)?;
    let mut counts_e = Vec::with_capacity(n);
    for _ in 0..n {
        counts_e.push(N::decode(r)?);
    }
    let n = r.seq_len(8)?;
    let mut mins = Vec::with_capacity(n);
    for _ in 0..n {
        mins.push(f64::from_bits(r.u64()?));
    }
    let n = r.seq_len(8)?;
    let mut maxs = Vec::with_capacity(n);
    for _ in 0..n {
        maxs.push(f64::from_bits(r.u64()?));
    }
    let n = r.seq_len(1)?;
    let mut sums = Vec::with_capacity(n);
    for _ in 0..n {
        sums.push(N::decode(r)?);
    }
    Ok(AggState {
        count,
        counts_e: counts_e.into_boxed_slice(),
        mins: mins.into_boxed_slice(),
        maxs: maxs.into_boxed_slice(),
        sums: sums.into_boxed_slice(),
    })
}

/// Append a graph vertex.
pub(crate) fn encode_vertex<N: TrendNum>(v: &Vertex<N>, out: &mut Vec<u8>) {
    v.event.encode(out);
    put_u16(out, v.state.0);
    put_u64(out, v.seq);
    put_u64(out, v.latest_start.ticks());
    put_u32(out, v.aggs.len() as u32);
    for (w, st) in &v.aggs {
        put_u64(out, *w);
        encode_agg_state(st, out);
    }
}

/// Decode a graph vertex written by [`encode_vertex`].
pub(crate) fn decode_vertex<N: TrendNum>(r: &mut Reader<'_>) -> Result<Vertex<N>, CodecError> {
    let event = Event::decode(r)?.into_ref();
    let state = StateId(r.u16()?);
    let seq = r.u64()?;
    let latest_start = Time(r.u64()?);
    let n = r.seq_len(8)?;
    let mut aggs = Vec::with_capacity(n);
    for _ in 0..n {
        let w = r.u64()?;
        aggs.push((w, decode_agg_state(r)?));
    }
    Ok(Vertex {
        event,
        state,
        seq,
        latest_start,
        aggs,
    })
}

/// Append a result row.
pub(crate) fn encode_window_result<N: TrendNum>(row: &WindowResult<N>, out: &mut Vec<u8>) {
    put_u64(out, row.window);
    encode_key(&row.group, out);
    put_u32(out, row.values.len() as u32);
    for v in &row.values {
        match v {
            OutValue::Count(n) => {
                out.push(0);
                n.encode(out);
            }
            OutValue::Float(f) => {
                out.push(1);
                put_u64(out, f.to_bits());
            }
        }
    }
}

/// Decode a result row written by [`encode_window_result`].
pub(crate) fn decode_window_result<N: TrendNum>(
    r: &mut Reader<'_>,
) -> Result<WindowResult<N>, CodecError> {
    let window = r.u64()?;
    let group = decode_key(r)?;
    let n = r.seq_len(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(match r.u8()? {
            0 => OutValue::Count(N::decode(r)?),
            1 => OutValue::Float(f64::from_bits(r.u64()?)),
            t => return Err(CodecError(format!("bad OutValue tag {t}"))),
        });
    }
    Ok(WindowResult {
        window,
        group,
        values,
    })
}

/// Append a list of shared events.
pub(crate) fn encode_events<'a>(
    events: impl ExactSizeIterator<Item = &'a EventRef>,
    out: &mut Vec<u8>,
) {
    put_u32(out, events.len() as u32);
    for e in events {
        e.encode(out);
    }
}

/// Decode a list of events written by [`encode_events`].
pub(crate) fn decode_events(r: &mut Reader<'_>) -> Result<Vec<EventRef>, CodecError> {
    let n = r.seq_len(11)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Event::decode(r)?.into_ref());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggLayout;
    use greta_bignum::BigUint;
    use greta_types::TypeId;

    #[test]
    fn agg_state_roundtrip_all_carriers() {
        use greta_query::compile::{AggKind, CompiledAgg};
        let a = |kind| CompiledAgg {
            label: String::new(),
            kind,
        };
        let layout = AggLayout::new(&[
            a(AggKind::Count(TypeId(0))),
            a(AggKind::Count(TypeId(1))),
            a(AggKind::Min(TypeId(0), greta_types::AttrId(0))),
            a(AggKind::Max(TypeId(0), greta_types::AttrId(0))),
            a(AggKind::Sum(TypeId(1), greta_types::AttrId(1))),
        ]);
        fn check<N: TrendNum>(layout: &AggLayout, mk: impl Fn(u64) -> N) {
            let mut st = AggState::<N>::zero(layout);
            st.count = mk(17);
            st.counts_e[0] = mk(3);
            st.mins[0] = -2.5;
            st.maxs[0] = f64::NEG_INFINITY;
            st.sums[0] = mk(123456789);
            let mut buf = Vec::new();
            encode_agg_state(&st, &mut buf);
            let got: AggState<N> = decode_agg_state(&mut Reader::new(&buf)).unwrap();
            assert_eq!(got, st);
        }
        check::<u64>(&layout, |v| v);
        check::<f64>(&layout, |v| v as f64);
        check::<BigUint>(&layout, BigUint::from_u64);
    }

    #[test]
    fn key_roundtrip_with_subkey_holes() {
        let k = PartitionKey(vec![
            Some(Value::Int(7)),
            None,
            Some(Value::from("IBM")),
            Some(Value::Float(1.25)),
        ]);
        let mut buf = Vec::new();
        encode_key(&k, &mut buf);
        assert_eq!(decode_key(&mut Reader::new(&buf)).unwrap(), k);
    }

    #[test]
    fn vertex_roundtrip() {
        let layout = AggLayout::default();
        let mut st = AggState::<u64>::zero(&layout);
        st.count = 42;
        let v = Vertex {
            event: Event::new_unchecked(TypeId(3), Time(99), vec![Value::Int(5)]).into_ref(),
            state: StateId(2),
            seq: 17,
            latest_start: Time(90),
            aggs: vec![(4, st.clone()), (5, st)],
        };
        let mut buf = Vec::new();
        encode_vertex(&v, &mut buf);
        let got: Vertex<u64> = decode_vertex(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got.event, v.event);
        assert_eq!(got.state, v.state);
        assert_eq!(got.seq, v.seq);
        assert_eq!(got.latest_start, v.latest_start);
        assert_eq!(got.aggs, v.aggs);
    }

    #[test]
    fn window_result_roundtrip() {
        let row = WindowResult::<f64> {
            window: 9,
            group: PartitionKey(vec![Some(Value::Int(1))]),
            values: vec![OutValue::Count(8.0), OutValue::Float(f64::NAN)],
        };
        let mut buf = Vec::new();
        encode_window_result(&row, &mut buf);
        let got: WindowResult<f64> = decode_window_result(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got.window, row.window);
        assert_eq!(got.group, row.group);
        assert_eq!(got.values[0], row.values[0]);
        // NaN round-trips bit-exactly even though NaN != NaN.
        match (&got.values[1], &row.values[1]) {
            (OutValue::Float(a), OutValue::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            _ => panic!("expected floats"),
        }
    }
}
