//! Incremental aggregation calculus (paper Theorem 4.3 and Theorem 9.1).
//!
//! Every vertex carries, per sliding window, an [`AggState`]: the aggregate
//! of all (sub-)trends that start at a START event and end at this vertex.
//! When a new event is inserted, its state is the *merge* of its
//! predecessors' states plus its own contribution — each edge is traversed
//! exactly once, which is what makes GRETA quadratic instead of exponential.
//!
//! `COUNT`/`SUM` values grow like 2ⁿ under skip-till-any-match, so the
//! numeric carrier is pluggable via [`TrendNum`]: `u64` (saturating),
//! `f64` (exact below 2⁵³, then approximate), or [`greta_bignum::BigUint`]
//! (always exact).

use greta_bignum::BigUint;
use greta_query::compile::{AggKind, CompiledAgg};
use greta_types::codec::{put_u32, put_u64, Reader};
use greta_types::{AttrId, CodecError, Event, TypeId};

/// Numeric carrier for trend counts and sums.
pub trait TrendNum: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity (one trend).
    fn one() -> Self;
    /// True iff zero.
    fn is_zero(&self) -> bool;
    /// `self += other`.
    fn add_assign(&mut self, other: &Self);
    /// `attr · count` — the per-event contribution to `SUM(E.attr)`
    /// (Theorem 9.1: `e.sum = e.attr * e.count + Σ p.sum`).
    fn scale_by_attr(count: &Self, attr: f64) -> Self;
    /// Lossy conversion for reporting and AVG.
    fn to_f64(&self) -> f64;
    /// Exact decimal rendering.
    fn display(&self) -> String;
    /// Heap bytes beyond `size_of::<Self>()` (memory accounting).
    fn heap_size(&self) -> usize {
        0
    }
    /// Append the binary encoding (durability snapshots).
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode a value written by [`encode`](Self::encode).
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>
    where
        Self: Sized;
}

impl TrendNum for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn add_assign(&mut self, other: &Self) {
        *self = self.saturating_add(*other);
    }
    fn scale_by_attr(count: &Self, attr: f64) -> Self {
        let a = attr.max(0.0).round() as u64;
        count.saturating_mul(a)
    }
    fn to_f64(&self) -> f64 {
        *self as f64
    }
    fn display(&self) -> String {
        self.to_string()
    }
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl TrendNum for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn add_assign(&mut self, other: &Self) {
        *self += *other;
    }
    fn scale_by_attr(count: &Self, attr: f64) -> Self {
        count * attr
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn display(&self) -> String {
        if self.fract() == 0.0 && self.abs() < 1e15 {
            format!("{}", *self as i64)
        } else {
            format!("{self}")
        }
    }
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.to_bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl TrendNum for BigUint {
    fn zero() -> Self {
        BigUint::zero()
    }
    fn one() -> Self {
        BigUint::one()
    }
    fn is_zero(&self) -> bool {
        BigUint::is_zero(self)
    }
    fn add_assign(&mut self, other: &Self) {
        self.add_assign_ref(other);
    }
    fn scale_by_attr(count: &Self, attr: f64) -> Self {
        // Exact SUM over BigUint requires non-negative integral attributes.
        let mut c = count.clone();
        c.mul_u64(attr.max(0.0).round() as u64);
        c
    }
    fn to_f64(&self) -> f64 {
        BigUint::to_f64(self)
    }
    fn display(&self) -> String {
        self.to_string()
    }
    fn heap_size(&self) -> usize {
        BigUint::heap_size(self)
    }
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.limb_count() as u32);
        for &l in self.limbs() {
            put_u64(out, l);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.seq_len(8)?;
        let mut limbs = Vec::with_capacity(n);
        for _ in 0..n {
            limbs.push(r.u64()?);
        }
        Ok(BigUint::from_limbs(limbs))
    }
}

/// Dense per-event-type accessor of an [`AggLayout`]: the slots (and
/// attribute indexes) an event of one type contributes to, resolved once
/// at plan time so [`AggState::apply_own`] indexes straight into its
/// arrays instead of scanning every target per event.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct TypeAggOps {
    counts: Vec<usize>,
    mins: Vec<(usize, AttrId)>,
    maxs: Vec<(usize, AttrId)>,
    sums: Vec<(usize, AttrId)>,
}

/// Physical layout of an [`AggState`], derived from the query's aggregates.
/// Distinct targets are deduplicated: `AVG(E.a)` shares the `COUNT(E)` and
/// `SUM(E.a)` slots with any other aggregate needing them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggLayout {
    /// `COUNT(E)` slots (also AVG denominators).
    pub count_targets: Vec<TypeId>,
    /// `MIN(E.attr)` slots.
    pub min_targets: Vec<(TypeId, AttrId)>,
    /// `MAX(E.attr)` slots.
    pub max_targets: Vec<(TypeId, AttrId)>,
    /// `SUM(E.attr)` slots (also AVG numerators).
    pub sum_targets: Vec<(TypeId, AttrId)>,
    /// Per-type slot table, indexed by `TypeId` (compiled accessor).
    ops: Vec<TypeAggOps>,
}

impl AggLayout {
    /// Build the layout for a list of compiled aggregates.
    pub fn new(aggs: &[CompiledAgg]) -> AggLayout {
        let mut l = AggLayout::default();
        for a in aggs {
            match a.kind {
                AggKind::CountStar => {}
                AggKind::Count(t) => l.add_count(t),
                AggKind::Min(t, a) => push_unique(&mut l.min_targets, (t, a)),
                AggKind::Max(t, a) => push_unique(&mut l.max_targets, (t, a)),
                AggKind::Sum(t, a) => push_unique(&mut l.sum_targets, (t, a)),
                AggKind::Avg(t, a) => {
                    l.add_count(t);
                    push_unique(&mut l.sum_targets, (t, a));
                }
            }
        }
        l.build_ops();
        l
    }

    fn add_count(&mut self, t: TypeId) {
        if !self.count_targets.contains(&t) {
            self.count_targets.push(t);
        }
    }

    /// Resolve the dense per-type slot table from the target lists.
    fn build_ops(&mut self) {
        let max_ty = self
            .count_targets
            .iter()
            .copied()
            .chain(self.min_targets.iter().map(|(t, _)| *t))
            .chain(self.max_targets.iter().map(|(t, _)| *t))
            .chain(self.sum_targets.iter().map(|(t, _)| *t))
            .map(|t| t.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut ops = vec![TypeAggOps::default(); max_ty];
        for (i, t) in self.count_targets.iter().enumerate() {
            ops[t.0 as usize].counts.push(i);
        }
        for (i, (t, a)) in self.min_targets.iter().enumerate() {
            ops[t.0 as usize].mins.push((i, *a));
        }
        for (i, (t, a)) in self.max_targets.iter().enumerate() {
            ops[t.0 as usize].maxs.push((i, *a));
        }
        for (i, (t, a)) in self.sum_targets.iter().enumerate() {
            ops[t.0 as usize].sums.push((i, *a));
        }
        self.ops = ops;
    }

    /// Slot of `COUNT(E)`.
    pub fn count_slot(&self, t: TypeId) -> Option<usize> {
        self.count_targets.iter().position(|x| *x == t)
    }

    /// Slot of `SUM(E.attr)`.
    pub fn sum_slot(&self, t: TypeId, a: AttrId) -> Option<usize> {
        self.sum_targets.iter().position(|x| *x == (t, a))
    }

    /// Slot of `MIN(E.attr)`.
    pub fn min_slot(&self, t: TypeId, a: AttrId) -> Option<usize> {
        self.min_targets.iter().position(|x| *x == (t, a))
    }

    /// Slot of `MAX(E.attr)`.
    pub fn max_slot(&self, t: TypeId, a: AttrId) -> Option<usize> {
        self.max_targets.iter().position(|x| *x == (t, a))
    }
}

fn push_unique<T: PartialEq>(v: &mut Vec<T>, x: T) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Per-vertex per-window aggregate state (Theorem 9.1):
///
/// * `count`    — number of (sub-)trends ending at this vertex
/// * `counts_e` — `COUNT(E)` occurrences across those trends, per target
/// * `mins`/`maxs` — extrema of the tracked attributes across those trends
/// * `sums`     — `SUM(E.attr)` across those trends, per target
#[derive(Debug, Clone, PartialEq)]
pub struct AggState<N: TrendNum> {
    /// Trend count ending here (`e.count`).
    pub count: N,
    /// `COUNT(E)` per layout slot.
    pub counts_e: Box<[N]>,
    /// `MIN(E.attr)` per layout slot (`+∞` = no occurrence yet).
    pub mins: Box<[f64]>,
    /// `MAX(E.attr)` per layout slot (`-∞`).
    pub maxs: Box<[f64]>,
    /// `SUM(E.attr)` per layout slot.
    pub sums: Box<[N]>,
}

impl<N: TrendNum> AggState<N> {
    /// All-zero state for the given layout.
    pub fn zero(layout: &AggLayout) -> AggState<N> {
        AggState {
            count: N::zero(),
            counts_e: vec![N::zero(); layout.count_targets.len()].into_boxed_slice(),
            mins: vec![f64::INFINITY; layout.min_targets.len()].into_boxed_slice(),
            maxs: vec![f64::NEG_INFINITY; layout.max_targets.len()].into_boxed_slice(),
            sums: vec![N::zero(); layout.sum_targets.len()].into_boxed_slice(),
        }
    }

    /// Merge a predecessor's (or another END event's) state into this one:
    /// counts and sums add, extrema fold (the `Σ`/`min`/`max` of Thm 9.1).
    pub fn merge(&mut self, other: &AggState<N>) {
        self.count.add_assign(&other.count);
        for (a, b) in self.counts_e.iter_mut().zip(other.counts_e.iter()) {
            a.add_assign(b);
        }
        for (a, b) in self.mins.iter_mut().zip(other.mins.iter()) {
            *a = a.min(*b);
        }
        for (a, b) in self.maxs.iter_mut().zip(other.maxs.iter()) {
            *a = a.max(*b);
        }
        for (a, b) in self.sums.iter_mut().zip(other.sums.iter()) {
            a.add_assign(b);
        }
    }

    /// Apply the inserted event's own contribution (Theorem 9.1), after all
    /// predecessor states have been merged:
    ///
    /// * START events increment `count` by one (they begin a new trend);
    /// * if the event's type is a tracked target, fold its attribute into
    ///   `counts_e` / `mins` / `maxs` / `sums` weighted by the final count.
    pub fn apply_own(&mut self, event: &Event, is_start: bool, layout: &AggLayout) {
        if is_start {
            self.count.add_assign(&N::one());
        }
        // Dense accessor: one index by type id, then only the slots this
        // type actually feeds (resolved once in `AggLayout::new`).
        let Some(ops) = layout.ops.get(event.type_id.0 as usize) else {
            return;
        };
        for &i in &ops.counts {
            // e.countE = e.count + Σ p.countE; the Σ part is already in
            // counts_e from merge(), so add e.count.
            let c = self.count.clone();
            self.counts_e[i].add_assign(&c);
        }
        for &(i, a) in &ops.mins {
            self.mins[i] = self.mins[i].min(event.attr(a).as_f64());
        }
        for &(i, a) in &ops.maxs {
            self.maxs[i] = self.maxs[i].max(event.attr(a).as_f64());
        }
        for &(i, a) in &ops.sums {
            let contrib = N::scale_by_attr(&self.count, event.attr(a).as_f64());
            self.sums[i].add_assign(&contrib);
        }
    }

    /// Heap bytes (memory accounting).
    pub fn heap_size(&self) -> usize {
        let slots = self.counts_e.len() + self.sums.len();
        slots * std::mem::size_of::<N>()
            + (self.mins.len() + self.maxs.len()) * std::mem::size_of::<f64>()
            + self.count.heap_size()
            + self.counts_e.iter().map(TrendNum::heap_size).sum::<usize>()
            + self.sums.iter().map(TrendNum::heap_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_query::compile::CompiledAgg;
    use greta_types::{Time, Value};

    fn layout() -> AggLayout {
        // COUNT(A), MIN(A.0), MAX(A.0), SUM(A.0), AVG(A.0) over TypeId(0)
        let t = TypeId(0);
        let a = AttrId(0);
        AggLayout::new(&[
            CompiledAgg {
                label: "c".into(),
                kind: AggKind::Count(t),
            },
            CompiledAgg {
                label: "mn".into(),
                kind: AggKind::Min(t, a),
            },
            CompiledAgg {
                label: "mx".into(),
                kind: AggKind::Max(t, a),
            },
            CompiledAgg {
                label: "s".into(),
                kind: AggKind::Sum(t, a),
            },
            CompiledAgg {
                label: "avg".into(),
                kind: AggKind::Avg(t, a),
            },
        ])
    }

    fn ev(ty: u16, attr: f64, t: u64) -> Event {
        Event::new_unchecked(TypeId(ty), Time(t), vec![Value::Float(attr)])
    }

    #[test]
    fn layout_dedups_avg_slots() {
        let l = layout();
        assert_eq!(l.count_targets.len(), 1); // COUNT(A) and AVG share
        assert_eq!(l.sum_targets.len(), 1); // SUM and AVG share
        assert_eq!(l.min_targets.len(), 1);
        assert_eq!(l.max_targets.len(), 1);
    }

    #[test]
    fn start_event_contribution() {
        let l = layout();
        let mut s = AggState::<u64>::zero(&l);
        s.apply_own(&ev(0, 5.0, 1), true, &l);
        assert_eq!(s.count, 1);
        assert_eq!(s.counts_e[0], 1);
        assert_eq!(s.mins[0], 5.0);
        assert_eq!(s.maxs[0], 5.0);
        assert_eq!(s.sums[0], 5);
    }

    #[test]
    fn untracked_type_contributes_count_only() {
        let l = layout();
        let mut s = AggState::<u64>::zero(&l);
        s.apply_own(&ev(1, 99.0, 1), true, &l); // type B, not tracked
        assert_eq!(s.count, 1);
        assert_eq!(s.counts_e[0], 0);
        assert_eq!(s.mins[0], f64::INFINITY);
        assert_eq!(s.sums[0], 0);
    }

    #[test]
    fn figure_12_a4_state() {
        // Reproduce a4's intermediate aggregates from Fig. 12:
        // preds a1 (count 1, min 5, sum 5), b2 (count 1, carries a1's aggs),
        // a3 (count 3, min 5, sum 28). a4.attr = 4.
        let l = layout();
        let mut a1 = AggState::<u64>::zero(&l);
        a1.apply_own(&ev(0, 5.0, 1), true, &l);
        let mut b2 = AggState::<u64>::zero(&l);
        b2.merge(&a1);
        b2.apply_own(&ev(1, 0.0, 2), false, &l);
        assert_eq!(b2.count, 1);
        assert_eq!(b2.counts_e[0], 1);

        let mut a3 = AggState::<u64>::zero(&l);
        a3.merge(&a1);
        a3.merge(&b2);
        a3.apply_own(&ev(0, 6.0, 3), true, &l);
        assert_eq!(a3.count, 3);
        assert_eq!(a3.counts_e[0], 1 + 1 + 3); // 5
        assert_eq!(a3.sums[0], 5 + 5 + 6 * 3); // 28

        let mut a4 = AggState::<u64>::zero(&l);
        a4.merge(&a1);
        a4.merge(&b2);
        a4.merge(&a3);
        a4.apply_own(&ev(0, 4.0, 4), true, &l);
        assert_eq!(a4.count, 6); // 1 + (1+1+3)
        assert_eq!(a4.counts_e[0], 1 + 1 + 5 + 6); // 13
        assert_eq!(a4.mins[0], 4.0);
        assert_eq!(a4.sums[0], 5 + 5 + 28 + 4 * 6); // 62
    }

    #[test]
    fn carriers_agree_on_small_counts() {
        let l = layout();
        let mut u = AggState::<u64>::zero(&l);
        let mut f = AggState::<f64>::zero(&l);
        let mut b = AggState::<BigUint>::zero(&l);
        for i in 0..20 {
            let e = ev(0, i as f64, i);
            let (start, other_u) = (i % 2 == 0, u.clone());
            u.merge(&other_u);
            u.apply_own(&e, start, &l);
            let of = f.clone();
            f.merge(&of);
            f.apply_own(&e, start, &l);
            let ob = b.clone();
            b.merge(&ob);
            b.apply_own(&e, start, &l);
        }
        assert_eq!(u.count as f64, f.count);
        assert_eq!(b.count.to_f64(), f.count);
        assert_eq!(u.sums[0] as f64, f.sums[0]);
        assert_eq!(b.sums[0].to_f64(), f.sums[0]);
    }

    #[test]
    fn u64_saturates_instead_of_overflowing() {
        let mut x = u64::MAX - 1;
        TrendNum::add_assign(&mut x, &5u64);
        assert_eq!(x, u64::MAX);
        assert_eq!(u64::scale_by_attr(&u64::MAX, 2.0), u64::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TrendNum::display(&42u64), "42");
        assert_eq!(TrendNum::display(&42.0f64), "42");
        assert_eq!(TrendNum::display(&42.5f64), "42.5");
        assert_eq!(TrendNum::display(&BigUint::from_u64(42)), "42");
    }

    #[test]
    fn merge_is_commutative_on_extrema() {
        let l = layout();
        let mut s1 = AggState::<f64>::zero(&l);
        s1.apply_own(&ev(0, 3.0, 1), true, &l);
        let mut s2 = AggState::<f64>::zero(&l);
        s2.apply_own(&ev(0, 7.0, 2), true, &l);
        let mut a = s1.clone();
        a.merge(&s2);
        let mut b = s2.clone();
        b.merge(&s1);
        assert_eq!(a.mins, b.mins);
        assert_eq!(a.maxs, b.maxs);
        assert_eq!(a.count, b.count);
    }
}
