//! Runtime storage for one GRETA graph (paper §7, Fig. 11).
//!
//! Vertices live in a slab ([`VertexStore`]). For predecessor lookup they
//! are indexed by **Time Pane** → **template state** → **Vertex Tree**:
//!
//! * panes are consecutive time intervals of length `gcd(within, slide)`;
//!   window boundaries align with pane boundaries, so a whole pane (and its
//!   trees) is batch-deleted once its last window closed;
//! * each pane holds one ordered tree per template state, sorted by the
//!   attribute of that state's range-form edge predicate (falling back to
//!   event time), so edge predicates are answered with range queries.
//!
//! Edges are **not** stored: each edge is traversed exactly once, when the
//! newer event's aggregate is computed (paper §7).

use crate::agg::{AggState, TrendNum};
use crate::window::WindowId;
use greta_query::ast::CmpOp;
use greta_query::StateId;
use greta_types::{shared_heap_size, AttrId, EventRef, Time};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound;

/// Slab index of a vertex.
pub type VertexId = u32;

/// Totally ordered f64 key for the vertex trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A graph vertex: one matched event at one template state, carrying one
/// aggregate per window it falls into (paper §4.2 / §6).
#[derive(Debug, Clone)]
pub struct Vertex<N: TrendNum> {
    /// The matched event, shared with the ingest path and every other
    /// vertex instantiated from it (zero-copy event plane).
    pub event: EventRef,
    /// Template state this vertex instantiates.
    pub state: StateId,
    /// Arrival sequence within the owning partition graph (selection
    /// semantics; see `Semantics`).
    pub seq: u64,
    /// Latest start time over all (sub-)trends ending at this vertex —
    /// propagated like an aggregate; drives Definition 5 invalidation.
    pub latest_start: Time,
    /// Per-window aggregates, sorted by window id.
    pub aggs: Vec<(WindowId, AggState<N>)>,
}

impl<N: TrendNum> Vertex<N> {
    /// Aggregate for a window, if the vertex falls into it.
    pub fn agg(&self, wid: WindowId) -> Option<&AggState<N>> {
        self.aggs
            .binary_search_by_key(&wid, |(w, _)| *w)
            .ok()
            .map(|i| &self.aggs[i].1)
    }

    /// Approximate heap bytes of this vertex. The shared event payload is
    /// amortized over its current holders ([`shared_heap_size`]), so an
    /// event referenced by many vertices/shards is counted once overall —
    /// not once per reference.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + shared_heap_size(&self.event)
            + self
                .aggs
                .iter()
                .map(|(_, a)| std::mem::size_of::<(WindowId, AggState<N>)>() + a.heap_size())
                .sum::<usize>()
    }
}

/// Slab of vertices with free-list reuse and running byte accounting.
///
/// The byte charge of a vertex is recorded at insert time: with shared
/// `EventRef` payloads, [`Vertex::heap_size`] depends on the Arc strong
/// count at the moment of the call, so subtracting a *recomputed* size at
/// removal could drift (or underflow) as sharing changes. Each slot
/// remembers exactly what it charged.
#[derive(Debug, Default)]
pub struct VertexStore<N: TrendNum> {
    slots: Vec<Option<(Vertex<N>, usize)>>,
    free: Vec<VertexId>,
    live: usize,
    bytes: usize,
}

impl<N: TrendNum> VertexStore<N> {
    /// Empty store.
    pub fn new() -> Self {
        VertexStore {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            bytes: 0,
        }
    }

    /// Insert a vertex, returning its id.
    pub fn insert(&mut self, v: Vertex<N>) -> VertexId {
        let charged = v.heap_size();
        self.bytes += charged;
        self.live += 1;
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some((v, charged));
                id
            }
            None => {
                self.slots.push(Some((v, charged)));
                (self.slots.len() - 1) as VertexId
            }
        }
    }

    /// Shared access.
    pub fn get(&self, id: VertexId) -> &Vertex<N> {
        &self.slots[id as usize].as_ref().expect("live vertex").0
    }

    /// Remove a vertex (pane purge / trend pruning).
    pub fn remove(&mut self, id: VertexId) {
        if let Some((_, charged)) = self.slots[id as usize].take() {
            self.bytes = self.bytes.saturating_sub(charged);
            self.live -= 1;
            self.free.push(id);
        }
    }

    /// Number of live vertices.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Running byte estimate of live vertices.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Ordered index of one state's vertices within one pane.
#[derive(Debug, Default)]
struct StateTree {
    tree: BTreeMap<(OrdF64, u64), VertexId>,
}

/// Per-entry overhead estimate for memory accounting (key + value + BTree
/// node amortization).
pub const TREE_ENTRY_BYTES: usize = 48;

impl StateTree {
    fn insert(&mut self, key: f64, seq: u64, id: VertexId) {
        self.tree.insert((OrdF64(key), seq), id);
    }

    fn remove(&mut self, key: f64, seq: u64) {
        self.tree.remove(&(OrdF64(key), seq));
    }

    /// Visit ids whose key satisfies `key ⟨op⟩ bound`; `None` visits all.
    fn visit(&self, range: Option<(CmpOp, f64)>, f: &mut impl FnMut(VertexId)) {
        use Bound::*;
        type Key = (OrdF64, u64);
        let full = (
            (OrdF64(f64::NEG_INFINITY), 0),
            (OrdF64(f64::INFINITY), u64::MAX),
        );
        let (lo, hi): (Bound<Key>, Bound<Key>) = match range {
            None => (Included(full.0), Included(full.1)),
            Some((op, b)) => match op {
                CmpOp::Lt => (Included(full.0), Excluded((OrdF64(b), 0))),
                CmpOp::Le => (Included(full.0), Included((OrdF64(b), u64::MAX))),
                CmpOp::Gt => (Excluded((OrdF64(b), u64::MAX)), Included(full.1)),
                CmpOp::Ge => (Included((OrdF64(b), 0)), Included(full.1)),
                CmpOp::Eq => (Included((OrdF64(b), 0)), Included((OrdF64(b), u64::MAX))),
                // Ne cannot be a contiguous range: visit all, caller filters.
                CmpOp::Ne => (Included(full.0), Included(full.1)),
            },
        };
        for (_, id) in self.tree.range((lo, hi)) {
            f(*id);
        }
    }
}

/// One time pane: state-indexed vertex trees (Fig. 11). Trees are a dense
/// vector indexed by `StateId` (template states are small dense ids), so
/// the per-event lookup is an array index, not a hash.
#[derive(Debug)]
pub struct Pane {
    /// Pane start time (covers `[start, start + pane_len)`).
    pub start: Time,
    trees: Vec<StateTree>,
    entries: usize,
}

impl Pane {
    fn new(start: Time, n_states: usize) -> Pane {
        Pane {
            start,
            trees: (0..n_states).map(|_| StateTree::default()).collect(),
            entries: 0,
        }
    }

    /// Ids stored in this pane (all states).
    pub fn all_ids(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self
            .trees
            .iter()
            .flat_map(|t| t.tree.values().copied())
            .collect();
        v.sort_unstable();
        v
    }
}

/// Pane-partitioned, state-indexed vertex storage for one GRETA graph.
#[derive(Debug)]
pub struct GraphStorage<N: TrendNum> {
    /// Vertex slab.
    pub store: VertexStore<N>,
    panes: VecDeque<Pane>,
    pane_len: u64,
    /// Sort attribute per state, dense by `StateId` (from the range-form
    /// edge predicate whose previous state this is); `None` sorts by event
    /// time. Also fixes the number of per-pane trees.
    sort_attr: Vec<Option<AttrId>>,
}

impl<N: TrendNum> GraphStorage<N> {
    /// New storage with the given pane length and per-state sort attributes
    /// (`sort_attr[state.0]`; its length is the template's state count).
    pub fn new(pane_len: u64, sort_attr: Vec<Option<AttrId>>) -> Self {
        GraphStorage {
            store: VertexStore::new(),
            panes: VecDeque::new(),
            pane_len: pane_len.max(1),
            sort_attr,
        }
    }

    fn sort_key(&self, state: StateId, e: &EventRef) -> f64 {
        match self.sort_attr.get(state.0 as usize).copied().flatten() {
            Some(a) => e.attr(a).as_f64(),
            None => e.time.ticks() as f64,
        }
    }

    /// Number of template states (trees per pane).
    fn n_states(&self) -> usize {
        self.sort_attr.len()
    }

    /// True when range queries on `state` use the given attribute.
    pub fn indexes_attr(&self, state: StateId, attr: AttrId) -> bool {
        self.sort_attr.get(state.0 as usize).copied().flatten() == Some(attr)
    }

    /// Insert a vertex; returns its id.
    pub fn insert(&mut self, v: Vertex<N>) -> VertexId {
        let t = v.event.time;
        let state = v.state;
        let key = self.sort_key(state, &v.event);
        let seq = v.seq;
        let id = self.store.insert(v);
        let ps = Time(t.ticks() / self.pane_len * self.pane_len);
        // In-order arrival: the pane is the last one or a new one.
        let need_new = match self.panes.back() {
            Some(p) => p.start < ps,
            None => true,
        };
        if need_new {
            let n = self.n_states().max(state.0 as usize + 1);
            self.panes.push_back(Pane::new(ps, n));
        }
        let pane = self
            .panes
            .iter_mut()
            .rev()
            .find(|p| p.start <= t && t.ticks() < p.start.ticks() + self.pane_len)
            .expect("pane exists for in-order insert");
        if pane.trees.len() <= state.0 as usize {
            pane.trees
                .resize_with(state.0 as usize + 1, StateTree::default);
        }
        pane.trees[state.0 as usize].insert(key, seq, id);
        pane.entries += 1;
        id
    }

    /// Visit candidate predecessors of `state` with event time in
    /// `[lo, hi)`, optionally restricted by a range predicate on the
    /// state's sort attribute.
    pub fn visit_candidates(
        &self,
        state: StateId,
        lo: Time,
        hi: Time,
        range: Option<(CmpOp, f64)>,
        mut f: impl FnMut(VertexId, &Vertex<N>),
    ) {
        for pane in &self.panes {
            if pane.start >= hi {
                break;
            }
            // Skip panes entirely before lo (latest pane time = start+len-1).
            if pane.start.ticks() + self.pane_len <= lo.ticks() {
                continue;
            }
            if let Some(tree) = pane.trees.get(state.0 as usize) {
                tree.visit(range, &mut |id| {
                    let v = self.store.get(id);
                    if v.event.time >= lo && v.event.time < hi {
                        f(id, v);
                    }
                });
            }
        }
    }

    /// Visit **all** vertices of a state (deferred final aggregation).
    pub fn visit_state(&self, state: StateId, mut f: impl FnMut(VertexId, &Vertex<N>)) {
        for pane in &self.panes {
            if let Some(tree) = pane.trees.get(state.0 as usize) {
                tree.visit(None, &mut |id| f(id, self.store.get(id)));
            }
        }
    }

    /// Batch-delete panes whose start is before `deadline` (their last
    /// window closed). Returns the number of vertices purged.
    pub fn purge_panes_before(&mut self, deadline: Time) -> usize {
        let mut purged = 0;
        while let Some(front) = self.panes.front() {
            if front.start.ticks() + self.pane_len <= deadline.ticks() {
                let pane = self.panes.pop_front().unwrap();
                for id in pane.all_ids() {
                    self.store.remove(id);
                    purged += 1;
                }
            } else {
                break;
            }
        }
        purged
    }

    /// Remove all vertices with event time ≤ `cutoff` (finished-trend
    /// pruning in negative graphs, Example 5 / Theorem 5.1). Returns the
    /// number purged.
    pub fn purge_vertices_up_to(&mut self, cutoff: Time) -> usize {
        let mut purged = 0;
        for pane in &mut self.panes {
            if pane.start > cutoff {
                break;
            }
            for tree in pane.trees.iter_mut() {
                let doomed: Vec<((OrdF64, u64), VertexId)> = tree
                    .tree
                    .iter()
                    .filter(|(_, id)| self.store.get(**id).event.time <= cutoff)
                    .map(|(k, id)| (*k, *id))
                    .collect();
                for (k, id) in doomed {
                    tree.remove(k.0 .0, k.1);
                    self.store.remove(id);
                    pane.entries -= 1;
                    purged += 1;
                }
            }
        }
        purged
    }

    /// Number of live vertices.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no vertices are stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Approximate bytes of live state (vertices + index entries).
    pub fn bytes(&self) -> usize {
        let entries: usize = self.panes.iter().map(|p| p.entries).sum();
        self.store.bytes()
            + entries * TREE_ENTRY_BYTES
            + std::mem::size_of::<Pane>() * self.panes.len()
    }

    /// Pane iterator (tests / diagnostics).
    pub fn panes(&self) -> impl Iterator<Item = &Pane> {
        self.panes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggLayout;
    use greta_types::{Event, TypeId, Value};

    fn vertex(t: u64, attr: f64, state: u16, seq: u64) -> Vertex<f64> {
        let layout = AggLayout::default();
        Vertex {
            event: Event::new_unchecked(TypeId(0), Time(t), vec![Value::Float(attr)]).into_ref(),
            state: StateId(state),
            seq,
            latest_start: Time(t),
            aggs: vec![(0, AggState::zero(&layout))],
        }
    }

    fn storage_by_attr() -> GraphStorage<f64> {
        GraphStorage::new(5, vec![Some(AttrId(0))])
    }

    #[test]
    fn insert_and_candidates_time_bounds() {
        let mut s = GraphStorage::new(5, Vec::new());
        for t in [1, 3, 7, 12] {
            s.insert(vertex(t, 0.0, 0, t));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.panes().count(), 3); // panes [0,5) [5,10) [10,15)
        let mut seen = Vec::new();
        s.visit_candidates(StateId(0), Time(2), Time(12), None, |_, v| {
            seen.push(v.event.time.ticks())
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 7]); // in [2, 12)
    }

    #[test]
    fn range_queries_on_sort_attr() {
        let mut s = storage_by_attr();
        for (t, a) in [(1, 10.0), (2, 8.0), (3, 6.0), (4, 9.0)] {
            s.insert(vertex(t, a, 0, t));
        }
        let collect = |op, b| {
            let mut v = Vec::new();
            s.visit_candidates(StateId(0), Time(0), Time(100), Some((op, b)), |_, x| {
                v.push(x.event.attr(AttrId(0)).as_f64())
            });
            v.sort_by(f64::total_cmp);
            v
        };
        assert_eq!(collect(CmpOp::Lt, 9.0), vec![6.0, 8.0]);
        assert_eq!(collect(CmpOp::Le, 9.0), vec![6.0, 8.0, 9.0]);
        assert_eq!(collect(CmpOp::Gt, 8.0), vec![9.0, 10.0]);
        assert_eq!(collect(CmpOp::Ge, 8.0), vec![8.0, 9.0, 10.0]);
        assert_eq!(collect(CmpOp::Eq, 8.0), vec![8.0]);
        // Ne falls back to full scan (caller filters).
        assert_eq!(collect(CmpOp::Ne, 8.0).len(), 4);
    }

    #[test]
    fn state_separation() {
        let mut s = GraphStorage::new(10, Vec::new());
        s.insert(vertex(1, 0.0, 0, 1));
        s.insert(vertex(2, 0.0, 1, 2));
        let mut n0 = 0;
        s.visit_candidates(StateId(0), Time(0), Time(10), None, |_, _| n0 += 1);
        let mut n1 = 0;
        s.visit_candidates(StateId(1), Time(0), Time(10), None, |_, _| n1 += 1);
        assert_eq!((n0, n1), (1, 1));
    }

    #[test]
    fn pane_purge_batch_deletes() {
        let mut s = GraphStorage::new(5, Vec::new());
        for t in [1, 3, 7, 12] {
            s.insert(vertex(t, 0.0, 0, t));
        }
        let purged = s.purge_panes_before(Time(10)); // panes [0,5) and [5,10)
        assert_eq!(purged, 3);
        assert_eq!(s.len(), 1);
        let mut seen = Vec::new();
        s.visit_state(StateId(0), |_, v| seen.push(v.event.time.ticks()));
        assert_eq!(seen, vec![12]);
    }

    #[test]
    fn vertex_purge_up_to_cutoff() {
        let mut s = GraphStorage::new(5, Vec::new());
        for t in [1, 3, 7] {
            s.insert(vertex(t, 0.0, 0, t));
        }
        let purged = s.purge_vertices_up_to(Time(3));
        assert_eq!(purged, 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bytes_accounting_shrinks_on_purge() {
        let mut s = GraphStorage::new(5, Vec::new());
        for t in [1, 2, 3, 8] {
            s.insert(vertex(t, 0.0, 0, t));
        }
        let before = s.bytes();
        s.purge_panes_before(Time(5));
        assert!(s.bytes() < before);
    }

    #[test]
    fn vertex_agg_lookup() {
        let layout = AggLayout::default();
        let mut v = vertex(1, 0.0, 0, 1);
        v.aggs = vec![(2, AggState::zero(&layout)), (5, AggState::zero(&layout))];
        assert!(v.agg(2).is_some());
        assert!(v.agg(5).is_some());
        assert!(v.agg(3).is_none());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Range-assisted candidate visits return exactly the vertices a
            /// naive filter over all inserted vertices would.
            #[test]
            fn visit_candidates_matches_naive_filter(
                inserts in proptest::collection::vec((0u64..40, -10i32..10), 0..40),
                lo in 0u64..40,
                hi in 0u64..45,
                op_idx in 0usize..6,
                bound in -10i32..10,
            ) {
                let mut sorted = inserts.clone();
                sorted.sort_by_key(|(t, _)| *t); // in-order arrival
                let mut st = storage_by_attr();
                for (seq, (t, a)) in sorted.iter().enumerate() {
                    st.insert(vertex(*t, *a as f64, 0, seq as u64));
                }
                let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];
                let op = ops[op_idx];
                let mut got: Vec<(u64, f64)> = Vec::new();
                st.visit_candidates(StateId(0), Time(lo), Time(hi), Some((op, bound as f64)), |_, v| {
                    got.push((v.event.time.ticks(), v.event.attr(AttrId(0)).as_f64()));
                });
                // Ne is answered by a full visit (the caller filters), so
                // emulate that here.
                let mut expect: Vec<(u64, f64)> = sorted
                    .iter()
                    .filter(|(t, a)| {
                        *t >= lo && *t < hi && (op == CmpOp::Ne || op.eval((*a as f64).total_cmp(&(bound as f64))))
                    })
                    .map(|(t, a)| (*t, *a as f64))
                    .collect();
                got.sort_by(|x, y| x.partial_cmp(y).unwrap());
                expect.sort_by(|x, y| x.partial_cmp(y).unwrap());
                prop_assert_eq!(got, expect);
            }

            /// Pane purge removes exactly the vertices strictly before the
            /// deadline pane boundary.
            #[test]
            fn pane_purge_is_exact(
                times in proptest::collection::vec(0u64..60, 0..40),
                deadline in 0u64..70,
            ) {
                let mut sorted = times.clone();
                sorted.sort_unstable();
                let mut st = GraphStorage::<f64>::new(5, Vec::new());
                for (seq, t) in sorted.iter().enumerate() {
                    st.insert(vertex(*t, 0.0, 0, seq as u64));
                }
                st.purge_panes_before(Time(deadline));
                let mut remaining = Vec::new();
                st.visit_state(StateId(0), |_, v| remaining.push(v.event.time.ticks()));
                remaining.sort_unstable();
                // A vertex survives iff its pane [p, p+5) ends after deadline.
                let mut expect: Vec<u64> = sorted
                    .iter()
                    .copied()
                    .filter(|t| (t / 5) * 5 + 5 > deadline)
                    .collect();
                expect.sort_unstable();
                prop_assert_eq!(remaining, expect);
            }
        }
    }

    #[test]
    fn shared_event_bytes_counted_once_not_per_vertex() {
        // Two vertices holding the SAME EventRef must together charge the
        // event payload about once; two vertices over deep copies charge it
        // twice. Use a long string payload so the difference dominates.
        let layout = AggLayout::default();
        let long = "X".repeat(4096);
        let mk = |e: &EventRef, seq: u64| Vertex::<f64> {
            event: e.clone(),
            state: StateId(0),
            seq,
            latest_start: Time(1),
            aggs: vec![(0, AggState::zero(&layout))],
        };
        let shared =
            Event::new_unchecked(TypeId(0), Time(1), vec![Value::from(long.clone())]).into_ref();
        let mut with_sharing = VertexStore::<f64>::new();
        // Hold both vertices' refs before charging so the amortized charge
        // sees the final strong count.
        let (v1, v2) = (mk(&shared, 1), mk(&shared, 2));
        with_sharing.insert(v1);
        with_sharing.insert(v2);

        let mut without_sharing = VertexStore::<f64>::new();
        for seq in [1, 2] {
            let copy = Event::new_unchecked(TypeId(0), Time(1), vec![Value::from(long.clone())])
                .into_ref();
            without_sharing.insert(mk(&copy, seq));
        }
        assert!(
            with_sharing.bytes() < without_sharing.bytes() * 3 / 4,
            "shared: {}, deep-copied: {}",
            with_sharing.bytes(),
            without_sharing.bytes()
        );
        // Removal subtracts the recorded charge exactly: no drift/underflow
        // even though the strong count changed since insertion.
        drop(shared);
        with_sharing.remove(0);
        with_sharing.remove(1);
        assert_eq!(with_sharing.bytes(), 0);
        assert_eq!(with_sharing.len(), 0);
    }

    #[test]
    fn store_reuses_slots() {
        let mut st = VertexStore::<f64>::new();
        let a = st.insert(vertex(1, 0.0, 0, 1));
        st.remove(a);
        let b = st.insert(vertex(2, 0.0, 0, 2));
        assert_eq!(a, b);
        assert_eq!(st.len(), 1);
    }
}
