//! Runtime errors.

use greta_types::TypeError;
use std::fmt;

/// Errors raised by the GRETA engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Events must arrive in-order by time stamp (paper §2).
    OutOfOrder {
        /// High-water mark already processed.
        watermark: u64,
        /// Offending event time.
        got: u64,
    },
    /// A partition attribute is missing from a root-graph event type.
    PartitionAttr {
        /// Attribute name.
        attr: String,
        /// Event type name.
        ty: String,
    },
    /// Query references an event type the engine's registry does not know.
    Type(TypeError),
    /// Configuration problem (e.g. parallelism of zero).
    Config(String),
    /// An event arrived later than the executor's reorder slack allows and
    /// the late-event policy is [`LatePolicy::Error`](crate::executor::LatePolicy::Error).
    Late {
        /// Configured slack in ticks.
        slack: u64,
        /// Watermark already released to the shards.
        watermark: u64,
        /// Offending event time.
        got: u64,
    },
    /// A shard worker terminated abnormally.
    Worker(String),
    /// Durability failure: WAL/snapshot/manifest I-O or corruption, or an
    /// undecodable state blob.
    Durability(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::OutOfOrder { watermark, got } => write!(
                f,
                "out-of-order event: time {got} after watermark {watermark} \
                 (GRETA assumes in-order streams, paper §2)"
            ),
            EngineError::PartitionAttr { attr, ty } => write!(
                f,
                "partition attribute `{attr}` missing on root-pattern event type `{ty}`"
            ),
            EngineError::Type(e) => write!(f, "{e}"),
            EngineError::Config(m) => write!(f, "configuration error: {m}"),
            EngineError::Late {
                slack,
                watermark,
                got,
            } => write!(
                f,
                "late event: time {got} behind released watermark {watermark} \
                 (reorder slack {slack}) under LatePolicy::Error"
            ),
            EngineError::Worker(m) => write!(f, "shard worker failed: {m}"),
            EngineError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TypeError> for EngineError {
    fn from(e: TypeError) -> Self {
        EngineError::Type(e)
    }
}

impl From<greta_types::CodecError> for EngineError {
    fn from(e: greta_types::CodecError) -> Self {
        EngineError::Durability(e.to_string())
    }
}

impl From<greta_durability::DurabilityError> for EngineError {
    fn from(e: greta_durability::DurabilityError) -> Self {
        EngineError::Durability(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = EngineError::OutOfOrder {
            watermark: 10,
            got: 5,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('5'));
    }
}
