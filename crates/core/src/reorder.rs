//! Out-of-order adapters for both ends of the pipeline.
//!
//! **Ingestion** ([`ReorderBuffer`]): the paper assumes in-order streams
//! and points to out-of-order processing architectures ([17, 18] in §2)
//! for the general case. This module provides the standard *slack buffer*
//! from that line of work: events are held for `slack` ticks and released
//! in time-stamp order; anything arriving later than the already-released
//! watermark is reported as a [`late event`](ReorderBuffer::push) instead
//! of corrupting the graph.
//!
//! **Emission** ([`ResultMerge`]): the mirror image on the output side.
//! Shard workers emit closed-window rows independently, so the raw result
//! stream interleaves windows across shards. The merge holds each shard's
//! rows until *every* shard's emission frontier (the smallest window it
//! may still emit — [`GretaEngine::emission_frontier`]) has passed the
//! window, then releases the window's rows in canonical `(window, group)`
//! order. Buffering is bounded by the number of open windows, not the
//! stream length — no sort-at-finish, no full materialization.
//!
//! [`GretaEngine::emission_frontier`]: crate::engine::GretaEngine::emission_frontier

use crate::agg::TrendNum;
use crate::results::WindowResult;
use crate::window::WindowId;
use greta_types::{Event, EventRef, Time};
use std::collections::BTreeMap;

/// Buffering reorderer with a fixed time slack.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    slack: u64,
    /// Buffered events keyed by time stamp (stable within a stamp).
    pending: BTreeMap<Time, Vec<EventRef>>,
    /// Highest time stamp already released.
    released: Option<Time>,
    /// Count of events dropped for arriving beyond the slack.
    late: u64,
}

impl ReorderBuffer {
    /// A buffer that tolerates disorder up to `slack` ticks.
    pub fn new(slack: u64) -> ReorderBuffer {
        ReorderBuffer {
            slack,
            ..Default::default()
        }
    }

    /// Offer an event. Returns the events that became safe to release (in
    /// time-stamp order), or `Err(event)` when the event arrived later than
    /// the slack allows (the caller decides whether to drop or divert it).
    pub fn push(&mut self, e: EventRef) -> Result<Vec<EventRef>, EventRef> {
        let mut out = Vec::new();
        self.push_into(e, &mut out).map(|()| out)
    }

    /// [`push`](Self::push) into a caller-provided buffer — the hot path
    /// reuses one scratch vector instead of allocating per event.
    // lint:hot-path
    pub fn push_into(&mut self, e: EventRef, out: &mut Vec<EventRef>) -> Result<(), EventRef> {
        if let Some(r) = self.released {
            if e.time < r {
                self.late += 1;
                return Err(e);
            }
        }
        let t = e.time;
        self.pending.entry(t).or_default().push(e);
        // Release everything at least `slack` ticks behind the max seen.
        let max_seen = *self.pending.keys().next_back().expect("just inserted");
        let horizon = Time(max_seen.ticks().saturating_sub(self.slack));
        self.release_before(horizon, out);
        Ok(())
    }

    /// Flush all buffered events (stream end).
    pub fn flush(&mut self) -> Vec<EventRef> {
        let mut out = Vec::new();
        self.release_before(Time::MAX, &mut out);
        out
    }

    // lint:hot-path
    fn release_before(&mut self, horizon: Time, out: &mut Vec<EventRef>) {
        while let Some((&t, _)) = self.pending.iter().next() {
            if t >= horizon {
                break;
            }
            let batch = self.pending.remove(&t).expect("key exists");
            self.released = Some(t);
            out.extend(batch);
        }
    }

    /// Highest time stamp released so far (the buffer's output watermark):
    /// any event pushed with a smaller stamp is late.
    pub fn watermark(&self) -> Option<Time> {
        self.released
    }

    /// The configured slack in ticks.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// Events currently buffered.
    pub fn buffered(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Events rejected as too late so far.
    pub fn late_events(&self) -> u64 {
        self.late
    }

    /// Append the binary encoding of the buffer's mutable state: the
    /// released watermark, the late counter, and every buffered event in
    /// release order (durability snapshots). The slack is configuration
    /// and is supplied again on [`import_state`](Self::import_state).
    pub fn export_state(&self, out: &mut Vec<u8>) {
        crate::state::put_opt_u64(out, self.released.map(Time::ticks));
        greta_types::codec::put_u64(out, self.late);
        let n: usize = self.pending.values().map(Vec::len).sum();
        greta_types::codec::put_u32(out, n as u32);
        for batch in self.pending.values() {
            for e in batch {
                e.encode(out);
            }
        }
    }

    /// Rebuild a buffer with the given `slack` from state written by
    /// [`export_state`](Self::export_state).
    pub fn import_state(
        slack: u64,
        r: &mut greta_types::Reader<'_>,
    ) -> Result<ReorderBuffer, greta_types::CodecError> {
        let released = crate::state::get_opt_u64(r)?.map(Time);
        let late = r.u64()?;
        let n = r.seq_len(11)?;
        let mut pending: BTreeMap<Time, Vec<EventRef>> = BTreeMap::new();
        for _ in 0..n {
            let e = Event::decode(r)?.into_ref();
            pending.entry(e.time).or_default().push(e);
        }
        Ok(ReorderBuffer {
            slack,
            pending,
            released,
            late,
        })
    }
}

/// Cross-shard min-watermark merge for ordered result emission. See the
/// [module docs](self).
///
/// Rows are stamped by their emitting shard; per-shard *frontiers* record
/// the smallest window each shard may still emit. Windows strictly below
/// the minimum frontier across all shards are complete — their rows are
/// released in canonical `(window, group)` order and the released
/// watermark (`released_to`) advances monotonically. Frontier updates
/// arrive from window-close watermark broadcasts and from barrier drains
/// (checkpoint / migration), and survive routing-epoch bumps: a barrier
/// migration swaps the engines behind the shards but never rewinds a
/// frontier, because the repartitioned engines resume from the *max*
/// source watermark.
#[derive(Debug, Clone)]
pub struct ResultMerge<N: TrendNum> {
    /// Per-shard emission frontier: shard `s` will never emit a row for a
    /// window below `frontiers[s]`. Only ever advances.
    frontiers: Vec<WindowId>,
    /// Windows below this are fully released (the output watermark).
    released_to: WindowId,
    /// Pending rows of still-open windows, keyed by window.
    buffered: BTreeMap<WindowId, Vec<WindowResult<N>>>,
    /// Last per-shard row sequence seen (emission-order sanity check).
    last_seq: Vec<u64>,
}

impl<N: TrendNum> ResultMerge<N> {
    /// A merge over `shards` emitting shards, all frontiers at window 0.
    pub fn new(shards: usize) -> ResultMerge<N> {
        ResultMerge {
            frontiers: vec![0; shards],
            released_to: 0,
            buffered: BTreeMap::new(),
            last_seq: vec![0; shards],
        }
    }

    /// Buffer one stamped row from `shard`. `seq` is the shard's emission
    /// counter (strictly increasing per shard).
    pub fn offer(&mut self, shard: usize, seq: u64, row: WindowResult<N>) {
        debug_assert!(
            row.window >= self.released_to,
            "shard {shard} emitted window {} after it was released (released_to {})",
            row.window,
            self.released_to
        );
        debug_assert!(
            seq > self.last_seq[shard],
            "shard {shard} row seq went backwards ({seq} ≤ {})",
            self.last_seq[shard]
        );
        self.last_seq[shard] = seq;
        self.buffered.entry(row.window).or_default().push(row);
    }

    /// Advance `shard`'s frontier to `next_window` (stale updates are
    /// ignored — frontiers only grow) and append every newly complete
    /// window's rows to `out` in canonical order.
    pub fn advance(&mut self, shard: usize, next_window: WindowId, out: &mut Vec<WindowResult<N>>) {
        if next_window > self.frontiers[shard] {
            self.frontiers[shard] = next_window;
            self.release(out);
        }
    }

    /// End of stream: every shard has terminated, so no window can receive
    /// further rows. Releases everything still buffered, in order.
    pub fn close(&mut self, out: &mut Vec<WindowResult<N>>) {
        for f in &mut self.frontiers {
            *f = WindowId::MAX;
        }
        self.release(out);
    }

    fn release(&mut self, out: &mut Vec<WindowResult<N>>) {
        let min = self.frontiers.iter().copied().min().unwrap_or(0);
        while let Some(entry) = self.buffered.first_entry() {
            if *entry.key() >= min {
                break;
            }
            let mut rows = entry.remove();
            // Groups are disjoint across shards and each shard emits its
            // window's rows group-sorted, so a per-window sort by group
            // yields exactly the canonical order (keys are unique).
            rows.sort_by(|a, b| a.group.cmp(&b.group));
            out.append(&mut rows);
        }
        self.released_to = self.released_to.max(min);
    }

    /// The smallest window any shard may still emit (the output watermark).
    pub fn min_frontier(&self) -> WindowId {
        self.frontiers.iter().copied().min().unwrap_or(0)
    }

    /// Windows strictly below this are fully released to the caller — the
    /// ordered stream's *released watermark*. This is the progress signal a
    /// downstream consumer (a cascaded executor, a network subscription)
    /// needs: everything below it is final and totally ordered.
    pub fn released_to(&self) -> WindowId {
        self.released_to
    }

    /// The per-shard emission frontiers (shard `s` will never emit a row
    /// for a window below `frontiers()[s]`). The spread between the max
    /// and min entry is the merge's buffering pressure: rows of windows
    /// between them are parked waiting for the slowest shard.
    pub fn frontiers(&self) -> &[WindowId] {
        &self.frontiers
    }

    /// Rows currently buffered (bounded by open windows × groups).
    pub fn buffered_rows(&self) -> usize {
        self.buffered.values().map(Vec::len).sum()
    }

    /// Append the binary encoding: per-shard frontiers, the released
    /// watermark, and the buffered rows per window (rows written in
    /// group-sorted order for a deterministic blob). Per-shard sequence
    /// checks restart from zero on import — recovered workers renumber
    /// from scratch.
    pub fn export_state(&self, out: &mut Vec<u8>) {
        use greta_types::codec::{put_u32, put_u64};
        put_u32(out, self.frontiers.len() as u32);
        for f in &self.frontiers {
            put_u64(out, *f);
        }
        put_u64(out, self.released_to);
        put_u32(out, self.buffered.len() as u32);
        for (wid, rows) in &self.buffered {
            put_u64(out, *wid);
            let mut sorted: Vec<&WindowResult<N>> = rows.iter().collect();
            sorted.sort_by(|a, b| a.group.cmp(&b.group));
            put_u32(out, sorted.len() as u32);
            for row in sorted {
                crate::state::encode_window_result(row, out);
            }
        }
    }

    /// Rebuild a merge from state written by
    /// [`export_state`](Self::export_state).
    pub fn import_state(
        r: &mut greta_types::Reader<'_>,
    ) -> Result<ResultMerge<N>, greta_types::CodecError> {
        let n_shards = r.seq_len(8)?;
        let mut frontiers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            frontiers.push(r.u64()?);
        }
        let released_to = r.u64()?;
        let n_windows = r.seq_len(12)?;
        let mut buffered = BTreeMap::new();
        for _ in 0..n_windows {
            let wid = r.u64()?;
            let n_rows = r.seq_len(9)?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                rows.push(crate::state::decode_window_result(r)?);
            }
            buffered.insert(wid, rows);
        }
        let last_seq = vec![0; n_shards];
        Ok(ResultMerge {
            frontiers,
            released_to,
            buffered,
            last_seq,
        })
    }

    /// Re-target the merge at a different shard count (resharded
    /// recovery): buffered rows and the released watermark are kept, but
    /// the per-shard frontiers restart at the released watermark — the new
    /// workers report their own frontiers from the repartitioned engines,
    /// which resume at or past every source engine's watermark.
    pub fn reset_for_shards(&mut self, shards: usize) {
        self.frontiers = vec![self.released_to; shards];
        self.last_seq = vec![0; shards];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{SchemaRegistry, TypeId};

    fn ev(t: u64) -> EventRef {
        Event::new_unchecked(TypeId(0), Time(t), vec![]).into_ref()
    }

    #[test]
    fn reorders_within_slack() {
        let mut buf = ReorderBuffer::new(5);
        let mut out = Vec::new();
        for t in [3u64, 1, 2, 9, 7, 12] {
            out.extend(buf.push(ev(t)).unwrap());
        }
        out.extend(buf.flush());
        let times: Vec<u64> = out.iter().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 2, 3, 7, 9, 12]);
        assert_eq!(buf.late_events(), 0);
    }

    #[test]
    fn late_events_rejected_not_reordered() {
        let mut buf = ReorderBuffer::new(2);
        buf.push(ev(10)).unwrap();
        let released = buf.push(ev(20)).unwrap(); // releases t=10
        assert_eq!(released.len(), 1);
        // t=5 is before the released watermark: rejected.
        let rejected = buf.push(ev(5)).unwrap_err();
        assert_eq!(rejected.time, Time(5));
        assert_eq!(buf.late_events(), 1);
    }

    #[test]
    fn same_timestamp_preserves_arrival_order() {
        let mut reg = SchemaRegistry::new();
        let a = reg.register_type("A", &[]).unwrap();
        let b = reg.register_type("B", &[]).unwrap();
        let mut buf = ReorderBuffer::new(0);
        let e1 = Event::new_unchecked(a, Time(1), vec![]).into_ref();
        let e2 = Event::new_unchecked(b, Time(1), vec![]).into_ref();
        buf.push(e1.clone()).unwrap();
        buf.push(e2.clone()).unwrap();
        let out = buf.flush();
        assert_eq!(out[0].type_id, a);
        assert_eq!(out[1].type_id, b);
    }

    #[test]
    fn feeds_engine_correctly() {
        use crate::GretaEngine;
        use greta_query::CompiledQuery;
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
        let mut buf = ReorderBuffer::new(10);
        let tid = reg.type_id("A").unwrap();
        for t in [2u64, 1, 4, 3, 5] {
            for e in buf
                .push(Event::new_unchecked(tid, Time(t), vec![]).into_ref())
                .unwrap()
            {
                engine.process_ref(&e).unwrap();
            }
        }
        for e in buf.flush() {
            engine.process_ref(&e).unwrap();
        }
        let rows = engine.finish();
        assert_eq!(rows[0].values[0].to_f64(), 31.0); // 2^5 - 1
    }

    #[test]
    fn buffered_count() {
        let mut buf = ReorderBuffer::new(100);
        buf.push(ev(1)).unwrap();
        buf.push(ev(2)).unwrap();
        assert_eq!(buf.buffered(), 2);
        buf.flush();
        assert_eq!(buf.buffered(), 0);
    }

    mod merge {
        use super::super::ResultMerge;
        use crate::grouping::PartitionKey;
        use crate::results::{OutValue, WindowResult};
        use greta_types::Value;

        fn row(w: u64, g: i64) -> WindowResult<u64> {
            WindowResult {
                window: w,
                group: PartitionKey(vec![Some(Value::Int(g))]),
                values: vec![OutValue::Count(1)],
            }
        }

        #[test]
        fn releases_only_below_min_frontier_in_order() {
            let mut m = ResultMerge::<u64>::new(2);
            let mut out = Vec::new();
            m.offer(0, 1, row(0, 3));
            m.offer(1, 1, row(0, 1));
            m.offer(0, 2, row(1, 3));
            m.advance(0, 2, &mut out);
            assert!(out.is_empty(), "shard 1 still at window 0");
            m.advance(1, 1, &mut out);
            // Window 0 complete: both rows, group-sorted.
            let got: Vec<(u64, i64)> = out
                .iter()
                .map(|r| match &r.group.0[0] {
                    Some(Value::Int(g)) => (r.window, *g),
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(got, vec![(0, 1), (0, 3)]);
            assert_eq!(m.min_frontier(), 1);
            assert_eq!(m.buffered_rows(), 1);
            m.close(&mut out);
            assert_eq!(out.len(), 3);
            assert_eq!(out[2].window, 1);
        }

        #[test]
        fn stale_frontier_updates_are_ignored() {
            let mut m = ResultMerge::<u64>::new(1);
            let mut out = Vec::new();
            m.advance(0, 5, &mut out);
            m.advance(0, 3, &mut out); // stale: must not rewind
            assert_eq!(m.min_frontier(), 5);
        }

        #[test]
        fn codec_roundtrip_and_reshard_reset() {
            let mut m = ResultMerge::<u64>::new(3);
            let mut out = Vec::new();
            m.offer(0, 1, row(4, 2));
            m.offer(2, 1, row(5, 7));
            m.advance(0, 4, &mut out);
            m.advance(1, 4, &mut out);
            m.advance(2, 4, &mut out);
            let mut buf = Vec::new();
            m.export_state(&mut buf);
            let mut got = ResultMerge::<u64>::import_state(&mut greta_types::Reader::new(&buf))
                .expect("roundtrip");
            assert_eq!(got.min_frontier(), 4);
            assert_eq!(got.buffered_rows(), 2);
            // Resharding restarts frontiers at the released watermark but
            // keeps the buffered rows.
            got.reset_for_shards(5);
            assert_eq!(got.min_frontier(), 4);
            assert_eq!(got.buffered_rows(), 2);
            let mut rest = Vec::new();
            got.close(&mut rest);
            assert_eq!(rest.len(), 2);
            assert_eq!((rest[0].window, rest[1].window), (4, 5));
        }
    }
}
