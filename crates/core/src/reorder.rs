//! Out-of-order arrival adapter.
//!
//! The paper assumes in-order streams and points to out-of-order processing
//! architectures ([17, 18] in §2) for the general case. This module
//! provides the standard *slack buffer* from that line of work: events are
//! held for `slack` ticks and released in time-stamp order; anything
//! arriving later than the already-released watermark is reported as a
//! [`late event`](ReorderBuffer::push) instead of corrupting the graph.

use greta_types::{Event, EventRef, Time};
use std::collections::BTreeMap;

/// Buffering reorderer with a fixed time slack.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    slack: u64,
    /// Buffered events keyed by time stamp (stable within a stamp).
    pending: BTreeMap<Time, Vec<EventRef>>,
    /// Highest time stamp already released.
    released: Option<Time>,
    /// Count of events dropped for arriving beyond the slack.
    late: u64,
}

impl ReorderBuffer {
    /// A buffer that tolerates disorder up to `slack` ticks.
    pub fn new(slack: u64) -> ReorderBuffer {
        ReorderBuffer {
            slack,
            ..Default::default()
        }
    }

    /// Offer an event. Returns the events that became safe to release (in
    /// time-stamp order), or `Err(event)` when the event arrived later than
    /// the slack allows (the caller decides whether to drop or divert it).
    pub fn push(&mut self, e: EventRef) -> Result<Vec<EventRef>, EventRef> {
        let mut out = Vec::new();
        self.push_into(e, &mut out).map(|()| out)
    }

    /// [`push`](Self::push) into a caller-provided buffer — the hot path
    /// reuses one scratch vector instead of allocating per event.
    pub fn push_into(&mut self, e: EventRef, out: &mut Vec<EventRef>) -> Result<(), EventRef> {
        if let Some(r) = self.released {
            if e.time < r {
                self.late += 1;
                return Err(e);
            }
        }
        let t = e.time;
        self.pending.entry(t).or_default().push(e);
        // Release everything at least `slack` ticks behind the max seen.
        let max_seen = *self.pending.keys().next_back().expect("just inserted");
        let horizon = Time(max_seen.ticks().saturating_sub(self.slack));
        self.release_before(horizon, out);
        Ok(())
    }

    /// Flush all buffered events (stream end).
    pub fn flush(&mut self) -> Vec<EventRef> {
        let mut out = Vec::new();
        self.release_before(Time::MAX, &mut out);
        out
    }

    fn release_before(&mut self, horizon: Time, out: &mut Vec<EventRef>) {
        while let Some((&t, _)) = self.pending.iter().next() {
            if t >= horizon {
                break;
            }
            let batch = self.pending.remove(&t).expect("key exists");
            self.released = Some(t);
            out.extend(batch);
        }
    }

    /// Highest time stamp released so far (the buffer's output watermark):
    /// any event pushed with a smaller stamp is late.
    pub fn watermark(&self) -> Option<Time> {
        self.released
    }

    /// The configured slack in ticks.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// Events currently buffered.
    pub fn buffered(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Events rejected as too late so far.
    pub fn late_events(&self) -> u64 {
        self.late
    }

    /// Append the binary encoding of the buffer's mutable state: the
    /// released watermark, the late counter, and every buffered event in
    /// release order (durability snapshots). The slack is configuration
    /// and is supplied again on [`import_state`](Self::import_state).
    pub fn export_state(&self, out: &mut Vec<u8>) {
        crate::state::put_opt_u64(out, self.released.map(Time::ticks));
        greta_types::codec::put_u64(out, self.late);
        let n: usize = self.pending.values().map(Vec::len).sum();
        greta_types::codec::put_u32(out, n as u32);
        for batch in self.pending.values() {
            for e in batch {
                e.encode(out);
            }
        }
    }

    /// Rebuild a buffer with the given `slack` from state written by
    /// [`export_state`](Self::export_state).
    pub fn import_state(
        slack: u64,
        r: &mut greta_types::Reader<'_>,
    ) -> Result<ReorderBuffer, greta_types::CodecError> {
        let released = crate::state::get_opt_u64(r)?.map(Time);
        let late = r.u64()?;
        let n = r.seq_len(11)?;
        let mut pending: BTreeMap<Time, Vec<EventRef>> = BTreeMap::new();
        for _ in 0..n {
            let e = Event::decode(r)?.into_ref();
            pending.entry(e.time).or_default().push(e);
        }
        Ok(ReorderBuffer {
            slack,
            pending,
            released,
            late,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greta_types::{SchemaRegistry, TypeId};

    fn ev(t: u64) -> EventRef {
        Event::new_unchecked(TypeId(0), Time(t), vec![]).into_ref()
    }

    #[test]
    fn reorders_within_slack() {
        let mut buf = ReorderBuffer::new(5);
        let mut out = Vec::new();
        for t in [3u64, 1, 2, 9, 7, 12] {
            out.extend(buf.push(ev(t)).unwrap());
        }
        out.extend(buf.flush());
        let times: Vec<u64> = out.iter().map(|e| e.time.ticks()).collect();
        assert_eq!(times, vec![1, 2, 3, 7, 9, 12]);
        assert_eq!(buf.late_events(), 0);
    }

    #[test]
    fn late_events_rejected_not_reordered() {
        let mut buf = ReorderBuffer::new(2);
        buf.push(ev(10)).unwrap();
        let released = buf.push(ev(20)).unwrap(); // releases t=10
        assert_eq!(released.len(), 1);
        // t=5 is before the released watermark: rejected.
        let rejected = buf.push(ev(5)).unwrap_err();
        assert_eq!(rejected.time, Time(5));
        assert_eq!(buf.late_events(), 1);
    }

    #[test]
    fn same_timestamp_preserves_arrival_order() {
        let mut reg = SchemaRegistry::new();
        let a = reg.register_type("A", &[]).unwrap();
        let b = reg.register_type("B", &[]).unwrap();
        let mut buf = ReorderBuffer::new(0);
        let e1 = Event::new_unchecked(a, Time(1), vec![]).into_ref();
        let e2 = Event::new_unchecked(b, Time(1), vec![]).into_ref();
        buf.push(e1.clone()).unwrap();
        buf.push(e2.clone()).unwrap();
        let out = buf.flush();
        assert_eq!(out[0].type_id, a);
        assert_eq!(out[1].type_id, b);
    }

    #[test]
    fn feeds_engine_correctly() {
        use crate::GretaEngine;
        use greta_query::CompiledQuery;
        let mut reg = SchemaRegistry::new();
        reg.register_type("A", &[]).unwrap();
        let q =
            CompiledQuery::parse("RETURN COUNT(*) PATTERN A+ WITHIN 100 SLIDE 100", &reg).unwrap();
        let mut engine = GretaEngine::<u64>::new(q, reg.clone()).unwrap();
        let mut buf = ReorderBuffer::new(10);
        let tid = reg.type_id("A").unwrap();
        for t in [2u64, 1, 4, 3, 5] {
            for e in buf
                .push(Event::new_unchecked(tid, Time(t), vec![]).into_ref())
                .unwrap()
            {
                engine.process_ref(&e).unwrap();
            }
        }
        for e in buf.flush() {
            engine.process_ref(&e).unwrap();
        }
        let rows = engine.finish();
        assert_eq!(rows[0].values[0].to_f64(), 31.0); // 2^5 - 1
    }

    #[test]
    fn buffered_count() {
        let mut buf = ReorderBuffer::new(100);
        buf.push(ev(1)).unwrap();
        buf.push(ev(2)).unwrap();
        assert_eq!(buf.buffered(), 2);
        buf.flush();
        assert_eq!(buf.buffered(), 0);
    }
}
